//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this vendored implementation. It keeps the public shape
//! the workspace's property tests rely on — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, numeric range
//! strategies, tuple composition, [`collection::vec`] and the
//! `prop_assert*`/`prop_assume!` macros — while replacing proptest's
//! shrinking test runner with a plain deterministic sampler: each test
//! runs `ProptestConfig::cases` random cases seeded from the test's name,
//! and failures report the offending assertion without input shrinking.

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Subset of proptest's runner configuration: the number of cases.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 stream seeded from the test's fully qualified name, so
    /// every test draws a distinct but run-to-run reproducible sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from `name` (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Feeds every generated value into `f` to build a dependent
        /// second-stage strategy, then draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds on the length of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy: `size` may be an exact `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _ in 0..config.cases {
                let values = ($(
                    $crate::strategy::Strategy::new_value(&($strategy), &mut rng),
                )+);
                (move || {
                    let ($($arg,)+) = values;
                    $body
                })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..4.0).new_value(&mut rng);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = collection::vec(0u16..12, 1..400).new_value(&mut rng);
            assert!((1..400).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 12));
            let exact = collection::vec(0.0f32..1.0, 7usize).new_value(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combinators");
        let strat = (1usize..5, 1usize..5)
            .prop_flat_map(|(r, c)| {
                collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
            });
        for _ in 0..100 {
            let (r, c, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0usize..10, (a, b) in (0u64..5, 1u64..5)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in collection::vec(0u8..8, 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }
}
