//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this vendored implementation (see `[patch.crates-io]` in the
//! workspace manifest). Only the surface the workspace actually uses is
//! provided: [`Rng::gen_range`] over half-open and inclusive numeric
//! ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Generators implement [`RngCore`]; the
//! companion vendored `rand_chacha` crate supplies the concrete
//! `ChaCha8Rng` used throughout the workspace.

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample a uniform value of `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random bits scaled into [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    // 24 random bits scaled into [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * unit_f32(rng.next_u64());
        // Guard against `start + span * u` rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Extension methods for slices: uniform shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! Simple built-in generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: a small, fast, statistically solid 64-bit generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0u64..=1) {
                0 => lo = true,
                _ => hi = true,
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
