//! Offline, API-compatible subset of `parking_lot`: a [`Mutex`] whose
//! `lock` returns the guard directly (no poison `Result`), wrapping
//! `std::sync::Mutex`. Only the surface used by the workspace is provided.

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic
    /// in a previous critical section does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
