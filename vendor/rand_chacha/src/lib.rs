//! Offline, API-compatible `ChaCha8Rng` for the vendored `rand` subset.
//!
//! Implements the genuine ChaCha stream cipher core (8 rounds) so the
//! generator is statistically strong and fully deterministic per seed —
//! reproducible experiment streams are a hard requirement of the
//! benchmark harness. Only the constructor the workspace uses
//! ([`rand::SeedableRng::seed_from_u64`]) is provided.

use rand::{RngCore, SeedableRng};

/// The ChaCha stream cipher with 8 rounds, exposed as a random number
/// generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter state fed to the block function.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expands `state` into a 256-bit key with SplitMix64, zeroes the
    /// counter and nonce, and positions the stream at the first block.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            s[4 + 2 * i] = word as u32;
            s[5 + 2 * i] = (word >> 32) as u32;
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state: s,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
