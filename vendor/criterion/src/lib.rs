//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this vendored implementation. Benchmarks keep the
//! criterion surface (`criterion_group!`/`criterion_main!`, benchmark
//! groups with `sample_size`/`measurement_time`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`) but the statistics engine is a plain
//! sampler: every sample times one closure call, and each benchmark
//! prints its median / mean / min over the collected samples.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments for harness compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).run(&name, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = id.into_benchmark_id();
        self.run(&label, f);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.into_benchmark_id();
        self.run(&label, |bencher| f(bencher, input));
        self
    }

    /// Ends the group (prints nothing extra; samples print eagerly).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, label);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{}: median {:?}  mean {:?}  min {:?}  ({} samples)",
            self.name,
            label,
            median,
            mean,
            min,
            samples.len()
        );
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `f`, one sample per call, until the
    /// configured sample count or time budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, faults in pages).
        black_box(f());
        let budget_start = Instant::now();
        self.samples.clear();
        while self.samples.len() < self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() >= self.measurement_time && self.samples.len() >= 5 {
                break;
            }
        }
    }
}

/// A benchmark label, optionally parameterised (`name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds a `name/param` label.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// Renders the label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(5).measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("busy", |b| {
            b.iter(|| {
                ran += 1;
                (0..100).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        assert!(ran >= 5);
    }
}
