//! Offline, API-compatible subset of `crossbeam`: an unbounded MPMC
//! channel and a [`sync::WaitGroup`], built on `std` primitives. Only the
//! surface used by `cnn-stack-parallel`'s thread pool is provided.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Payload may not be Debug (e.g. boxed closures); elide it.
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Queue state stays coherent across a payload panic; ignore poison.
        shared
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }
}

pub mod sync {
    //! Synchronisation primitives.

    use std::sync::{Arc, Condvar, Mutex};

    struct WgShared {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Enables a thread to block until a set of clones has been dropped.
    ///
    /// Each clone represents one outstanding unit of work; [`WaitGroup::wait`]
    /// returns once every other clone is gone.
    pub struct WaitGroup {
        shared: Arc<WgShared>,
    }

    impl WaitGroup {
        /// Creates a group with a single member (the returned handle).
        pub fn new() -> Self {
            WaitGroup {
                shared: Arc::new(WgShared {
                    count: Mutex::new(1),
                    zero: Condvar::new(),
                }),
            }
        }

        /// Drops this handle and blocks until all other clones are dropped.
        pub fn wait(self) {
            let shared = Arc::clone(&self.shared);
            drop(self);
            let mut count = shared
                .count
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            while *count > 0 {
                count = shared
                    .zero
                    .wait(count)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self
                .shared
                .count
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()) += 1;
            WaitGroup {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self
                .shared
                .count
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *count -= 1;
            if *count == 0 {
                drop(count);
                self.shared.zero.notify_all();
            }
        }
    }

    impl std::fmt::Debug for WaitGroup {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "WaitGroup")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::sync::WaitGroup;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn multi_consumer_partitions_work() {
        let (tx, rx) = unbounded();
        let hits = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    while rx.recv().is_ok() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn waitgroup_blocks_until_members_drop() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let member = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(member);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
