#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

# The workspace builds against the vendored dependency stubs in vendor/,
# so CI never needs the network.
export CARGO_NET_OFFLINE=true

# Cross-algorithm convolution conformance: every algorithm (direct,
# im2col over both GEMM engines, Winograd F(2x2)/F(4x4), FFT, CSR)
# against the naive reference under per-algorithm error budgets, plus
# the transform-ladder fault-injection rungs and a tiny-shape pass
# through the conv-algo bench harness. The full bench run (which
# regenerates BENCH_conv.json and enforces the FFT-beats-im2col and
# F4 >= 1.3x F2 gates) is manual.
conv_conformance() {
  echo "== conv-conformance =="
  cargo test -q --test conv_conformance
  cargo test -q --features fault-inject --test fault_injection fft
  cargo test -q --features fault-inject --test fault_injection winograd4
  CONV_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench conv_algo
}

# `./ci.sh conv-conformance` runs just that job (fast inner loop for
# kernel work); no argument runs the whole tier-1 gate.
if [[ "${1:-all}" == "conv-conformance" ]]; then
  conv_conformance
  echo "ci: conv-conformance green"
  exit 0
fi

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== fault-injection tests =="
# The injector only compiles under this feature; the run above doubles
# as the proof that the default build excludes it (the
# `default_build_excludes_fault_injection` unit test asserts a
# zero-sized no-op FaultPlan when the feature is off).
cargo test -q --features fault-inject
cargo test -q -p cnn-stack-nn --features fault-inject

echo "== gemm equivalence (proptest) =="
# The packed/SIMD GEMM engine must agree with the naive reference on
# arbitrary shapes, including non-finite propagation.
cargo test -q --test gemm_equivalence

echo "== gemm bench smoke =="
# Exercises the benchmark harness end to end on a tiny shape; the full
# sweep (which regenerates BENCH_gemm.json) is run manually.
GEMM_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench gemm

echo "== plan-passes =="
# Pass-based plan compiler: fusion equivalence (property-based, incl.
# non-finite inputs), pointwise fast path, residual cache invalidation,
# and a deterministic autotune smoke with the cache pinned to a temp
# dir so the runner's real cache is never touched.
cargo test -q --test plan_passes
cargo test -q -p cnn-stack-nn passes::
TUNE_DIR="$(mktemp -d)"
CNN_STACK_TUNE_CACHE="$TUNE_DIR/tune.tsv" cargo test -q -p cnn-stack-nn passes::tests::autotune
rm -rf "$TUNE_DIR"
# End-to-end plan bench harness on a tiny width (full run regenerates
# BENCH_plan.json manually).
PLAN_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench plan

echo "== obs-golden =="
# Golden-trace harness: serial traced sessions must reproduce the
# checked-in deterministic text traces (regenerate intentionally with
# CNN_STACK_BLESS=1).
cargo test -q --test trace_golden

echo "== kernel-proptest =="
# Kernels vs naive references (depthwise, pooling, ReLU — incl. the
# NaN/Inf corners) and metrics-vs-truth (gemm.flops == analytic MACs,
# clean runs never trip the guard, pool runs what it queues).
cargo test -q --test kernel_proptest
cargo test -q --test obs_metrics

echo "== obs bench smoke =="
# Tracing-off must stay within 5% of the frozen PR 4 baseline (the full
# run, which regenerates BENCH_obs.json, enforces the 1% gate manually).
OBS_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench obs

echo "== serve-tests =="
# Serving layer: deterministic ManualClock batching/shedding semantics,
# the fault-injected co-batch integrity proof, the serve crate's own
# unit + doc tests, and the deprecated-path compatibility shims.
cargo test -q --test serve_batching
cargo test -q --test serve_batching --features fault-inject
cargo test -q -p cnn-stack-serve
cargo test -q --test deprecated_shims

echo "== serve-bench-smoke =="
# Tiny open-loop run through the real threaded server (width 0.25,
# max-batch 4) with a loose 5% batching gate; the full run (which
# regenerates BENCH_serve.json and enforces the 2x gate) is manual.
SERVE_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench serve

echo "== serve-chaos =="
# Self-healing runtime: deterministic ManualClock supervision tests
# (worker-panic -> typed failures + respawn, hung-batch watchdog
# failover, crash-loop backoff caps, breaker trip -> degraded ->
# half-open recovery), then a small threaded chaos run with an injected
# crash + hang at 1.5x capacity asserting zero lost tickets. The full
# chaos run (which regenerates BENCH_chaos.json and enforces the
# breaker-on < breaker-off miss-rate gate) is manual.
cargo test -q --test serve_supervision
cargo test -q --test serve_supervision --features fault-inject
CHAOS_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench chaos --features fault-inject

echo "== quant-proptest =="
# Quantised compute path: the 2-bit spmm and the ternary/int8 packed
# GEMM engines vs their f32/exact-integer references (incl. the 0·NaN
# propagation policy), plus the panel-cache lifecycle (weight_mut /
# set_format / TTQ reproject must drop stale code snapshots).
cargo test -q --test quant_kernels
cargo test -q --test quant_invalidation

echo "== quant-bench-smoke =="
# Tiny-shape pass through the quant bench harness, asserting the ternary
# path stays bit-identical to f32 before timing; the full run (which
# regenerates BENCH_quant.json and enforces the >= 1.5x conv5 speedup
# gate) is manual.
QUANT_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench quant

echo "== plan-memory =="
# Memory-budgeted planning: coloured-arena bit-identity vs ping-pong
# (property-based, incl. non-finite payloads), the 16 MB VGG-16 budget
# acceptance scenario, budget-infeasibility floor reporting, and the
# liveness/colouring unit tests. The smoke bench exercises the memory
# harness end to end on a thin model; the full run (which regenerates
# BENCH_memory.json and enforces the >= 30% peak-reduction / <= 5%
# latency gates) is manual.
cargo test -q --test plan_memory
cargo test -q -p cnn-stack-nn liveness::
MEMORY_BENCH_SMOKE=1 cargo bench -p cnn-stack-bench --bench memory

conv_conformance

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "ci: all green"
