//! Quantised panel-cache lifecycle tests: every route that mutates a
//! layer's weights or flips its storage format must drop (or refresh)
//! the 2-bit ternary / int8 code snapshots, so the quantised kernels
//! can never read stale codes. A missing snapshot is a performance
//! event — the dispatch falls back to the f32 packed engine on the
//! dense master weights — never a correctness one.
//!
//! Covered routes: `set_format` (snapshot + refresh + drop on flip to
//! Dense), `weight_mut` (drop), and `compress::ttq::reproject` (drop
//! via the shared weight-param walk), plus the panel-adoption surface
//! (`export_quant_panels` / `adopt_quant_panels`) rejecting mismatched
//! donors.

use cnn_stack::compress::ttq::{reproject, ttq_quantise};
use cnn_stack::nn::{
    adopt_quant_panels, export_quant_panels, Conv2d, ConvAlgorithm, ExecConfig, Flatten, Layer,
    Linear, Network, Phase, WeightFormat,
};
use cnn_stack::tensor::{GemmAlgorithm, Tensor};

fn ternary_cfg() -> ExecConfig {
    ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        gemm_algo: GemmAlgorithm::TernaryPacked,
        ..ExecConfig::serial()
    }
}

fn packed_cfg() -> ExecConfig {
    ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        gemm_algo: GemmAlgorithm::Packed,
        ..ExecConfig::serial()
    }
}

/// Writes a deterministic ternary pattern drawn from `{-wn, 0, +wp}`.
fn fill_ternary(data: &mut [f32], wp: f32, wn: f32, seed: u64) {
    for (i, v) in data.iter_mut().enumerate() {
        *v = match (i as u64 * 2654435761 + seed) % 4 {
            0 => wp,
            1 => -wn,
            _ => 0.0,
        };
    }
}

fn assert_bit_identical(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape().dims(), b.shape().dims());
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert!(
            x == y || (x.is_nan() && y.is_nan()),
            "{} element {} differs: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

#[test]
fn linear_ternary_snapshot_bit_matches_f32_packed() {
    let mut fc = Linear::new(33, 17, 5);
    fill_ternary(fc.weight_mut().value.data_mut(), 0.75, 0.5, 1);
    fc.set_format(WeightFormat::Ternary);
    let x = Tensor::from_fn([3, 33], |i| (i as f32 * 0.17).sin());
    let quant = fc.forward(&x, Phase::Eval, &ternary_cfg());
    let f32_run = fc.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&quant, &f32_run, "linear ternary");
}

#[test]
fn linear_weight_mut_drops_stale_ternary_panels() {
    let mut fc = Linear::new(20, 9, 5);
    fill_ternary(fc.weight_mut().value.data_mut(), 0.75, 0.5, 1);
    fc.set_format(WeightFormat::Ternary);
    let x = Tensor::from_fn([2, 20], |i| (i as f32 * 0.31).cos());
    let before = fc.forward(&x, Phase::Eval, &ternary_cfg());

    // Mutate the weights through `weight_mut` *without* re-calling
    // `set_format`: the snapshot must be dropped, so the quantised
    // config falls back to the f32 engine on the NEW weights.
    fill_ternary(fc.weight_mut().value.data_mut(), 1.25, 0.25, 7);
    let after = fc.forward(&x, Phase::Eval, &ternary_cfg());
    let reference = fc.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&after, &reference, "post-mutation linear");
    assert!(
        after.data() != before.data(),
        "stale codes survived the weight mutation"
    );

    // Re-snapshotting restores the quantised kernel, still bit-equal.
    fc.set_format(WeightFormat::Ternary);
    let refreshed = fc.forward(&x, Phase::Eval, &ternary_cfg());
    assert_bit_identical(&refreshed, &reference, "refreshed linear");
}

#[test]
fn linear_format_flips_replace_or_drop_panels() {
    let mut fc = Linear::new(24, 11, 3);
    fill_ternary(fc.weight_mut().value.data_mut(), 0.5, 1.0, 2);
    let x = Tensor::from_fn([2, 24], |i| (i as f32 * 0.13).sin());
    let dense_ref = fc.forward(&x, Phase::Eval, &packed_cfg());

    // Ternary → Int8 → Dense. Each flip must leave the layer serving
    // correct results under every kernel request.
    fc.set_format(WeightFormat::Ternary);
    assert_bit_identical(
        &fc.forward(&x, Phase::Eval, &ternary_cfg()),
        &dense_ref,
        "ternary rung",
    );

    fc.set_format(WeightFormat::Int8);
    let int8_cfg = ExecConfig {
        gemm_algo: GemmAlgorithm::Int8Packed,
        ..ExecConfig::serial()
    };
    let int8_out = fc.forward(&x, Phase::Eval, &int8_cfg);
    // Int8 is lossy: close, not bit-equal (weights and activations each
    // round to 8 bits).
    for (&q, &d) in int8_out.data().iter().zip(dense_ref.data()) {
        assert!(
            (q - d).abs() <= 0.05 * d.abs().max(1.0),
            "int8 drifted: {} vs {}",
            q,
            d
        );
    }
    // A ternary request against an int8 snapshot must fall back to f32,
    // not decode int8 codes as ternary.
    assert_bit_identical(
        &fc.forward(&x, Phase::Eval, &ternary_cfg()),
        &dense_ref,
        "ternary request on int8 snapshot",
    );

    fc.set_format(WeightFormat::Dense);
    assert_bit_identical(
        &fc.forward(&x, Phase::Eval, &ternary_cfg()),
        &dense_ref,
        "dense rung",
    );
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

#[test]
fn conv_ternary_snapshot_bit_matches_f32_packed() {
    let mut conv = Conv2d::new(4, 10, 3, 1, 1, 9);
    fill_ternary(conv.weight_mut().value.data_mut(), 0.625, 0.375, 3);
    conv.set_format(WeightFormat::Ternary);
    let x = Tensor::from_fn([2, 4, 6, 6], |i| (i as f32 * 0.07).sin());
    let quant = conv.forward(&x, Phase::Eval, &ternary_cfg());
    let f32_run = conv.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&quant, &f32_run, "conv ternary");
}

#[test]
fn conv_weight_mut_drops_stale_ternary_panels() {
    let mut conv = Conv2d::new(3, 6, 3, 1, 1, 9);
    fill_ternary(conv.weight_mut().value.data_mut(), 0.625, 0.375, 3);
    conv.set_format(WeightFormat::Ternary);
    let x = Tensor::from_fn([1, 3, 5, 5], |i| (i as f32 * 0.11).cos());
    let before = conv.forward(&x, Phase::Eval, &ternary_cfg());

    fill_ternary(conv.weight_mut().value.data_mut(), 0.875, 0.125, 11);
    let after = conv.forward(&x, Phase::Eval, &ternary_cfg());
    let reference = conv.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&after, &reference, "post-mutation conv");
    assert!(
        after.data() != before.data(),
        "stale codes survived the weight mutation"
    );
}

#[test]
fn conv_non_ternary_weights_fall_back_defined() {
    // `set_format(Ternary)` on weights with more than one magnitude per
    // sign takes no snapshot; the quantised request must serve the f32
    // path instead of asserting or mis-encoding.
    let mut conv = Conv2d::new(2, 4, 3, 1, 1, 9);
    conv.set_format(WeightFormat::Ternary); // random init: not ternary
    let x = Tensor::from_fn([1, 2, 5, 5], |i| (i as f32 * 0.19).sin());
    let quant = conv.forward(&x, Phase::Eval, &ternary_cfg());
    let reference = conv.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&quant, &reference, "non-ternary fallback");
}

// ---------------------------------------------------------------------------
// TTQ reprojection
// ---------------------------------------------------------------------------

/// Mixed-magnitude pattern whose TTQ scales are lopsided (W⁺ ≈ 0.9,
/// W⁻ ≈ 0.25), so a reprojection at `t = 0.4` (delta ≈ 0.36) provably
/// zeroes the whole negative side and changes the network output.
fn fill_mixed(data: &mut [f32], seed: u64) {
    for (i, v) in data.iter_mut().enumerate() {
        *v = match (i as u64 * 2654435761 + seed) % 5 {
            0 => 1.0,
            1 => 0.8,
            2 => -0.3,
            3 => -0.2,
            _ => 0.04,
        };
    }
}

#[test]
fn reproject_drops_stale_quant_panels() {
    let build = || {
        Network::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, 21)) as Box<dyn Layer>,
            Box::new(Flatten::new()),
            Box::new(Linear::new(8 * 6 * 6, 5, 22)),
        ])
        .unwrap()
    };
    let mut net = build();
    for layer in net.layers_mut() {
        if let Some(c) = layer.as_any_mut().downcast_mut::<Conv2d>() {
            fill_mixed(c.weight_mut().value.data_mut(), 1);
        } else if let Some(fc) = layer.as_any_mut().downcast_mut::<Linear>() {
            fill_mixed(fc.weight_mut().value.data_mut(), 2);
        }
    }
    ttq_quantise(&mut net, 0.05);
    cnn_stack::nn::network::set_network_format(&mut net, WeightFormat::Ternary);
    let x = Tensor::from_fn([1, 3, 6, 6], |i| (i as f32 * 0.23).sin());
    let before = net.forward(&x, Phase::Eval, &ternary_cfg());

    // Reprojecting at a harsher threshold rewrites the master weights
    // (through `weight_mut`), so the old code panels are stale; the
    // quantised config must now serve the REPROJECTED weights via the
    // f32 fallback.
    reproject(&mut net, 0.4);
    let after = net.forward(&x, Phase::Eval, &ternary_cfg());
    let reference = net.forward(&x, Phase::Eval, &packed_cfg());
    assert_bit_identical(&after, &reference, "post-reproject");
    assert!(
        after.data() != before.data(),
        "reprojection changed no output — threshold too soft for the test"
    );
}

// ---------------------------------------------------------------------------
// Panel adoption
// ---------------------------------------------------------------------------

#[test]
fn adopt_quant_panels_shares_and_rejects() {
    let build = |seed| {
        let mut fc = Linear::new(28, 13, seed);
        fill_ternary(fc.weight_mut().value.data_mut(), 0.5, 0.75, 4);
        let mut net = Network::new(vec![Box::new(fc) as Box<dyn Layer>]).unwrap();
        cnn_stack::nn::network::set_network_format(&mut net, WeightFormat::Ternary);
        net
    };
    let mut donor = build(31);
    let panels = export_quant_panels(&mut donor);
    assert!(
        panels.iter().any(|p| p.is_some()),
        "donor exported no quant panels"
    );

    // Identically-shaped replica adopts the donor's codes.
    let mut replica = build(31);
    assert_eq!(adopt_quant_panels(&mut replica, &panels), 1);
    let x = Tensor::from_fn([2, 28], |i| (i as f32 * 0.29).cos());
    assert_bit_identical(
        &replica.forward(&x, Phase::Eval, &ternary_cfg()),
        &donor.forward(&x, Phase::Eval, &ternary_cfg()),
        "replica vs donor",
    );

    // A differently-shaped layer must refuse the panels outright.
    let mut misfit =
        Network::new(vec![Box::new(Linear::new(12, 13, 31)) as Box<dyn Layer>]).unwrap();
    cnn_stack::nn::network::set_network_format(&mut misfit, WeightFormat::Ternary);
    assert_eq!(adopt_quant_panels(&mut misfit, &panels), 0);
}
