//! Golden-trace tests: serial inference sessions at `ObsLevel::Trace`
//! must reproduce the checked-in deterministic text traces exactly.
//!
//! The text exporter sorts by timestamp and emits no durations, so a
//! *sequential* session's trace depends only on the compiled plan —
//! step names, fusion decisions, algorithm choices and step order — and
//! regenerating it flags any silent change to the pass pipeline.
//!
//! To bless a new golden after an intentional plan change:
//!
//! ```text
//! CNN_STACK_BLESS=1 cargo test --test trace_golden
//! ```

use cnn_stack::models::ModelKind;
use cnn_stack::nn::{ExecConfig, GuardConfig, InferenceSession, ObsLevel, PlanCompiler};
use cnn_stack::obs::text_trace;
use cnn_stack::tensor::Tensor;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("CNN_STACK_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; generate it with CNN_STACK_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "trace drifted from {}; if the plan change is intentional, \
         re-bless with CNN_STACK_BLESS=1",
        name
    );
}

/// Compiles `kind` through the standard pass pipeline at width 0.25,
/// runs one serial traced inference and returns the text trace.
fn traced_run(kind: ModelKind) -> String {
    let mut model = kind.build_width(10, 0.25);
    let cfg = ExecConfig {
        observer: ObsLevel::Trace,
        ..ExecConfig::serial()
    };
    let plan = model
        .compile_plan(1, &cfg, &PlanCompiler::standard())
        .expect("plan compiles");
    let mut session = InferenceSession::with_guard(&mut model.network, plan, GuardConfig::Off)
        .expect("session builds");
    let input = Tensor::from_fn([1, 3, 32, 32], |i| ((i * 7 % 23) as f32) * 0.1 - 1.1);
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    session.run_into(&input, &mut out).expect("clean run");
    text_trace(
        session
            .observer()
            .expect("Trace level attaches an observer"),
    )
}

/// MobileNet exercises depthwise separable steps and the fold-and-fuse
/// pass (conv + BN + ReLU collapse into one traced span each).
#[test]
fn mobilenet_trace_matches_golden() {
    check_golden("mobilenet_trace.txt", &traced_run(ModelKind::MobileNet));
}

/// ResNet-18 exercises residual-block steps: the skip connections keep
/// whole blocks as single plan steps with their own span names.
#[test]
fn resnet18_trace_matches_golden() {
    check_golden("resnet18_trace.txt", &traced_run(ModelKind::ResNet18));
}

/// The golden format itself: first line is the version header, every
/// following line is an indented `span`/`mark` entry, the `run` span
/// comes first and every step span nests inside it.
#[test]
fn trace_text_format_invariants() {
    let trace = traced_run(ModelKind::MobileNet);
    let mut lines = trace.lines();
    assert_eq!(lines.next(), Some("trace-text v1"));
    assert_eq!(lines.next(), Some("span run"));
    let mut steps = 0;
    for line in lines {
        assert!(
            line.starts_with("  span ") || line.starts_with("  mark "),
            "step events nest one level under the run span: {line:?}"
        );
        steps += 1;
    }
    assert!(steps > 10, "MobileNet should trace a span per fused step");
}
