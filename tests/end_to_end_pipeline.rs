//! End-to-end integration of the paper's full pipeline: train on
//! CIFAR-10-shaped data, compress with each technique, fine-tune, and
//! check that accuracy behaves as the paper describes.

use cnn_stack::compress::{magnitude, ttq, FisherPruner};
use cnn_stack::dataset::{DatasetConfig, SyntheticCifar};
use cnn_stack::models::{resnet18_width, vgg16_width};
use cnn_stack::nn::network::set_network_format;
use cnn_stack::nn::train::{evaluate, train_batch};
use cnn_stack::nn::{ExecConfig, Phase, Sgd, WeightFormat};
use cnn_stack::tensor::ops;

fn train_for(net: &mut cnn_stack::nn::Network, data: &SyntheticCifar, batches: usize, lr: f32) {
    let exec = ExecConfig::default();
    let mut sgd = Sgd::new(lr).momentum(0.9);
    for b in 0..batches {
        let (images, labels) = data.train_batch(b, 20);
        train_batch(net, &mut sgd, &images, &labels, &exec);
    }
}

#[test]
fn train_prune_finetune_recovers_accuracy() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(11));
    let exec = ExecConfig::default();
    let (tx, ty) = data.test_set();

    let mut model = vgg16_width(10, 0.125);
    train_for(&mut model.network, &data, 40, 0.05);
    let trained = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(trained > 0.5, "base training failed: {trained}");

    // Prune hard, measure the damage, fine-tune, measure recovery.
    magnitude::prune_network(&mut model.network, 0.7);
    train_for(&mut model.network, &data, 25, 0.01);
    let recovered = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(
        recovered > trained - 0.15,
        "fine-tuning did not recover: {trained} -> {recovered}"
    );
    // Sparsity survived the fine-tune (masks pin zeros).
    let sparsity = model.network.weight_sparsity(&[1, 3, 32, 32]);
    assert!(sparsity > 0.6, "sparsity lost during fine-tune: {sparsity}");

    // The sparse network still works in CSR inference format.
    set_network_format(&mut model.network, WeightFormat::Csr);
    let csr_acc = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(
        (csr_acc - recovered).abs() < 1e-6,
        "CSR inference changed results: {recovered} vs {csr_acc}"
    );
}

#[test]
fn fisher_pruning_with_finetuning_stays_accurate() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(12));
    let exec = ExecConfig::default();
    let (tx, ty) = data.test_set();

    let mut model = resnet18_width(10, 0.125);
    train_for(&mut model.network, &data, 40, 0.05);
    let trained = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(trained > 0.5, "base training failed: {trained}");

    let params_before = model.network.num_params();
    let mut pruner = FisherPruner::new(&model.network, &model.plan, 1e-9);
    let mut sgd = Sgd::new(0.01).momentum(0.9);
    // The paper's loop: fine-tune, removing one channel every N steps.
    for step in 0..12 {
        let (images, labels) = data.train_batch(step, 20);
        model.network.zero_grad();
        let logits = model.network.forward(&images, Phase::Train, &exec);
        let (_, dlogits) = ops::cross_entropy_with_grad(&logits, &labels);
        model.network.backward(&dlogits);
        pruner.accumulate(&mut model.network, &model.plan);
        sgd.step(&mut model.network);
        if step % 2 == 1 {
            pruner.prune_one(&mut model.network, &model.plan, &[1, 3, 32, 32]);
        }
    }
    assert_eq!(pruner.pruned_channels(), 6);
    assert!(model.network.num_params() < params_before);
    let pruned_acc = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(
        pruned_acc > trained - 0.25,
        "channel pruning destroyed the model: {trained} -> {pruned_acc}"
    );
}

#[test]
fn ttq_projection_training_keeps_ternary_support() {
    let data = SyntheticCifar::new(DatasetConfig::tiny(13));
    let exec = ExecConfig::default();
    let (tx, ty) = data.test_set();

    let mut model = vgg16_width(10, 0.125);
    train_for(&mut model.network, &data, 30, 0.05);
    let trained = evaluate(&mut model.network, &tx, &ty, &exec);

    let report = ttq::ttq_quantise(&mut model.network, 0.05);
    assert!(report.sparsity > 0.0);
    // Fine-tune with reprojection after every step.
    let mut sgd = Sgd::new(0.005).momentum(0.9);
    for b in 0..10 {
        let (images, labels) = data.train_batch(b, 20);
        train_batch(&mut model.network, &mut sgd, &images, &labels, &exec);
        ttq::reproject(&mut model.network, 0.05);
    }
    let quantised = evaluate(&mut model.network, &tx, &ty, &exec);
    assert!(
        quantised > trained - 0.4,
        "quantisation destroyed the model: {trained} -> {quantised}"
    );
    // Every conv weight tensor holds at most 3 distinct values.
    let report2 = ttq::reproject(&mut model.network, 0.05);
    for (name, pos, neg, _) in &report2.per_layer {
        assert!(pos.is_finite() && neg.is_finite(), "{name} scales broken");
    }
}
