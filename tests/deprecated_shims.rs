//! Compatibility test: the pre-prelude import paths still compile and
//! still name the same types as the new surface. This file is the only
//! place allowed to use them.
#![allow(deprecated)]

#[test]
fn deprecated_root_aliases_still_name_the_same_types() {
    // Type-identity checks: a value built through the old path is
    // accepted where the new path's type is expected.
    let exec: cnn_stack::ExecConfig = cnn_stack::nn::ExecConfig::serial();
    assert_eq!(exec.threads, 1);

    let guard: cnn_stack::GuardConfig = cnn_stack::nn::GuardConfig::Paranoid;
    assert!(guard.checks_boundaries());

    let obs: cnn_stack::ObsLevel = cnn_stack::obs::ObsLevel::Off;
    assert_eq!(obs, cnn_stack::obs::ObsLevel::default());

    let stack_cfg: cnn_stack::StackConfig = cnn_stack::stack::StackConfig::plain(
        cnn_stack::models::ModelKind::MobileNet,
        cnn_stack::stack::PlatformChoice::IntelI7,
    );
    assert_eq!(stack_cfg.threads, 1);
}
