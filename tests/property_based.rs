//! Property-based tests (proptest) over the core data structures and
//! kernels: layout transforms, sparse formats, GEMM variants, pruning
//! invariants and scheduling coverage.

use cnn_stack::compress::huffman::HuffmanCode;
use cnn_stack::compress::magnitude;
use cnn_stack::compress::packed::PackedTernaryMatrix;
use cnn_stack::nn::{
    BatchNorm2d, Conv2d, ConvAlgorithm, DepthwiseConv2d, ExecConfig, Flatten, InferencePlan,
    InferenceSession, Layer, Linear, MaxPool2d, Network, Phase, ReLU, ResidualBlock,
};
use cnn_stack::parallel::{parallel_for, Schedule};
use cnn_stack::sparse::{CscMatrix, CsrMatrix};
use cnn_stack::tensor::{col2im, gemm, im2col, ops, Conv2dGeometry, Shape, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |data| (r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shape_offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let shape = Shape::new(dims);
        for off in 0..shape.len() {
            prop_assert_eq!(shape.offset(&shape.unravel(off)), off);
        }
    }

    #[test]
    fn csr_roundtrips_any_matrix((r, c, data) in small_matrix()) {
        let dense = Tensor::from_vec([r, c], data);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert!(csr.to_dense().allclose(&dense, 0.0));
        prop_assert_eq!(csr.nnz(), dense.len() - dense.count_zeros(0.0));
    }

    #[test]
    fn csc_roundtrips_any_matrix((r, c, data) in small_matrix()) {
        let dense = Tensor::from_vec([r, c], data);
        let csc = CscMatrix::from_dense(&dense, 0.0);
        prop_assert!(csc.to_dense().allclose(&dense, 0.0));
    }

    #[test]
    fn csr_transpose_is_involution((r, c, data) in small_matrix()) {
        let dense = Tensor::from_vec([r, c], data);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert!(csr.transpose().transpose().to_dense().allclose(&dense, 0.0));
    }

    #[test]
    fn spmm_matches_dense_gemm(
        (r, k, data) in small_matrix(),
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_vec([r, k], data);
        // Sparsify a: zero every third element for structure.
        let a = Tensor::from_fn([r, k], |i| if i % 3 == 0 { 0.0 } else { a.data()[i] });
        let b = Tensor::from_fn([k, cols], |i| ((i as u64 * 7 + seed) % 13) as f32 - 6.0);
        let want = gemm::matmul(&a, &b);
        let got = CsrMatrix::from_dense(&a, 0.0).spmm(&b);
        prop_assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn gemm_algorithms_agree(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        tile in 1usize..9,
    ) {
        let a = Tensor::from_fn([m, k], |i| ((i * 31 % 17) as f32) * 0.25 - 2.0);
        let b = Tensor::from_fn([k, n], |i| ((i * 13 % 11) as f32) * 0.5 - 2.5);
        let naive = gemm::matmul_with(&a, &b, gemm::GemmAlgorithm::Naive);
        let blocked = gemm::matmul_with(&a, &b, gemm::GemmAlgorithm::Blocked);
        let cfg = cnn_stack::tensor::TileConfig::new(tile, tile, tile, 2);
        let tiled = gemm::matmul_with(&a, &b, gemm::GemmAlgorithm::Tiled(cfg));
        prop_assert!(naive.allclose(&blocked, 1e-3));
        prop_assert!(naive.allclose(&tiled, 1e-3));
    }

    #[test]
    fn im2col_col2im_adjoint_property(
        c in 1usize..3, h in 3usize..7, w in 3usize..7,
        stride in 1usize..3, pad in 0usize..2,
    ) {
        // <im2col(x), y> == <x, col2im(y)> — the transpose relation the
        // conv backward pass relies on.
        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let geom = Conv2dGeometry::new(c, h, w, 3, 3, stride, pad);
        let x = Tensor::from_fn([1, c, h, w], |i| ((i * 7 % 5) as f32) - 2.0);
        let y = Tensor::from_fn(
            [geom.patch_len(), geom.out_positions()],
            |i| ((i * 11 % 7) as f32) - 3.0,
        );
        let cols = im2col(x.data(), &geom);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; c * h * w];
        col2im(&y, &geom, &mut back);
        let rhs: f32 = x.data().iter().zip(&back).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..5, cols in 1usize..8, seed in 0u64..100,
    ) {
        let logits = Tensor::from_fn([rows, cols], |i| {
            (((i as u64 + seed) * 2654435761 % 100) as f32) / 10.0 - 5.0
        });
        let p = ops::softmax_rows(&logits);
        for r in 0..rows {
            let row = &p.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn magnitude_threshold_prunes_exactly_the_target(
        n in 10usize..200, sparsity in 0.0f64..0.95,
    ) {
        // Distinct magnitudes so the quantile is exact.
        let w = Tensor::from_fn([1, n], |i| (i + 1) as f32 * if i % 2 == 0 { 1.0 } else { -1.0 });
        let t = magnitude::magnitude_threshold(&w, sparsity);
        let pruned = w.data().iter().filter(|v| v.abs() <= t).count();
        let expect = (n as f64 * sparsity) as usize;
        prop_assert_eq!(pruned, expect);
    }

    #[test]
    fn parallel_for_covers_every_index_once(
        threads in 1usize..6,
        total in 0usize..200,
        chunk in 1usize..16,
    ) {
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk },
            Schedule::Guided { min_chunk: chunk },
        ] {
            let hits = Mutex::new(vec![0u8; total]);
            parallel_for(threads, total, schedule, |range| {
                let mut h = hits.lock().unwrap();
                for i in range {
                    h[i] += 1;
                }
            });
            let h = hits.into_inner().unwrap();
            prop_assert!(h.iter().all(|&x| x == 1), "{:?}", schedule);
        }
    }

    #[test]
    fn winograd_matches_im2col_reference(
        c in 1usize..4, out_c in 1usize..4,
        h in 4usize..9, w in 4usize..9,
        pad in 0usize..2, seed in 0u64..50,
    ) {
        prop_assume!(h + 2 * pad > 2 && w + 2 * pad > 2);
        let input = Tensor::from_fn([1, c, h, w], |i| {
            (((i as u64 + seed) * 2654435761) % 97) as f32 * 0.02 - 1.0
        });
        let weights = Tensor::from_fn([out_c, c, 3, 3], |i| {
            (((i as u64 + seed) * 40503) % 31) as f32 * 0.05 - 0.75
        });
        let got = cnn_stack::tensor::winograd_conv2d(&input, &weights, None, pad)
            .expect("eligible 3x3 layer");
        // Reference via im2col + GEMM.
        let geom = Conv2dGeometry::new(c, h, w, 3, 3, 1, pad);
        let wmat = weights.reshape([out_c, c * 9]);
        let cols = im2col(input.data(), &geom);
        let want = gemm::matmul(&wmat, &cols)
            .reshape([1, out_c, geom.out_h, geom.out_w]);
        prop_assert!(want.allclose(&got, 1e-2));
    }

    #[test]
    fn huffman_roundtrips_any_stream(
        stream in proptest::collection::vec(0u16..12, 1..400),
    ) {
        let code = HuffmanCode::build(&stream);
        let enc = code.encode(&stream);
        prop_assert_eq!(code.decode(&enc), stream);
    }

    #[test]
    fn packed_ternary_roundtrips(
        r in 1usize..8, c in 1usize..20, seed in 0u64..100,
    ) {
        let t = Tensor::from_fn([r, c], |i| {
            match ((i as u64 + seed) * 2654435761) % 4 {
                0 => 0.5,
                1 => -0.75,
                _ => 0.0,
            }
        });
        let m = PackedTernaryMatrix::from_dense_ternary(&t).expect("ternary");
        prop_assert!(m.to_dense().allclose(&t, 0.0));
        let b = Tensor::from_fn([c, 3], |i| i as f32 * 0.1);
        prop_assert!(gemm::matmul(&t, &b).allclose(&m.spmm(&b), 1e-4));
    }

    #[test]
    fn csr_memory_accounting_is_consistent((r, c, data) in small_matrix()) {
        let dense = Tensor::from_vec([r, c], data);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        prop_assert_eq!(
            csr.storage_bytes(),
            cnn_stack::sparse::csr_bytes(r, c, csr.nnz())
        );
    }
}

/// A small randomised layer stack over an 8×8 input: conv-bn-relu, then
/// optionally a depthwise stage and/or a strided residual block, then
/// pool-flatten-linear. Returns the network and its final channel count.
fn random_stack(seed: u64, c: usize, use_dw: bool, use_block: bool) -> Network {
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(3, c, 3, 1, 1, seed)),
        Box::new(BatchNorm2d::new(c)),
        Box::new(ReLU::new()),
    ];
    if use_dw {
        layers.push(Box::new(DepthwiseConv2d::new(c, 3, 1, 1, seed + 1)));
    }
    let (out_c, spatial) = if use_block {
        layers.push(Box::new(ResidualBlock::new(c, c + 1, 2, seed + 2)));
        (c + 1, 2usize) // 8×8 → block stride 2 → 4×4 → pool → 2×2
    } else {
        (c, 4usize) // 8×8 → pool → 4×4
    };
    layers.push(Box::new(MaxPool2d::new(2)));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(
        out_c * spatial * spatial,
        5,
        seed + 3,
    )));
    Network::new(layers).expect("stack is non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_bit_matches_forward_on_random_stacks(
        seed in 0u64..10_000,
        batch in 1usize..9,
        c in 2usize..6,
        use_dw in 0usize..2,
        use_block in 0usize..2,
        algo_idx in 0usize..3,
        threads in 1usize..5,
    ) {
        let algo = [
            ConvAlgorithm::Direct,
            ConvAlgorithm::Im2col,
            ConvAlgorithm::Winograd,
        ][algo_idx];
        let cfg = ExecConfig {
            threads,
            conv_algo: algo,
            ..ExecConfig::serial()
        };
        let mut net = random_stack(seed, c, use_dw == 1, use_block == 1);
        let input = Tensor::from_fn([batch, 3, 8, 8], |i| {
            (((i as u64 + seed) * 2654435761) % 211) as f32 * 0.01 - 1.0
        });
        let expected = net.forward(&input, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg)
            .expect("stack accepts its input shape");
        let mut session =
            InferenceSession::new(&mut net, plan).expect("plan matches network");
        let got = session.run(&input).expect("input matches plan");
        // Bit-identical, not just close: the engine promises exact
        // agreement with the allocating path for every algorithm,
        // batch size, and thread count.
        prop_assert_eq!(got.shape().dims(), expected.shape().dims());
        prop_assert_eq!(got.data(), expected.data());
    }
}

#[test]
fn pruned_masks_survive_arbitrary_updates() {
    // Deterministic companion: a masked Param clamps any update pattern.
    use cnn_stack::nn::Param;
    let mut p = Param::new(Tensor::from_fn([64], |i| i as f32 - 31.5));
    let mask = Tensor::from_fn([64], |i| if i % 5 == 0 { 0.0 } else { 1.0 });
    p.set_mask(mask);
    for step in 0..10 {
        for (i, v) in p.value.data_mut().iter_mut().enumerate() {
            *v += (step * i) as f32 * 0.1;
        }
        p.apply_mask();
        for (i, v) in p.value.data().iter().enumerate() {
            if i % 5 == 0 {
                assert_eq!(*v, 0.0);
            }
        }
    }
}
