//! Metrics-vs-truth property tests: the observability registry must
//! report numbers that match what the engine *analytically* did, not
//! just plausible-looking counters.
//!
//! * `gemm.flops` equals `2 x` the plan's analytic MAC count when every
//!   mac-bearing step routes through the packed GEMM engine;
//! * a clean run never trips the guard, and boundary-mode scan counts
//!   equal one scan per step per run;
//! * the worker pool runs exactly the tasks it queued — nothing lost,
//!   nothing duplicated, no contained panics.

use cnn_stack::nn::{
    Conv2d, ConvAlgorithm, ExecConfig, Flatten, GuardConfig, InferencePlan, InferenceSession,
    Linear, MaxPool2d, Network, ObsLevel, ReLU,
};
use cnn_stack::obs::MetricsSnapshot;
use cnn_stack::tensor::Tensor;
use proptest::prelude::*;

/// A conv -> relu -> pool -> flatten -> linear network whose only
/// mac-bearing steps are the conv and the linear layer.
fn small_net(in_c: usize, out_c: usize, classes: usize, hw: usize) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(in_c, out_c, 3, 1, 1, 11)),
        Box::new(ReLU::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(out_c * (hw / 2) * (hw / 2), classes, 13)),
    ])
    .expect("valid network")
}

fn run_and_snapshot(
    net: &mut Network,
    cfg: &ExecConfig,
    guard: GuardConfig,
    input: &Tensor,
    runs: usize,
) -> MetricsSnapshot {
    let plan = InferencePlan::compile(net, input.shape().dims(), cfg).expect("plan compiles");
    let mut session = InferenceSession::with_guard(net, plan, guard).expect("session builds");
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    for _ in 0..runs {
        session.run_into(input, &mut out).expect("clean run");
    }
    session
        .observer()
        .expect("Metrics level attaches an observer")
        .snapshot()
}

fn counter(m: &MetricsSnapshot, name: &str) -> u64 {
    m.counter(name)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `gemm.flops` must equal `2 x` the analytic MAC count from the
    /// plan's IR geometry when the conv lowers through im2col into the
    /// packed GEMM engine (the linear layer always routes through it).
    #[test]
    fn gemm_flops_match_analytic_macs(
        (batch, out_c, hw) in (1usize..4, 2usize..6, (2usize..5).prop_map(|b| 2 * b)),
        runs in 1usize..3,
    ) {
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            observer: ObsLevel::Metrics,
            ..ExecConfig::serial()
        };
        let mut net = small_net(3, out_c, 4, hw);
        let input = Tensor::from_fn([batch, 3, hw, hw], |i| ((i * 7 % 13) as f32) * 0.25 - 1.5);
        let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).expect("plan");
        let analytic_macs: u64 = plan.steps().iter().map(|s| s.macs).sum();
        prop_assert!(analytic_macs > 0);
        let m = run_and_snapshot(&mut net, &cfg, GuardConfig::Off, &input, runs);
        prop_assert_eq!(
            counter(&m, "gemm.flops"),
            2 * analytic_macs * runs as u64,
            "gemm.flops must equal 2x the plan's MAC count per run"
        );
        // The packed conv path merges images whose output plane leaves
        // micro-kernel lanes idle (up to one column-grain of `4·NR`
        // merged columns) into one GEMM call, so the conv issues
        // `ceil(batch / group)` calls; the linear layer adds one more.
        // The im2col lowering is still recorded per image.
        let plane = hw * hw;
        let group = ((4 * cnn_stack::tensor::NR) / plane).clamp(1, batch);
        let conv_calls = batch.div_ceil(group) as u64;
        prop_assert_eq!(counter(&m, "gemm.calls"), (conv_calls + 1) * runs as u64);
        prop_assert_eq!(counter(&m, "im2col.calls"), batch as u64 * runs as u64);
    }

    /// Clean inputs and healthy weights: the guard scans every step
    /// boundary but never trips, retries or demotes.
    #[test]
    fn clean_runs_never_trip_the_guard(
        batch in 1usize..4,
        runs in 1usize..4,
    ) {
        let cfg = ExecConfig {
            observer: ObsLevel::Metrics,
            ..ExecConfig::serial()
        };
        let mut net = small_net(3, 4, 4, 8);
        let input = Tensor::from_fn([batch, 3, 8, 8], |i| ((i * 5 % 11) as f32) * 0.5 - 2.0);
        let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).expect("plan");
        let steps = plan.steps().len() as u64;
        let m = run_and_snapshot(&mut net, &cfg, GuardConfig::BoundaryCheck, &input, runs);
        prop_assert_eq!(counter(&m, "guard.trips"), 0, "clean run must not trip");
        prop_assert_eq!(counter(&m, "guard.retries"), 0);
        prop_assert_eq!(counter(&m, "guard.demotions"), 0);
        prop_assert_eq!(
            counter(&m, "guard.scans"),
            steps * runs as u64,
            "boundary mode scans once per step per run"
        );
    }

    /// Batch-parallel execution: every queued chunk task ran, none
    /// panicked, and the pool gauge reflects the worker count.
    #[test]
    fn pool_runs_exactly_the_tasks_it_queued(
        threads in 2usize..5,
        extra in 0usize..3,
        runs in 1usize..3,
    ) {
        let batch = threads + extra;
        let cfg = ExecConfig {
            threads,
            observer: ObsLevel::Metrics,
            ..ExecConfig::serial()
        };
        let mut net = small_net(3, 4, 4, 8);
        let input = Tensor::from_fn([batch, 3, 8, 8], |i| ((i * 3 % 7) as f32) * 0.5 - 1.0);
        let m = run_and_snapshot(&mut net, &cfg, GuardConfig::Off, &input, runs);
        let queued = counter(&m, "pool.tasks_queued");
        let ran = counter(&m, "pool.tasks_run");
        prop_assert_eq!(queued, ran, "every queued task must run");
        // One task per batch chunk per run; chunk count = min(threads, batch).
        let chunks = threads.min(batch) as u64;
        prop_assert_eq!(queued, chunks * runs as u64);
        prop_assert_eq!(counter(&m, "pool.panics_contained"), 0);
        prop_assert_eq!(
            m.gauge("pool.workers").expect("worker gauge registered"),
            threads as i64
        );
    }
}

/// On a real deep network the coloured arena must actually reuse bytes:
/// the session reports its allocated arena, the plan's predicted peak,
/// and a strictly positive saving over the legacy ping-pong layout.
#[test]
fn vgg16_reports_positive_arena_reuse() {
    let mut model = cnn_stack::models::vgg16(10);
    let cfg = ExecConfig {
        observer: ObsLevel::Metrics,
        ..ExecConfig::serial()
    };
    let input = Tensor::from_fn([2, 3, 32, 32], |i| ((i * 7 % 13) as f32) * 0.1 - 0.6);
    let m = run_and_snapshot(&mut model.network, &cfg, GuardConfig::Off, &input, 1);
    let arena = m.gauge("engine.arena_bytes").expect("arena gauge");
    let peak = m.gauge("plan.peak_bytes").expect("peak gauge");
    let reuse = m.gauge("engine.arena_reuse_bytes").expect("reuse gauge");
    assert!(arena > 0, "session allocated an arena");
    assert!(
        reuse > 0,
        "liveness colouring must save bytes over ping-pong on VGG-16"
    );
    // The serial session's one arena is exactly the plan-level layout.
    assert_eq!(arena, peak);
}
