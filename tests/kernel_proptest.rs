//! Property tests pinning the stand-alone kernels to naive reference
//! implementations: depthwise convolution, max/average pooling and ReLU.
//!
//! Besides the finite-value equivalence, these deliberately exercise the
//! IEEE-754 corners the kernels commit to:
//!
//! * depthwise propagates NaN/Inf — there is no zero-tap skip, so
//!   `0.0 * NaN` stays NaN (same policy as the GEMM kernels);
//! * `MaxPool2d` *flushes* NaN — the `>` comparison never lets NaN win,
//!   and an all-NaN window collapses to `-inf`;
//! * `GlobalAvgPool` propagates NaN/Inf through the plane sum;
//! * `ReLU` flushes NaN to `0.0` (`f32::max` returns the non-NaN arm)
//!   and maps `-inf` to `0.0`, `+inf` to `+inf`.

use cnn_stack::nn::{DepthwiseConv2d, ExecConfig, GlobalAvgPool, Layer, MaxPool2d, Phase, ReLU};
use cnn_stack::tensor::Tensor;
use proptest::prelude::*;

/// Bitwise-ish f32 equality: NaN matches NaN, everything else must
/// compare equal (covers ±inf; treats -0.0 == 0.0, which is fine here).
fn same_f32(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

fn assert_tensors_match(actual: &Tensor, expected: &[f32]) {
    assert_eq!(actual.data().len(), expected.len());
    for (i, (&a, &e)) in actual.data().iter().zip(expected).enumerate() {
        assert!(
            same_f32(a, e),
            "element {} differs: kernel={}, reference={}",
            i,
            a,
            e
        );
    }
}

// ---------------------------------------------------------------------------
// Depthwise convolution
// ---------------------------------------------------------------------------

/// Naive per-output-element depthwise convolution, accumulating taps in
/// the same ascending (kh, kw) order as the kernel so results are
/// bit-identical, NaN included.
#[allow(clippy::too_many_arguments)]
fn naive_depthwise(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Vec<f32> {
    let out_h = (h + 2 * padding - k) / stride + 1;
    let out_w = (w + 2 * padding - k) / stride + 1;
    let mut out = vec![0.0f32; n * c * out_h * out_w];
    for img in 0..n {
        for ch in 0..c {
            let x = &input[(img * c + ch) * h * w..(img * c + ch + 1) * h * w];
            let f = &weight[ch * k * k..(ch + 1) * k * k];
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut acc = bias[ch];
                    for kh in 0..k {
                        for kw in 0..k {
                            let ih = (oh * stride + kh) as isize - padding as isize;
                            let iw = (ow * stride + kw) as isize - padding as isize;
                            if ih < 0 || ih as usize >= h || iw < 0 || iw as usize >= w {
                                continue;
                            }
                            acc += f[kh * k + kw] * x[ih as usize * w + iw as usize];
                        }
                    }
                    out[((img * c + ch) * out_h + oh) * out_w + ow] = acc;
                }
            }
        }
    }
    out
}

/// ((n, c, h, w), (k, stride, padding), input values, weight values).
/// Nested tuples keep each tuple within the 6-element `Strategy` impls.
type DwCase = (
    (usize, usize, usize, usize),
    (usize, usize, usize),
    Vec<f32>,
    Vec<f32>,
);

fn depthwise_case() -> impl Strategy<Value = DwCase> {
    (
        (1usize..3, 1usize..4, 3usize..8, 3usize..8),
        (0usize..2, 1usize..3, 0usize..3),
    )
        .prop_flat_map(|((n, c, h, w), (k_pick, stride, padding))| {
            let k = if k_pick == 0 { 1 } else { 3 };
            let input = proptest::collection::vec(-4.0f32..4.0, n * c * h * w);
            let weight = proptest::collection::vec(-2.0f32..2.0, c * k * k);
            (
                Just((n, c, h, w)),
                Just((k, stride, padding)),
                input,
                weight,
            )
        })
}

fn build_depthwise(
    c: usize,
    k: usize,
    stride: usize,
    padding: usize,
    weight: &[f32],
) -> DepthwiseConv2d {
    let mut layer = DepthwiseConv2d::new(c, k, stride, padding, 42);
    layer.weight_mut().value.data_mut().copy_from_slice(weight);
    layer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn depthwise_matches_naive_reference(
        ((n, c, h, w), (k, stride, padding), input, weight) in depthwise_case()
    ) {
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
        let mut layer = build_depthwise(c, k, stride, padding, &weight);
        let bias: Vec<f32> = layer.bias().value.data().to_vec();
        let x = Tensor::from_vec([n, c, h, w], input.clone());
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        let expected = naive_depthwise(&input, &weight, &bias, n, c, h, w, k, stride, padding);
        assert_tensors_match(&y, &expected);
    }

    #[test]
    fn depthwise_propagates_nan_and_inf(
        ((n, c, h, w), (k, stride, padding), input, weight) in depthwise_case(),
        poison in 0usize..2,
    ) {
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
        // Poison one in-bounds input element with NaN or +inf; the
        // reference and the kernel must agree on exactly which outputs
        // it reaches.
        let mut input = input;
        let idx = input.len() / 2;
        input[idx] = if poison == 0 { f32::NAN } else { f32::INFINITY };
        let mut layer = build_depthwise(c, k, stride, padding, &weight);
        let bias: Vec<f32> = layer.bias().value.data().to_vec();
        let x = Tensor::from_vec([n, c, h, w], input.clone());
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        let expected = naive_depthwise(&input, &weight, &bias, n, c, h, w, k, stride, padding);
        assert_tensors_match(&y, &expected);
    }
}

/// Regression for the removed zero-tap skip: a zero weight times a NaN
/// input must still produce NaN, exactly like the GEMM kernels.
#[test]
fn depthwise_zero_weight_times_nan_is_nan() {
    let mut layer = DepthwiseConv2d::new(1, 1, 1, 0, 7);
    layer.weight_mut().value.data_mut()[0] = 0.0;
    layer.bias_mut().value.data_mut()[0] = 0.0;
    let x = Tensor::from_vec([1, 1, 2, 2], vec![f32::NAN, 1.0, -1.0, f32::NAN]);
    let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
    assert!(y.data()[0].is_nan(), "0.0 * NaN must stay NaN");
    assert_eq!(y.data()[1], 0.0);
    assert_eq!(y.data()[2], 0.0);
    assert!(y.data()[3].is_nan());
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// Reference max-pool using `f32::max`, which matches the kernel's
/// NaN-flush: NaN never wins, an all-NaN window yields `-inf`.
fn naive_maxpool(input: &[f32], n: usize, c: usize, h: usize, w: usize, window: usize) -> Vec<f32> {
    let out_h = h / window;
    let out_w = w / window;
    let mut out = Vec::with_capacity(n * c * out_h * out_w);
    for img in 0..n {
        for ch in 0..c {
            let plane = &input[(img * c + ch) * h * w..(img * c + ch + 1) * h * w];
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut best = f32::NEG_INFINITY;
                    for dh in 0..window {
                        for dw in 0..window {
                            best = best.max(plane[(oh * window + dh) * w + ow * window + dw]);
                        }
                    }
                    out.push(best);
                }
            }
        }
    }
    out
}

/// (n, c, h, w, window, values) with h and w divisible by window — the
/// kernel asserts divisibility.
fn maxpool_case() -> impl Strategy<Value = (usize, usize, usize, usize, usize, Vec<f32>)> {
    (1usize..3, 1usize..4, 1usize..4, 1usize..4, 2usize..4).prop_flat_map(
        |(n, c, bh, bw, window)| {
            let (h, w) = (bh * window, bw * window);
            let values = proptest::collection::vec(-8.0f32..8.0, n * c * h * w);
            (Just(n), Just(c), Just(h), Just(w), Just(window), values)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maxpool_matches_naive_reference((n, c, h, w, window, values) in maxpool_case()) {
        let mut layer = MaxPool2d::new(window);
        let x = Tensor::from_vec([n, c, h, w], values.clone());
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        let expected = naive_maxpool(&values, n, c, h, w, window);
        assert_tensors_match(&y, &expected);
    }

    #[test]
    fn maxpool_flushes_nan((n, c, h, w, window, values) in maxpool_case()) {
        // Scatter NaN over some elements; the `>` comparison must never
        // let NaN win, so the result equals the reference on the same
        // NaN-poisoned input.
        let mut values = values;
        for i in (0..values.len()).step_by(3) {
            values[i] = f32::NAN;
        }
        let mut layer = MaxPool2d::new(window);
        let x = Tensor::from_vec([n, c, h, w], values.clone());
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        let expected = naive_maxpool(&values, n, c, h, w, window);
        assert_tensors_match(&y, &expected);
        prop_assert!(y.data().iter().all(|v| !v.is_nan()), "max-pool must flush NaN");
    }
}

/// An all-NaN window has no winner under `>`, so the initial `-inf`
/// survives — the documented flush-to-`-inf` corner.
#[test]
fn maxpool_all_nan_window_yields_neg_infinity() {
    let mut layer = MaxPool2d::new(2);
    let x = Tensor::from_vec([1, 1, 2, 2], vec![f32::NAN; 4]);
    let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
    assert_eq!(y.data(), &[f32::NEG_INFINITY]);
}

/// The kernel refuses ragged shapes outright rather than silently
/// truncating the border.
#[test]
fn maxpool_rejects_non_divisible_shapes() {
    let result = std::panic::catch_unwind(|| {
        let mut layer = MaxPool2d::new(2);
        let x = Tensor::zeros([1, 1, 5, 4]);
        layer.forward(&x, Phase::Eval, &ExecConfig::serial())
    });
    assert!(result.is_err(), "5x4 input with window 2 must panic");
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn global_avg_pool_matches_plane_mean(
        (n, c, h, w) in (1usize..3, 1usize..5, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        let x = Tensor::from_fn([n, c, h, w], |i| {
            ((i as u64 * 31 + seed) % 17) as f32 * 0.5 - 4.0
        });
        let mut layer = GlobalAvgPool::new();
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        prop_assert_eq!(y.shape().dims(), &[n, c, 1, 1]);
        let plane = h * w;
        for img in 0..n {
            for ch in 0..c {
                let slice = &x.data()[(img * c + ch) * plane..(img * c + ch + 1) * plane];
                let mean: f32 = slice.iter().sum::<f32>() / plane as f32;
                prop_assert!(same_f32(y.data()[img * c + ch], mean));
            }
        }
    }

    #[test]
    fn global_avg_pool_propagates_specials(
        (h, w) in (1usize..6, 1usize..6),
        poison in 0usize..2,
    ) {
        // Channel 0 poisoned, channel 1 clean: the plane sum must carry
        // NaN/Inf through channel 0 and leave channel 1 untouched.
        let plane = h * w;
        let mut values = vec![1.0f32; 2 * plane];
        values[plane / 2] = if poison == 0 { f32::NAN } else { f32::INFINITY };
        let x = Tensor::from_vec([1, 2, h, w], values);
        let mut layer = GlobalAvgPool::new();
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        if poison == 0 {
            prop_assert!(y.data()[0].is_nan(), "NaN must propagate through the mean");
        } else {
            prop_assert_eq!(y.data()[0], f32::INFINITY);
        }
        prop_assert_eq!(y.data()[1], 1.0);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relu_matches_reference_and_flushes_nan(
        values in proptest::collection::vec(-8.0f32..8.0, 1..64),
        special in 0usize..4,
    ) {
        let mut values = values;
        // Splice one special into every case so the corners are always hit.
        let idx = values.len() / 2;
        values[idx] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0][special];
        let x = Tensor::from_vec([values.len()], values.clone());
        let mut layer = ReLU::new();
        let y = layer.forward(&x, Phase::Eval, &ExecConfig::serial());
        for (&out, &inp) in y.data().iter().zip(&values) {
            if inp.is_nan() {
                // f32::max returns the non-NaN argument: NaN flushes to 0.
                prop_assert_eq!(out, 0.0, "ReLU must flush NaN to 0.0");
            } else {
                prop_assert!(same_f32(out, inp.max(0.0)));
            }
            prop_assert!(out >= 0.0 || out == 0.0);
        }
    }
}
