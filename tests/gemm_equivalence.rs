//! Property-based equivalence suite for the packed GEMM engine: the
//! packed panels + micro-kernel path (whatever kernel the host
//! dispatches to) must agree with the naive triple loop on arbitrary
//! shapes — including the MR/NR/KC boundary cases, degenerate extents,
//! accumulation into a non-zero C, row-partitioned execution, and
//! non-finite inputs.

use cnn_stack::parallel::Schedule;
use cnn_stack::tensor::{gemm, GemmPlan, Tensor, MR, NR};
use proptest::prelude::*;

fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u64 * 2654435761 + seed * 97) % 251) as f32 * 0.01 - 1.25)
        .collect()
}

fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm::gemm_into(a, b, &mut c, m, k, n, gemm::GemmAlgorithm::Naive);
    c
}

fn packed(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, threads: usize) -> Vec<f32> {
    let plan = GemmPlan::new(m, k, n);
    let mut scratch = vec![0.0f32; plan.scratch_elems()];
    let mut c = vec![0.0f32; m * n];
    gemm::gemm_packed_into(
        a,
        b,
        &mut c,
        m,
        k,
        n,
        &mut scratch,
        threads,
        Schedule::Static,
    );
    c
}

fn max_abs_diff(x: &[f32], y: &[f32]) -> f32 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed agrees with naive on arbitrary shapes, including extents
    /// that straddle the MR-row and NR-column panel boundaries.
    #[test]
    fn packed_matches_naive(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..50,
        seed in 0u64..1000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 1);
        let want = naive(&a, &b, m, k, n);
        let got = packed(&a, &b, m, k, n, 1);
        prop_assert!(max_abs_diff(&want, &got) <= 1e-4,
            "m={} k={} n={} diff={}", m, k, n, max_abs_diff(&want, &got));
    }

    /// Exact panel-multiple shapes (no edge tiles) agree too — the
    /// full-tile fast path writes every lane it computed.
    #[test]
    fn packed_matches_naive_at_panel_multiples(
        mp in 1usize..5,
        k in 1usize..40,
        np in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (m, n) = (mp * MR, np * NR);
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 2);
        prop_assert!(max_abs_diff(&naive(&a, &b, m, k, n), &packed(&a, &b, m, k, n, 1)) <= 1e-4);
    }

    /// The parallel panel grid computes exactly what the serial run
    /// does: every (tile, KC-block) accumulation is identical work, so
    /// the outputs are bitwise equal regardless of thread count.
    #[test]
    fn packed_parallel_is_bitwise_serial(
        m in 1usize..30,
        k in 1usize..40,
        n in 1usize..40,
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 3);
        let serial = packed(&a, &b, m, k, n, 1);
        let parallel = packed(&a, &b, m, k, n, threads);
        let s_bits: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
        let p_bits: Vec<u32> = parallel.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(s_bits, p_bits);
    }

    /// The accumulate (`+=`) contract: a pre-initialised C (bias fill)
    /// ends up with exactly `C0 + A·B`, matching naive accumulation.
    #[test]
    fn packed_accumulates_into_c(
        m in 1usize..20,
        k in 1usize..30,
        n in 1usize..25,
        seed in 0u64..1000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 4);
        let c0 = fill(m * n, seed + 5);
        let mut want = c0.clone();
        gemm::gemm_into(&a, &b, &mut want, m, k, n, gemm::GemmAlgorithm::Naive);
        let plan = GemmPlan::new(m, k, n);
        let mut scratch = vec![0.0f32; plan.scratch_elems()];
        let mut got = c0;
        gemm::gemm_packed_into(&a, &b, &mut got, m, k, n, &mut scratch, 1, Schedule::Static);
        prop_assert!(max_abs_diff(&want, &got) <= 1e-4);
    }

    /// Weight panels packed once serve any number of products against
    /// different A matrices, bitwise identical to packing per call.
    #[test]
    fn prepacked_b_panels_are_reusable(
        m1 in 1usize..15,
        m2 in 1usize..15,
        k in 1usize..30,
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        let b = fill(k * n, seed);
        for m in [m1, m2] {
            let plan = GemmPlan::new(m, k, n);
            let mut packed_a = vec![0.0f32; plan.packed_a_elems()];
            let mut packed_b = vec![0.0f32; plan.packed_b_elems()];
            gemm::pack_b_into(&plan, &b, &mut packed_b);
            let a = fill(m * k, seed + m as u64);
            gemm::pack_a_into(&plan, &a, &mut packed_a);
            let mut got = vec![0.0f32; m * n];
            gemm::gemm_prepacked(&plan, &packed_a, &packed_b, &mut got, 1, Schedule::Static);
            let want = packed(&a, &b, m, k, n, 1);
            let w_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let g_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(w_bits, g_bits);
        }
    }

    /// `gemm_rows_into` over an arbitrary 3-way row partition assembles
    /// the same C as one full blocked GEMM — the contract the batch
    /// row-split drivers rely on.
    #[test]
    fn row_partition_assembles_full_product(
        m in 1usize..24,
        k in 1usize..20,
        n in 1usize..20,
        cut_a in 0usize..25,
        cut_b in 0usize..25,
        seed in 0u64..1000,
    ) {
        let (cut1, cut2) = {
            let x = cut_a % (m + 1);
            let y = cut_b % (m + 1);
            (x.min(y), x.max(y))
        };
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 6);
        let mut got = vec![0.0f32; m * n];
        for w in [0..cut1, cut1..cut2, cut2..m] {
            gemm::gemm_rows_into(&a, &b, &mut got, m, k, n, w.start, w.end);
        }
        let mut want = vec![0.0f32; m * n];
        gemm::gemm_into(&a, &b, &mut want, m, k, n, gemm::GemmAlgorithm::Blocked);
        let w_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        let g_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(w_bits, g_bits);
    }

    /// A NaN planted anywhere in B lands in exactly the C entries whose
    /// dot products consume it — no kernel may skip it (the old
    /// zero-skip bug), and no other entry may be contaminated by panel
    /// padding.
    #[test]
    fn non_finite_propagation_matches_naive(
        m in 1usize..18,
        k in 1usize..25,
        n in 1usize..20,
        pos in 0usize..500,
        use_inf in 0usize..2,
        seed in 0u64..1000,
    ) {
        let a = fill(m * k, seed);
        let mut b = fill(k * n, seed + 7);
        b[pos % (k * n)] = if use_inf == 1 { f32::INFINITY } else { f32::NAN };
        let want = naive(&a, &b, m, k, n);
        for (label, got) in [
            ("packed", packed(&a, &b, m, k, n, 1)),
            ("packed_mt", packed(&a, &b, m, k, n, 3)),
            ("blocked", {
                let mut c = vec![0.0f32; m * n];
                gemm::gemm_into(&a, &b, &mut c, m, k, n, gemm::GemmAlgorithm::Blocked);
                c
            }),
        ] {
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                if w.is_nan() {
                    prop_assert!(g.is_nan(), "{}: C[{}] lost a NaN (m={} k={} n={})", label, i, m, k, n);
                } else if w.is_infinite() {
                    prop_assert_eq!(*g, *w, "{}: C[{}] lost an infinity", label, i);
                } else {
                    prop_assert!((w - g).abs() <= 1e-3 + 1e-4 * w.abs(),
                        "{}: C[{}] = {} vs naive {}", label, i, g, w);
                }
            }
        }
    }
}

/// Zero-extent reductions leave C exactly as initialised (the
/// accumulate contract with nothing to add): the packed driver must not
/// touch C when k == 0, and empty A/B slices must not panic.
#[test]
fn zero_k_leaves_c_untouched() {
    let (m, n) = (5, 9);
    let plan = GemmPlan::new(m, 0, n);
    let mut scratch = vec![0.0f32; plan.scratch_elems()];
    let c0 = fill(m * n, 3);
    let mut c = c0.clone();
    gemm::gemm_packed_into(&[], &[], &mut c, m, 0, n, &mut scratch, 2, Schedule::Static);
    assert_eq!(c, c0);
}

/// Single-element and single-lane extents exercise every edge-masking
/// branch of the micro-kernel write-back.
#[test]
fn minimal_extents_match_naive() {
    for (m, k, n) in [
        (1, 1, 1),
        (1, 1, NR + 1),
        (MR + 1, 1, 1),
        (1, 300, 1),
        (MR, 1, NR),
        (2 * MR - 1, 257, 2 * NR - 1),
    ] {
        let a = fill(m * k, 42);
        let b = fill(k * n, 43);
        let want = naive(&a, &b, m, k, n);
        let got = packed(&a, &b, m, k, n, 1);
        assert!(
            max_abs_diff(&want, &got) <= 1e-4,
            "({m},{k},{n}) diverged by {}",
            max_abs_diff(&want, &got)
        );
    }
}

/// The tensor-level entry point (`matmul`) routes through the packed
/// engine and agrees with an explicit naive product.
#[test]
fn matmul_default_is_packed_and_correct() {
    let a = Tensor::from_fn([23, 37], |i| (i as f32 * 0.37).sin());
    let b = Tensor::from_fn([37, 19], |i| (i as f32 * 0.21).cos());
    let want = gemm::matmul_with(&a, &b, gemm::GemmAlgorithm::Naive);
    let got = gemm::matmul(&a, &b);
    assert!(want.allclose(&got, 1e-4));
}
