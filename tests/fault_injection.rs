//! Fault-injection tests for the guarded inference runtime: injected
//! kernel panics, worker crashes, and corrupted activations/weights must
//! be contained, reported, and — where a safer kernel exists — recovered
//! from by demotion, without killing the process or poisoning the pool.
//!
//! The whole suite only exists under `--features fault-inject`; the
//! default build compiles the injector down to a zero-sized no-op.
#![cfg(feature = "fault-inject")]

use cnn_stack::nn::network::set_network_format;
use cnn_stack::nn::{
    Conv2d, ConvAlgorithm, DemotionAction, DemotionReason, Error, ExecConfig, FaultPlan, Flatten,
    GuardConfig, GuardViolation, InferencePlan, InferenceSession, Layer, Linear, Network,
    NonFiniteKind, ReLU, WeightFormat,
};
use cnn_stack::tensor::Tensor;
use proptest::prelude::*;

/// A Winograd-eligible conv stack (3×3, stride 1) over an 8×8 input.
fn conv_stack(seed: u64) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(3, 6, 3, 1, 1, seed)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(6 * 8 * 8, 10, seed + 1)),
    ])
    .expect("stack is non-empty")
}

fn ramp_input(batch: usize) -> Tensor {
    Tensor::from_fn([batch, 3, 8, 8], |i| {
        ((i as u64 * 2654435761) % 211) as f32 * 0.01 - 1.0
    })
}

fn cfg_with(algo: ConvAlgorithm, threads: usize) -> ExecConfig {
    ExecConfig {
        threads,
        conv_algo: algo,
        ..ExecConfig::serial()
    }
}

fn run_reference(seed: u64, cfg: &ExecConfig, input: &Tensor) -> Tensor {
    let mut net = conv_stack(seed);
    let plan = InferencePlan::compile(&net, input.shape().dims(), cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.run(input).unwrap()
}

/// The headline containment scenario: one Winograd conv invocation
/// panics on a 4-thread session. The session must contain the panic,
/// demote the step to im2col, re-run, and hand back a result
/// bit-identical to an all-im2col session — with the process alive and
/// the pool reusable afterwards.
#[test]
fn winograd_kernel_panic_demotes_to_im2col_bit_identically() {
    let seed = 42;
    let input = ramp_input(8);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::Winograd, 4);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().panic_in_kernel(0, 0));

    let got = session.run(&input).expect("session recovers by demotion");

    let health = session.health().clone();
    assert_eq!(health.panics_contained, 1);
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(health.demotions[0].layer_index, 0);
    assert_eq!(health.demotions[0].action, DemotionAction::WinogradToIm2col);
    assert_eq!(health.demotions[0].reason, DemotionReason::KernelPanicked);

    // Bit-identical to a session that ran im2col from the start.
    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Im2col, 4), &input);
    assert_eq!(got.shape().dims(), want.shape().dims());
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);

    // The pool is reusable: a second (fault-free) run still works and
    // still matches, and no new demotions are recorded.
    let again = session
        .run(&input)
        .expect("pool survives the contained panic");
    assert_eq!(again.data(), want.data());
    assert_eq!(session.health().demotions.len(), 1);
    assert_eq!(session.profile().runs(), 2);
}

/// A panic inside the packed GEMM micro-kernel path demotes the step to
/// the scalar blocked GEMM and re-runs, bit-identical to a session that
/// ran the blocked GEMM from the start.
#[test]
fn packed_gemm_panic_demotes_to_blocked_bit_identically() {
    use cnn_stack::tensor::GemmAlgorithm;
    let seed = 23;
    let input = ramp_input(4);
    let mut net = conv_stack(seed);
    // Default gemm_algo is Packed; the conv runs im2col + packed panels.
    let cfg = cfg_with(ConvAlgorithm::Im2col, 1);
    assert_eq!(cfg.gemm_algo, GemmAlgorithm::Packed);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    assert!(
        plan.steps()[0].gemm.is_some(),
        "the conv step compiles a packed GEMM plan"
    );
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().panic_in_kernel(0, 0));

    let got = session.run(&input).expect("session recovers by demotion");

    let health = session.health().clone();
    assert_eq!(health.panics_contained, 1);
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(health.demotions[0].layer_index, 0);
    assert_eq!(health.demotions[0].action, DemotionAction::PackedToBlocked);
    assert_eq!(health.demotions[0].reason, DemotionReason::KernelPanicked);

    // Bit-identical to the demoted configuration run layer by layer:
    // only the conv fell back to the blocked GEMM, the linear stays
    // packed. All `eval_*_into` kernels are shared verbatim between
    // `forward` and the arena engine, so this reference is exact.
    let want = {
        use cnn_stack::nn::Phase;
        let mut rnet = conv_stack(seed);
        let blocked_cfg = ExecConfig {
            gemm_algo: GemmAlgorithm::Blocked,
            ..cfg
        };
        let layers = rnet.layers_mut();
        let mut x = layers[0].forward(&input, Phase::Eval, &blocked_cfg);
        for layer in &mut layers[1..] {
            x = layer.forward(&x, Phase::Eval, &cfg);
        }
        x
    };
    assert_eq!(got.shape().dims(), want.shape().dims());
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);

    // A second fault-free run stays on the demoted configuration with no
    // new demotions.
    let again = session.run(&input).expect("demoted session is stable");
    let again_bits: Vec<u32> = again.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, again_bits);
    assert_eq!(session.health().demotions.len(), 1);
}

/// A guard trip on a CSR conv densifies the step and retries.
#[test]
fn guard_trip_on_csr_conv_demotes_to_dense() {
    let input = ramp_input(2);
    let mut net = conv_stack(7);
    set_network_format(&mut net, WeightFormat::Csr);
    let cfg = cfg_with(ConvAlgorithm::Im2col, 1);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
    session.inject_faults(FaultPlan::new().nan_output(0, 0));

    let got = session.run(&input).expect("session recovers by densifying");

    let health = session.health();
    assert_eq!(health.guards_tripped, 1);
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(health.demotions[0].layer_index, 0);
    assert_eq!(health.demotions[0].action, DemotionAction::CsrToDense);
    assert_eq!(health.demotions[0].reason, DemotionReason::GuardTripped);
    assert!(got.data().iter().all(|v| v.is_finite()));
}

/// Without a demotion lever the guard trip is a hard, named error: the
/// report points at exactly the injected layer, and the session stays
/// usable afterwards.
#[test]
fn nan_without_lever_names_first_offending_layer() {
    let input = Tensor::from_fn([2, 16], |i| i as f32 * 0.25 - 2.0);
    let mut net = Network::new(vec![
        Box::new(ReLU::new()) as Box<dyn Layer>,
        Box::new(ReLU::new()),
        Box::new(ReLU::new()),
    ])
    .unwrap();
    let cfg = ExecConfig::serial();
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
    session.inject_faults(FaultPlan::new().nan_output(1, 0));

    let err = session.run(&input).unwrap_err();
    match err {
        Error::GuardTripped(report) => {
            assert_eq!(report.layer_index, 1);
            assert!(matches!(
                report.violation,
                GuardViolation::NonFiniteActivation {
                    kind: NonFiniteKind::Nan,
                    first_index: 0,
                    ..
                }
            ));
        }
        other => panic!("expected GuardTripped, got {other:?}"),
    }
    assert_eq!(session.health().guards_tripped, 1);

    // The fault was one-shot; the session is not poisoned.
    let y = session
        .run(&input)
        .expect("session survives the guard trip");
    assert!(y.data().iter().all(|v| v.is_finite()));
}

/// Injected infinities are classified separately from NaNs.
#[test]
fn inf_injection_is_reported_as_positive_infinity() {
    let input = Tensor::from_fn([1, 8], |i| i as f32);
    let mut net = Network::new(vec![Box::new(ReLU::new()) as Box<dyn Layer>]).unwrap();
    let plan = InferencePlan::compile(&net, input.shape().dims(), &ExecConfig::serial()).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
    session.inject_faults(FaultPlan::new().inf_output(0, 0));

    match session.run(&input).unwrap_err() {
        Error::GuardTripped(report) => {
            assert_eq!(report.layer_index, 0);
            assert!(matches!(
                report.violation,
                GuardViolation::NonFiniteActivation {
                    kind: NonFiniteKind::PosInf,
                    ..
                }
            ));
        }
        other => panic!("expected GuardTripped, got {other:?}"),
    }
}

/// A crashed batch worker surfaces as a pool error, is counted as a
/// retry, and the re-run still matches the serial reference bitwise.
#[test]
fn crashed_worker_is_retried_and_result_matches_serial() {
    let seed = 11;
    let input = ramp_input(8);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::Im2col, 4);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().crash_worker(1, 0));

    let got = session.run(&input).expect("pool retry recovers the run");
    assert_eq!(session.health().retries, 1);
    assert!(session.health().demotions.is_empty());

    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Im2col, 1), &input);
    assert_eq!(got.data(), want.data());
}

/// A delayed (straggler) worker is benign: the run completes, matches
/// the serial reference, and leaves a clean health report.
#[test]
fn delayed_worker_is_harmless() {
    let seed = 13;
    let input = ramp_input(8);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::Im2col, 4);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().delay_worker(0, 0, 30));

    let got = session.run(&input).expect("a slow worker is not a fault");
    assert!(session.health().is_clean());

    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Im2col, 1), &input);
    assert_eq!(got.data(), want.data());
}

/// Flipping the sign bit of one weight perturbs exactly that weight (the
/// injector writes through the same parameter path real corruption
/// would take) and changes the output.
#[test]
fn weight_bit_flip_perturbs_the_network() {
    let seed = 5;
    let input = ramp_input(1);
    let clean = run_reference(seed, &ExecConfig::serial(), &input);

    let mut net = conv_stack(seed);
    let w_before = net.layers()[0]
        .as_any()
        .downcast_ref::<Conv2d>()
        .unwrap()
        .weight()
        .value
        .data()[3];
    assert!(w_before != 0.0, "seeded weight should be non-zero");

    let plan = InferencePlan::compile(&net, input.shape().dims(), &ExecConfig::serial()).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().bit_flip_weight(0, 0, 3, 31));
    let corrupted = session.run(&input).unwrap();
    assert_ne!(corrupted.data(), clean.data());
    drop(session);

    let w_after = net.layers()[0]
        .as_any()
        .downcast_ref::<Conv2d>()
        .unwrap()
        .weight()
        .value
        .data()[3];
    assert_eq!(w_after, -w_before, "bit 31 is the sign bit");
}

/// Paranoid mode catches a bit-flip that lands in the exponent and
/// produces a non-finite weight, before any kernel consumes it.
#[test]
fn paranoid_mode_catches_weight_corruption_before_running() {
    let input = ramp_input(1);
    let mut net = conv_stack(3);
    // Force a weight whose exponent flip turns it non-finite: f32::MAX
    // has exponent 0xFE, so flipping the exponent's low bit (bit 23)
    // yields exponent 0xFF — a NaN/Inf encoding.
    {
        let conv = net.layers_mut()[0]
            .as_any_mut()
            .downcast_mut::<Conv2d>()
            .unwrap();
        conv.weight_mut().value.data_mut()[0] = f32::MAX;
    }
    let plan = InferencePlan::compile(&net, input.shape().dims(), &ExecConfig::serial()).unwrap();
    let mut session = InferenceSession::with_guard(&mut net, plan, GuardConfig::Paranoid).unwrap();
    session.inject_faults(FaultPlan::new().bit_flip_weight(0, 0, 0, 23));

    match session.run(&input).unwrap_err() {
        Error::GuardTripped(report) => {
            assert_eq!(report.layer_index, 0);
            assert!(matches!(
                report.violation,
                GuardViolation::NonFiniteWeight {
                    param: 0,
                    first_index: 0
                }
            ));
        }
        other => panic!("expected GuardTripped, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under boundary checking, a NaN injected at layer `k` of a random
    /// elementwise stack is always attributed to layer `k` — never to a
    /// downstream consumer that happens to propagate (or flush) it.
    #[test]
    fn injected_nan_is_always_attributed_to_its_layer(
        (depth, k) in (1usize..6).prop_flat_map(|d| (Just(d), 0..d)),
        elems in 1usize..64,
        batch in 1usize..4,
    ) {
        let layers: Vec<Box<dyn Layer>> =
            (0..depth).map(|_| Box::new(ReLU::new()) as Box<dyn Layer>).collect();
        let mut net = Network::new(layers).unwrap();
        let input = Tensor::from_fn([batch, elems], |i| i as f32 * 0.5 - 4.0);
        let plan =
            InferencePlan::compile(&net, input.shape().dims(), &ExecConfig::serial()).unwrap();
        let mut session =
            InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
        session.inject_faults(FaultPlan::new().nan_output(k, 0));

        match session.run(&input).unwrap_err() {
            Error::GuardTripped(report) => prop_assert_eq!(report.layer_index, k),
            other => prop_assert!(false, "expected GuardTripped, got {:?}", other),
        }
    }

    /// With guards off (and no faults), the guarded session's output is
    /// bitwise identical to the raw allocating forward pass; boundary
    /// checking observes without perturbing.
    #[test]
    fn guard_levels_never_change_the_output(
        seed in 0u64..1000,
        batch in 1usize..5,
        threads in 1usize..4,
    ) {
        use cnn_stack::nn::Phase;
        let cfg = cfg_with(ConvAlgorithm::Im2col, threads);
        let input = ramp_input(batch);
        let mut net = conv_stack(seed);
        let expected = net.forward(&input, Phase::Eval, &cfg);
        for guard in [GuardConfig::Off, GuardConfig::BoundaryCheck, GuardConfig::Paranoid] {
            let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
            let mut session = InferenceSession::with_guard(&mut net, plan, guard).unwrap();
            let got = session.run(&input).unwrap();
            prop_assert!(session.health().is_clean());
            let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = expected.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got_bits, want_bits);
        }
    }
}

/// Demotion must keep correctness even when the safer kernel needs more
/// memory than the plan's budget: the session re-runs liveness sizing
/// after the rebuild and, when the demoted plan no longer fits, surfaces
/// a typed budget-breach health event instead of failing the run.
#[test]
fn demotion_past_the_budget_surfaces_a_breach_event() {
    // A wide-input conv: the im2col patch matrix (in_c·k² = 144 rows per
    // output position) needs a packing workspace far larger than any
    // activation, while the Winograd step carries no arena workspace.
    fn wide_stack(seed: u64) -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(16, 4, 3, 1, 1, seed)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 8 * 8, 10, seed + 1)),
        ])
        .expect("stack is non-empty")
    }
    let seed = 314;
    let input = Tensor::from_fn([4, 16, 8, 8], |i| {
        ((i as u64 * 2654435761) % 211) as f32 * 0.01 - 1.0
    });

    // The Winograd plan's peak is a budget the im2col fallback cannot
    // fit: its packing workspace dwarfs every activation buffer.
    let wino_cfg = cfg_with(ConvAlgorithm::Winograd, 1);
    let wino_peak = InferencePlan::compile(&wide_stack(seed), input.shape().dims(), &wino_cfg)
        .unwrap()
        .footprint()
        .peak_bytes;
    let im2col_peak = InferencePlan::compile(
        &wide_stack(seed),
        input.shape().dims(),
        &cfg_with(ConvAlgorithm::Im2col, 1),
    )
    .unwrap()
    .footprint()
    .peak_bytes;
    assert!(
        im2col_peak > wino_peak,
        "im2col needs a packing workspace Winograd does not ({im2col_peak} vs {wino_peak})"
    );

    // Admission passes: the Winograd plan fits its budget exactly.
    let mut net = wide_stack(seed);
    let cfg = ExecConfig {
        plan_budget: Some(wino_peak),
        ..wino_cfg
    };
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().panic_in_kernel(0, 0));

    // The panic demotes Winograd -> im2col, whose workspace bursts the
    // envelope; the run still succeeds, bit-identical to pure im2col.
    let got = session.run(&input).expect("session recovers by demotion");
    let mut ref_net = wide_stack(seed);
    let ref_cfg = cfg_with(ConvAlgorithm::Im2col, 1);
    let ref_plan = InferencePlan::compile(&ref_net, input.shape().dims(), &ref_cfg).unwrap();
    let want = InferenceSession::new(&mut ref_net, ref_plan)
        .unwrap()
        .run(&input)
        .unwrap();
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);

    let health = session.health().clone();
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(
        health.budget_breaches.len(),
        1,
        "the rebuilt plan re-ran liveness sizing and reported the breach"
    );
    let breach = &health.budget_breaches[0];
    assert_eq!(breach.layer_index, 0);
    assert_eq!(breach.budget_bytes, wino_peak);
    assert!(
        breach.peak_bytes > breach.budget_bytes,
        "breach records the new, larger peak ({} vs budget {})",
        breach.peak_bytes,
        breach.budget_bytes
    );
}

/// A panic inside the FFT convolution kernel demotes the step straight
/// to im2col and re-runs, bit-identical to a session that ran im2col
/// from the start, with the rung recorded as [`DemotionAction::FftToIm2col`].
#[test]
fn fft_kernel_panic_demotes_to_im2col_bit_identically() {
    let seed = 71;
    let input = ramp_input(4);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::Fft, 2);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    session.inject_faults(FaultPlan::new().panic_in_kernel(0, 0));

    let got = session.run(&input).expect("session recovers by demotion");

    let health = session.health().clone();
    assert_eq!(health.panics_contained, 1);
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(health.demotions[0].layer_index, 0);
    assert_eq!(health.demotions[0].action, DemotionAction::FftToIm2col);
    assert_eq!(health.demotions[0].reason, DemotionReason::KernelPanicked);

    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Im2col, 2), &input);
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);

    // The session stays healthy after the contained panic.
    let again = session.run(&input).expect("pool survives");
    assert_eq!(again.data(), want.data());
    assert_eq!(session.health().demotions.len(), 1);
}

/// One non-finite trip on a Winograd F(4×4) conv takes a single rung:
/// down to F(2×2), whose result must be bit-identical to a session that
/// ran F(2×2) from the start.
#[test]
fn winograd4_guard_trip_demotes_one_rung_to_winograd2() {
    let seed = 83;
    let input = ramp_input(2);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::WinogradF4, 1);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
    session.inject_faults(FaultPlan::new().nan_output(0, 0));

    let got = session.run(&input).expect("session recovers by demotion");

    let health = session.health().clone();
    assert_eq!(health.guards_tripped, 1);
    assert_eq!(health.demotions.len(), 1);
    assert_eq!(health.demotions[0].layer_index, 0);
    assert_eq!(
        health.demotions[0].action,
        DemotionAction::Winograd4ToWinograd2
    );
    assert_eq!(health.demotions[0].reason, DemotionReason::GuardTripped);

    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Winograd, 1), &input);
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);
}

/// Two consecutive non-finite trips walk the full Winograd ladder:
/// F(4×4) → F(2×2) → im2col, recording both rungs in order, with the
/// final result bit-identical to an all-im2col session.
#[test]
fn winograd4_double_trip_walks_ladder_to_im2col() {
    let seed = 97;
    let input = ramp_input(2);
    let mut net = conv_stack(seed);
    let cfg = cfg_with(ConvAlgorithm::WinogradF4, 1);
    let plan = InferencePlan::compile(&net, input.shape().dims(), &cfg).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
    // Two one-shot faults on the same layer: the first poisons the
    // F(4×4) attempt, the second poisons the demoted F(2×2) retry.
    session.inject_faults(FaultPlan::new().nan_output(0, 0).nan_output(0, 0));

    let got = session.run(&input).expect("session recovers by demotion");

    let health = session.health().clone();
    assert_eq!(health.guards_tripped, 2);
    assert_eq!(health.demotions.len(), 2);
    assert_eq!(
        health.demotions[0].action,
        DemotionAction::Winograd4ToWinograd2
    );
    assert_eq!(health.demotions[1].action, DemotionAction::WinogradToIm2col);
    assert!(health
        .demotions
        .iter()
        .all(|d| d.layer_index == 0 && d.reason == DemotionReason::GuardTripped));

    let want = run_reference(seed, &cfg_with(ConvAlgorithm::Im2col, 1), &input);
    let got_bits: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits);
    assert!(got.data().iter().all(|v| v.is_finite()));
}
