//! Property tests pinning the quantised compute path to f32 references:
//!
//! * [`PackedTernaryMatrix::spmm`] (the 2-bit storage path) against a
//!   naive dense-reference product, including NaN/Inf inputs — zero
//!   codes still multiply, so `0 · NaN` stays NaN exactly like the
//!   dense GEMM kernels (no zero-skip);
//! * the ternary packed GEMM engine against the f32 packed engine run
//!   on the dequantised weights — bit-identical by construction (same
//!   FMA ladder, same blocking), which is the property the guard's
//!   quantised→packed demotion relies on;
//! * the int8 packed GEMM engine against an exact integer reference —
//!   products accumulate exactly in f32 below 2²⁴, so a single-K-block
//!   run must match `scale · Σ(aq·wq)` to the bit.

use cnn_stack::compress::packed::PackedTernaryMatrix;
use cnn_stack::parallel::Schedule;
use cnn_stack::tensor::{
    gemm_prepacked_int8, gemm_prepacked_ternary, pack_a_i8_into, pack_a_into,
    pack_b_ternary_transposed_into, pack_b_transposed_i8_into, pack_b_transposed_into, quantise_i8,
    quantise_scale_i8, GemmEpilogue, GemmPlan, Tensor,
};
use proptest::prelude::*;

/// Bitwise-ish f32 equality: NaN matches NaN, everything else must
/// compare equal (covers ±inf; treats -0.0 == 0.0, which is fine here).
fn same_f32(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

fn assert_all_match(actual: &[f32], expected: &[f32], what: &str) {
    assert_eq!(actual.len(), expected.len());
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        assert!(
            same_f32(a, e),
            "{} element {} differs: got {}, reference {}",
            what,
            i,
            a,
            e
        );
    }
}

// ---------------------------------------------------------------------------
// PackedTernaryMatrix::spmm
// ---------------------------------------------------------------------------

/// Naive `W·B` accumulating columns in the same ascending order as
/// `spmm`'s packed traversal, so finite results — and the reach of any
/// NaN/Inf — are bit-identical. Zero weights multiply; nothing skips.
fn naive_spmm(w: &[f32], b: &[f32], rows: usize, cols: usize, bn: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * bn];
    for r in 0..rows {
        for c in 0..cols {
            let v = w[r * cols + c];
            for j in 0..bn {
                out[r * bn + j] += v * b[c * bn + j];
            }
        }
    }
    out
}

/// ((rows, cols, bn), ternary codes as 0/1/2, (Wp, Wn), B values).
type SpmmCase = ((usize, usize, usize), Vec<u8>, (f32, f32), Vec<f32>);

fn spmm_case() -> impl Strategy<Value = SpmmCase> {
    (1usize..9, 1usize..14, 1usize..6).prop_flat_map(|(rows, cols, bn)| {
        let codes = proptest::collection::vec(0u8..3, rows * cols);
        let scales = (0.01f32..2.0, 0.01f32..2.0);
        let b = proptest::collection::vec(-4.0f32..4.0, cols * bn);
        (Just((rows, cols, bn)), codes, scales, b)
    })
}

fn dense_ternary(rows: usize, cols: usize, codes: &[u8], wp: f32, wn: f32) -> Tensor {
    Tensor::from_fn([rows, cols], |i| match codes[i] {
        1 => wp,
        2 => -wn,
        _ => 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spmm_matches_dense_reference(
        ((rows, cols, bn), codes, (wp, wn), b) in spmm_case()
    ) {
        let dense = dense_ternary(rows, cols, &codes, wp, wn);
        let m = PackedTernaryMatrix::from_dense_ternary(&dense).unwrap();
        let bt = Tensor::from_vec([cols, bn], b.clone());
        let got = m.spmm(&bt);
        let want = naive_spmm(dense.data(), &b, rows, cols, bn);
        assert_all_match(got.data(), &want, "spmm");
    }

    #[test]
    fn spmm_propagates_nan_and_inf(
        ((rows, cols, bn), codes, (wp, wn), b) in spmm_case(),
        poison in 0usize..2,
        at in 0usize..64,
    ) {
        // Poison one B element with NaN or +inf; the packed traversal
        // must agree with the reference on exactly which outputs it
        // reaches — including through zero codes (0 · NaN = NaN).
        let mut b = b;
        let idx = at % b.len();
        b[idx] = if poison == 0 { f32::NAN } else { f32::INFINITY };
        let dense = dense_ternary(rows, cols, &codes, wp, wn);
        let m = PackedTernaryMatrix::from_dense_ternary(&dense).unwrap();
        let bt = Tensor::from_vec([cols, bn], b.clone());
        let got = m.spmm(&bt);
        let want = naive_spmm(dense.data(), &b, rows, cols, bn);
        assert_all_match(got.data(), &want, "spmm");
        // The poisoned B row feeds every output row (all weights in its
        // column multiply, zeros included), so column `idx % bn` of the
        // output must be non-finite in every row.
        for r in 0..rows {
            let v = got.data()[r * bn + idx % bn];
            prop_assert!(
                !v.is_finite() || poison == 1,
                "row {} lost the poison: {}", r, v
            );
        }
    }
}

/// Regression for the removed zero-skip: an all-zero packed matrix
/// times a NaN activation must produce NaN, exactly like dense GEMM.
#[test]
fn spmm_zero_weight_times_nan_is_nan() {
    let m = PackedTernaryMatrix::from_dense_ternary(&Tensor::zeros([2, 3])).unwrap();
    let b = Tensor::from_vec([3, 2], vec![f32::NAN, 1.0, 2.0, 3.0, 4.0, 5.0]);
    let out = m.spmm(&b);
    assert!(out.data()[0].is_nan(), "0 · NaN must stay NaN");
    assert_eq!(out.data()[1], 0.0);
    assert!(out.data()[2].is_nan());
    assert_eq!(out.data()[3], 0.0);
}

// ---------------------------------------------------------------------------
// Ternary packed GEMM vs the f32 engine on dequantised weights
// ---------------------------------------------------------------------------

/// ((m, k, n), A values, ternary weight codes, (Wp, Wn)).
type TernaryGemmCase = ((usize, usize, usize), Vec<f32>, Vec<u8>, (f32, f32));

fn ternary_gemm_case() -> impl Strategy<Value = TernaryGemmCase> {
    (1usize..15, 1usize..40, 1usize..36).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-2.0f32..2.0, m * k);
        let codes = proptest::collection::vec(0u8..3, n * k);
        let scales = (0.01f32..1.5, 0.01f32..1.5);
        (Just((m, k, n)), a, codes, scales)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ternary_gemm_bit_identical_to_f32_on_dequantised(
        ((m, k, n), a, codes, (wp, wn)) in ternary_gemm_case(),
        relu in 0usize..2,
    ) {
        let plan = GemmPlan::new(m, k, n);
        let weight = dense_ternary(n, k, &codes, wp, wn);
        let epilogue = if relu == 1 { GemmEpilogue::Relu } else { GemmEpilogue::None };

        let mut packed_a = vec![0.0f32; plan.packed_a_elems()];
        pack_a_into(&plan, &a, &mut packed_a);

        let mut tern = vec![0u32; plan.ternary_b_words()];
        pack_b_ternary_transposed_into(&plan, weight.data(), &mut tern);
        let mut got = vec![0.0f32; m * n];
        gemm_prepacked_ternary(
            &plan, &packed_a, &tern, wp, wn, &mut got, 1, Schedule::Static, epilogue,
        );

        let mut packed_b = vec![0.0f32; plan.packed_b_elems()];
        pack_b_transposed_into(&plan, weight.data(), &mut packed_b);
        let mut want = vec![0.0f32; m * n];
        cnn_stack::tensor::gemm_prepacked_epilogue(
            &plan, &packed_a, &packed_b, &mut want, 1, Schedule::Static, epilogue,
        );

        // Same FMA ladder, same blocking: not merely within 1e-5
        // relative (the plan-level acceptance bar) but equal to the bit.
        assert_all_match(&got, &want, "ternary gemm");
        for (&g, &w) in got.iter().zip(&want) {
            let rel = (g - w).abs() / w.abs().max(1.0);
            prop_assert!(rel <= 1e-5, "rel error {} exceeds 1e-5", rel);
        }
    }
}

// ---------------------------------------------------------------------------
// Int8 packed GEMM vs an exact integer reference
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn int8_gemm_matches_exact_integer_reference(
        (m, k, n) in (1usize..14, 1usize..60, 1usize..36),
        seed in 0u64..1000,
    ) {
        // k < kc (256): a single K block, so the driver's one rescale
        // is `scale · Σ(aq·wq)` with the integer sum exact in f32
        // (|Σ| ≤ 60 · 127² < 2²⁴).
        let a = Tensor::from_fn([m, k], |i| {
            ((i as u64 * 37 + seed) % 41) as f32 * 0.1 - 2.0
        });
        let w = Tensor::from_fn([n, k], |i| {
            ((i as u64 * 53 + seed) % 29) as f32 * 0.1 - 1.4
        });
        let qa = quantise_scale_i8(a.data());
        let qw = quantise_scale_i8(w.data());

        let plan = GemmPlan::new(m, k, n);
        let mut pa = vec![0i8; plan.packed_a_elems()];
        pack_a_i8_into(&plan, a.data(), qa, &mut pa);
        let mut pb = vec![0i8; plan.packed_b_elems()];
        pack_b_transposed_i8_into(&plan, w.data(), qw, &mut pb);
        let scale = 1.0 / (qa * qw);
        let mut got = vec![0.0f32; m * n];
        gemm_prepacked_int8(
            &plan, &pa, &pb, scale, &mut got, 1, Schedule::Static, GemmEpilogue::None,
        );

        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    let aq = quantise_i8(a.data()[i * k + p], qa) as i32;
                    let wq = quantise_i8(w.data()[j * k + p], qw) as i32;
                    acc += aq * wq;
                }
                let want = scale * acc as f32;
                let gotv = got[i * n + j];
                prop_assert!(
                    same_f32(gotv, want),
                    "({}, {}): got {}, exact reference {}", i, j, gotv, want
                );
            }
        }
    }
}
