//! Integration tests for the arena-backed inference engine: the
//! zero-allocation steady state, profile/descriptor alignment, and
//! bit-exact agreement with `Network::forward` on the paper's models.
//!
//! The allocation test needs a counting `#[global_allocator]`, which
//! applies to the whole test binary — that is why these tests live in
//! their own integration-test file.

use cnn_stack::models::ModelKind;
use cnn_stack::nn::{ExecConfig, InferencePlan, InferenceSession, Phase};
use cnn_stack::tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// The headline acceptance criterion: after the plan is compiled and one
/// warm-up pass has sized the arena, a VGG-16 batch-4 inference performs
/// zero heap allocations.
#[test]
fn vgg16_batch4_steady_state_makes_no_heap_allocations() {
    let mut model = ModelKind::Vgg16.build_width(10, 0.25);
    let cfg = ExecConfig::serial();
    let input = Tensor::zeros([4, 3, 32, 32]);
    let plan = InferencePlan::compile(&model.network, input.shape().dims(), &cfg)
        .expect("VGG-16 accepts CIFAR-shaped input");
    assert!(
        plan.fully_supported(),
        "every VGG-16 layer should take the arena fast path"
    );
    let mut session =
        InferenceSession::new(&mut model.network, plan).expect("plan matches this network");
    let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
    session
        .run_into(&input, &mut out)
        .expect("shape matches plan");

    let allocs = allocations_during(|| {
        session
            .run_into(&input, &mut out)
            .expect("shape matches plan")
    });
    assert_eq!(
        allocs, 0,
        "steady-state session pass performed {allocs} heap allocations"
    );
}

/// The session profile has one row per top-level layer, index-aligned
/// with the network, and each executed pass increments the run counter.
/// For the flat models (VGG-16, MobileNet) that row count also equals
/// `descriptors()`; ResNet-18's residual blocks expand to more
/// descriptor rows than profiled layers.
#[test]
fn session_profile_rows_align_with_descriptors() {
    for kind in ModelKind::all() {
        let mut model = kind.build_width(10, 0.25);
        let input_shape = [1usize, 3, 32, 32];
        let descs = {
            let mut shape = input_shape.to_vec();
            model
                .network
                .layers()
                .iter()
                .map(|l| {
                    let d = l.descriptor(&shape);
                    shape = d.output_shape.clone();
                    d
                })
                .collect::<Vec<_>>()
        };
        if !matches!(kind, ModelKind::ResNet18) {
            assert_eq!(
                descs.len(),
                model.network.descriptors(&input_shape).len(),
                "{}: flat model, so expanded descriptors match layers",
                kind.name()
            );
        }
        let cfg = ExecConfig::serial();
        let plan = InferencePlan::compile(&model.network, &input_shape, &cfg)
            .expect("paper models accept CIFAR-shaped input");
        let mut session =
            InferenceSession::new(&mut model.network, plan).expect("plan matches this network");
        let input = Tensor::zeros(input_shape.to_vec());
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        session
            .run_into(&input, &mut out)
            .expect("shape matches plan");
        session
            .run_into(&input, &mut out)
            .expect("shape matches plan");

        let profile = session.profile();
        assert_eq!(profile.runs(), 2, "{}: two passes recorded", kind.name());
        assert_eq!(
            profile.rows().len(),
            descs.len(),
            "{}: one profile row per descriptor",
            kind.name()
        );
        for (row, d) in profile.rows().iter().zip(&descs) {
            assert_eq!(row.name, d.name, "{}: rows follow layer order", kind.name());
        }

        session.reset_profile();
        assert_eq!(session.profile().runs(), 0);
        assert_eq!(session.profile().rows().len(), descs.len());
    }
}

/// Session output is bit-identical to the allocating `Network::forward`
/// path on all three paper models.
#[test]
fn session_bit_matches_forward_on_paper_models() {
    for kind in ModelKind::all() {
        let mut model = kind.build_width(10, 0.1);
        let cfg = ExecConfig::serial();
        let input = Tensor::from_fn([2, 3, 32, 32], |i| {
            ((i as u64 * 2654435761) % 197) as f32 * 0.01 - 1.0
        });
        let expected = model.network.forward(&input, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&model.network, input.shape().dims(), &cfg)
            .expect("paper models accept CIFAR-shaped input");
        let mut session =
            InferenceSession::new(&mut model.network, plan).expect("plan matches this network");
        let got = session.run(&input).expect("input matches plan");
        assert_eq!(
            got.shape().dims(),
            expected.shape().dims(),
            "{}",
            kind.name()
        );
        assert_eq!(
            got.data(),
            expected.data(),
            "{}: outputs diverge",
            kind.name()
        );
    }
}
