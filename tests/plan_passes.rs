//! Integration tests for the pass-based plan compiler: fused
//! conv+BN+ReLU equivalence against the unfused reference (property
//! based, across strides/paddings/non-finite inputs), the pointwise
//! packed-GEMM fast path, weight-panel cache invalidation through
//! residual-block accessors, and autotune cache determinism.

use cnn_stack::nn::{
    fold_batchnorm, Autotune, BatchNorm2d, Conv2d, ConvAlgorithm, ExecConfig, Flatten, FoldAndFuse,
    GuardConfig, InferencePlan, InferenceSession, Linear, MaxPool2d, Network, Phase, PlanCompiler,
    ReLU, ResidualBlock, WeightFormat,
};
use cnn_stack::tensor::Tensor;
use proptest::prelude::*;

/// Equality up to NaN payload and zero sign: fusion skips the folded
/// batch norm's `x * 1.0 + 0.0` identity, which canonicalises `-0.0` to
/// `+0.0` and may requiet a NaN; everything else must match bitwise.
fn same_bits(a: f32, b: f32) -> bool {
    (a.is_nan() && b.is_nan()) || (a == 0.0 && b == 0.0) || a.to_bits() == b.to_bits()
}

/// conv(k, stride, padding) + BN + ReLU with the batch norm pushed away
/// from the identity, deterministically per seed.
fn conv_bn_relu_net(kernel: usize, stride: usize, padding: usize, seed: u64) -> Network {
    let mut net = Network::new(vec![
        Box::new(Conv2d::new(3, 6, kernel, stride, padding, seed)),
        Box::new(BatchNorm2d::new(6)),
        Box::new(ReLU::new()),
    ])
    .unwrap();
    let bn = net.layers_mut()[1]
        .as_any_mut()
        .downcast_mut::<BatchNorm2d>()
        .unwrap();
    for (i, g) in bn.gamma_mut().value.data_mut().iter_mut().enumerate() {
        *g = 0.6 + 0.17 * (i as f32) + (seed % 5) as f32 * 0.03;
    }
    net
}

fn deterministic_input(shape: [usize; 4]) -> Tensor {
    Tensor::from_fn(shape, |i| ((i * 29 % 17) as f32) * 0.11 - 0.9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fused plan (BN folded + absorbed, ReLU applied in the kernel
    /// epilogue) must reproduce the unfused reference — same folded
    /// weights, but BN and ReLU executed as separate layer sweeps —
    /// element for element, including NaN/Inf propagation.
    #[test]
    fn fused_conv_bn_relu_matches_unfused_reference(
        k in 0usize..2,
        stride in 1usize..3,
        padding in 0usize..2,
        nonfinite in 0usize..3,
        seed in 0u64..25,
    ) {
        let kernel = if k == 0 { 1 } else { 3 };
        let shape = [1usize, 3, 8, 8];
        let mut input = deterministic_input(shape);
        match nonfinite {
            1 => {
                input.data_mut()[5] = f32::NAN;
                input.data_mut()[40] = f32::NAN;
            }
            2 => {
                input.data_mut()[3] = f32::INFINITY;
                input.data_mut()[33] = f32::NEG_INFINITY;
            }
            _ => {}
        }
        let cfg = ExecConfig::serial();

        // Reference: fold the batch norm by hand (the same arithmetic
        // the fold-and-fuse pass applies), then execute every layer
        // separately — identity BN sweep, standalone ReLU sweep.
        let mut ref_net = conv_bn_relu_net(kernel, stride, padding, seed);
        fold_batchnorm(&mut ref_net);
        let ref_plan = InferencePlan::compile(&ref_net, &shape, &cfg).unwrap();
        prop_assert_eq!(ref_plan.steps().len(), 3);
        let mut ref_session =
            InferenceSession::with_guard(&mut ref_net, ref_plan, GuardConfig::Off).unwrap();
        let mut want = Tensor::zeros(ref_session.plan().output_shape().to_vec());
        ref_session.run_into(&input, &mut want).unwrap();

        // Fused: the fold-and-fuse pass collapses all three layers into
        // one step with a ReLU epilogue.
        let mut fused_net = conv_bn_relu_net(kernel, stride, padding, seed);
        let plan = PlanCompiler::new()
            .with_pass(FoldAndFuse)
            .run(&mut fused_net, &shape, &cfg)
            .unwrap();
        prop_assert_eq!(plan.steps().len(), 1);
        prop_assert_eq!(plan.steps()[0].span, 3);
        prop_assert!(plan.steps()[0].cfg.fused_relu);
        let mut session =
            InferenceSession::with_guard(&mut fused_net, plan, GuardConfig::Off).unwrap();
        let mut got = Tensor::zeros(session.plan().output_shape().to_vec());
        session.run_into(&input, &mut got).unwrap();

        prop_assert_eq!(want.shape().dims(), got.shape().dims());
        for (i, (w, g)) in want.data().iter().zip(got.data()).enumerate() {
            prop_assert!(
                same_bits(*w, *g),
                "elem {}: unfused {:?} vs fused {:?} (k={} s={} p={} nf={})",
                i, w, g, kernel, stride, padding, nonfinite
            );
        }
    }
}

/// A 1×1 stride-1 pad-0 convolution under im2col+packed takes the
/// pointwise fast path (no im2col pack); it must match the direct
/// reference.
#[test]
fn pointwise_conv_packed_path_matches_direct() {
    let shape = [2usize, 8, 10, 10];
    let input = deterministic_input(shape);

    let mut direct_net = Network::new(vec![Box::new(Conv2d::new(8, 16, 1, 1, 0, 11))]).unwrap();
    let want = direct_net.forward(&input, Phase::Eval, &ExecConfig::serial());

    let mut packed_net = Network::new(vec![Box::new(Conv2d::new(8, 16, 1, 1, 0, 11))]).unwrap();
    let cfg = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        ..ExecConfig::serial()
    };
    let plan = InferencePlan::compile(&packed_net, &shape, &cfg).unwrap();
    let mut session =
        InferenceSession::with_guard(&mut packed_net, plan, GuardConfig::Off).unwrap();
    let mut got = Tensor::zeros(session.plan().output_shape().to_vec());
    session.run_into(&input, &mut got).unwrap();

    assert_eq!(want.shape().dims(), got.shape().dims());
    assert!(want.allclose(&got, 1e-4));
}

/// `weight_mut` through a residual block's accessors must invalidate the
/// plan-time packed weight panels: a forward pass after the mutation has
/// to see the new weights, not a stale cache.
#[test]
fn residual_weight_mut_invalidates_cached_panels() {
    let shape = [1usize, 4, 8, 8];
    let input = deterministic_input(shape);
    let cfg = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        ..ExecConfig::serial()
    };

    let mut net = Network::new(vec![Box::new(ResidualBlock::new(4, 4, 1, 21))]).unwrap();
    // Prepare caches packed panels for the internal convolutions.
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| l.prepare(&cfg));
    }
    let before = net.forward(&input, Phase::Eval, &cfg);

    // Mutate conv1 through the residual accessor chain.
    let block = net.layers_mut()[0]
        .as_any_mut()
        .downcast_mut::<ResidualBlock>()
        .unwrap();
    for w in block.conv1_mut().weight_mut().value.data_mut() {
        *w *= 2.0;
    }
    let after = net.forward(&input, Phase::Eval, &cfg);
    assert!(
        !after.allclose(&before, 1e-6),
        "doubling conv1 weights must change the output"
    );

    // Reference: identical block whose weights were doubled before any
    // panel was ever cached.
    let mut ref_net = Network::new(vec![Box::new(ResidualBlock::new(4, 4, 1, 21))]).unwrap();
    let ref_block = ref_net.layers_mut()[0]
        .as_any_mut()
        .downcast_mut::<ResidualBlock>()
        .unwrap();
    for w in ref_block.conv1_mut().weight_mut().value.data_mut() {
        *w *= 2.0;
    }
    let want = ref_net.forward(&input, Phase::Eval, &cfg);
    assert!(after.allclose(&want, 1e-6));
}

/// `set_format` through a residual accessor must rebuild the CSR cache
/// from the *current* weights and drop stale packed panels.
#[test]
fn residual_set_format_refreshes_csr_from_current_weights() {
    let shape = [1usize, 4, 8, 8];
    let input = deterministic_input(shape);
    let packed_cfg = ExecConfig {
        conv_algo: ConvAlgorithm::Im2col,
        ..ExecConfig::serial()
    };

    let mut net = Network::new(vec![Box::new(ResidualBlock::new(4, 4, 1, 33))]).unwrap();
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| l.prepare(&packed_cfg));
    }
    let block = net.layers_mut()[0]
        .as_any_mut()
        .downcast_mut::<ResidualBlock>()
        .unwrap();
    // Mutate, then switch conv2 to CSR: the sparse cache must capture
    // the mutated weights.
    for w in block.conv2_mut().weight_mut().value.data_mut() {
        *w *= -1.5;
    }
    block.conv2_mut().set_format(WeightFormat::Csr);
    let got = net.forward(&input, Phase::Eval, &ExecConfig::serial());

    let mut ref_net = Network::new(vec![Box::new(ResidualBlock::new(4, 4, 1, 33))]).unwrap();
    let ref_block = ref_net.layers_mut()[0]
        .as_any_mut()
        .downcast_mut::<ResidualBlock>()
        .unwrap();
    for w in ref_block.conv2_mut().weight_mut().value.data_mut() {
        *w *= -1.5;
    }
    ref_block.conv2_mut().set_format(WeightFormat::Csr);
    let want = ref_net.forward(&input, Phase::Eval, &ExecConfig::serial());
    assert!(got.allclose(&want, 0.0));
}

/// A fusable multi-stage network for the autotune smoke test.
fn autotune_net(seed: u64) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(3, 6, 3, 1, 1, seed)),
        Box::new(BatchNorm2d::new(6)),
        Box::new(ReLU::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(6 * 4 * 4, 5, seed + 1)),
    ])
    .unwrap()
}

/// Autotuning with a fixed cache file is deterministic: the second
/// compilation reuses the persisted winners and produces the identical
/// plan without rewriting the cache.
#[test]
fn autotune_cache_reuse_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("cnn-stack-plan-passes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("tune.tsv");
    let shape = [1usize, 3, 8, 8];
    let cfg = ExecConfig::serial();
    let compiler = PlanCompiler::standard().with_pass(Autotune::with_cache_path(&cache));

    let mut net_a = autotune_net(3);
    let plan_a = compiler.run(&mut net_a, &shape, &cfg).unwrap();
    let cache_after_first = std::fs::read_to_string(&cache).unwrap();
    assert!(!cache_after_first.is_empty());

    let mut net_b = autotune_net(3);
    let plan_b = compiler.run(&mut net_b, &shape, &cfg).unwrap();
    let cache_after_second = std::fs::read_to_string(&cache).unwrap();

    assert_eq!(plan_a.steps().len(), plan_b.steps().len());
    for (a, b) in plan_a.steps().iter().zip(plan_b.steps()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.span, b.span);
        assert_eq!(a.cfg.conv_algo, b.cfg.conv_algo);
        assert_eq!(a.cfg.gemm_algo, b.cfg.gemm_algo);
        assert_eq!(a.cfg.fused_relu, b.cfg.fused_relu);
    }
    // A pure cache hit must not rewrite the file.
    assert_eq!(cache_after_first, cache_after_second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A single large-kernel stem layer where the FFT algorithm removes
/// two orders of magnitude of arithmetic and all of im2col's pack
/// traffic: the cost model must select it unprompted.
#[test]
fn cost_model_selects_fft_for_large_kernel_stem() {
    let mut net = Network::new(vec![
        Box::new(Conv2d::new(2, 2, 31, 1, 0, 11)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let cfg = ExecConfig::serial();
    let plan = PlanCompiler::standard()
        .run(&mut net, &[1, 2, 98, 98], &cfg)
        .unwrap();
    let step = &plan.steps()[0];
    assert_eq!(
        step.cfg.conv_algo,
        ConvAlgorithm::Fft,
        "31×31 over 98×98 should price FFT below im2col+packed; step: {}",
        step.name
    );
    assert!(
        step.name.ends_with("[fft]"),
        "selection must be visible in the step name: {}",
        step.name
    );
}

/// Under a memory budget the solver must walk the conv off the packed
/// im2col engine onto Winograd F(4×4) — the fastest candidate with a
/// strictly smaller workspace — rather than all the way down to the
/// direct kernel.
#[test]
fn budget_solver_prefers_winograd4_over_direct_as_refuge() {
    let shape = [2usize, 16, 32, 32];
    let free_cfg = ExecConfig::serial();
    let mut net = Network::new(vec![
        Box::new(Conv2d::new(16, 16, 3, 1, 1, 5)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let free_plan = PlanCompiler::standard()
        .run(&mut net, &shape, &free_cfg)
        .unwrap();
    assert_eq!(free_plan.steps()[0].cfg.conv_algo, ConvAlgorithm::Im2col);
    let free_peak = free_plan.footprint().peak_bytes;

    let capped = ExecConfig::builder()
        .plan_budget(free_peak - 1)
        .build()
        .unwrap();
    let mut net = Network::new(vec![
        Box::new(Conv2d::new(16, 16, 3, 1, 1, 5)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let plan = PlanCompiler::standard()
        .run(&mut net, &shape, &capped)
        .unwrap();
    let step = &plan.steps()[0];
    assert_eq!(
        step.cfg.conv_algo,
        ConvAlgorithm::WinogradF4,
        "the budget refuge should be F(4×4), not direct; step: {}",
        step.name
    );
    assert!(plan.footprint().peak_bytes < free_peak);

    // The demoted plan still computes the right function.
    let input = deterministic_input(shape);
    let mut direct_net = Network::new(vec![
        Box::new(Conv2d::new(16, 16, 3, 1, 1, 5)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let want = direct_net.forward(&input, Phase::Eval, &ExecConfig::serial());
    let mut session = InferenceSession::new(&mut net, plan).unwrap();
    let got = session.run(&input).unwrap();
    let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    for (g, r) in got.data().iter().zip(want.data()) {
        assert!((g - r).abs() <= 1e-3 * scale.max(1.0));
    }
}

/// Autotune over a stem whose candidate list now includes FFT stays
/// deterministic: the second compilation is a pure cache hit (byte
/// stable file) and reproduces the identical selection.
#[test]
fn autotune_with_fft_candidate_is_cache_deterministic() {
    let dir = std::env::temp_dir().join(format!("cnn-stack-fft-tune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("tune.tsv");
    let shape = [1usize, 2, 98, 98];
    let cfg = ExecConfig::serial();
    let compiler = PlanCompiler::standard().with_pass(Autotune::with_cache_path(&cache));

    let mut net_a = Network::new(vec![
        Box::new(Conv2d::new(2, 2, 31, 1, 0, 17)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let plan_a = compiler.run(&mut net_a, &shape, &cfg).unwrap();
    let cache_first = std::fs::read_to_string(&cache).unwrap();
    assert!(!cache_first.is_empty());

    let mut net_b = Network::new(vec![
        Box::new(Conv2d::new(2, 2, 31, 1, 0, 17)) as Box<dyn cnn_stack::nn::Layer>
    ])
    .unwrap();
    let plan_b = compiler.run(&mut net_b, &shape, &cfg).unwrap();
    let cache_second = std::fs::read_to_string(&cache).unwrap();

    assert_eq!(cache_first, cache_second, "cache hit must not rewrite");
    assert_eq!(
        plan_a.steps()[0].cfg.conv_algo,
        plan_b.steps()[0].cfg.conv_algo
    );
    assert_eq!(plan_a.steps()[0].name, plan_b.steps()[0].name);
    let _ = std::fs::remove_dir_all(&dir);
}
