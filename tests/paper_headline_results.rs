//! The paper's headline findings, asserted as executable claims against
//! the full reproduction pipeline (modelled platforms, real surgery).
//! Each test names the artefact it guards.

use cnn_stack::compress::{AccuracyModel, Technique};
use cnn_stack::hwsim::Backend;
use cnn_stack::models::ModelKind;
use cnn_stack::stack::{evaluate, CompressionChoice, PlatformChoice, StackConfig};

fn table3(kind: ModelKind, technique: Technique) -> CompressionChoice {
    let x = AccuracyModel::table3_operating_point(kind, technique);
    match technique {
        Technique::WeightPruning => CompressionChoice::WeightPruning { sparsity_pct: x },
        Technique::ChannelPruning => CompressionChoice::ChannelPruning { compression_pct: x },
        Technique::TernaryQuantisation => CompressionChoice::TernaryQuantisation { threshold: x },
    }
}

#[test]
fn figure1_actual_time_defies_expected_speedup() {
    // Fig. 1: at 80% pruning the expected time is ~5x lower than actual.
    let base = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
    let dense = evaluate(&base);
    let pruned = evaluate(&base.compress(CompressionChoice::WeightPruning { sparsity_pct: 80.0 }));
    let expected = dense.modelled_s * pruned.effective_macs as f64 / dense.macs as f64;
    assert!(
        pruned.modelled_s > 3.0 * expected,
        "actual {} vs expected {expected}",
        pruned.modelled_s
    );
    // And actual never beats the dense baseline at this sparsity.
    assert!(pruned.modelled_s >= dense.modelled_s * 0.95);
}

#[test]
fn figure4_channel_pruning_wins_every_setup() {
    // §V-D: "channel pruning significantly outperforms the other
    // compression techniques in every setup considered."
    for kind in ModelKind::all() {
        for platform in PlatformChoice::all() {
            for &threads in &platform.platform().paper_thread_counts() {
                let base = StackConfig::plain(kind, platform).threads(threads);
                let cp = evaluate(&base.compress(table3(kind, Technique::ChannelPruning)));
                let wp = evaluate(&base.compress(table3(kind, Technique::WeightPruning)));
                let q = evaluate(&base.compress(table3(kind, Technique::TernaryQuantisation)));
                let plain = evaluate(&base);
                assert!(
                    cp.modelled_s < wp.modelled_s
                        && cp.modelled_s < q.modelled_s
                        && cp.modelled_s < plain.modelled_s,
                    "{kind} on {platform:?} at {threads}t: cp={} wp={} q={} plain={}",
                    cp.modelled_s,
                    wp.modelled_s,
                    q.modelled_s,
                    plain.modelled_s
                );
            }
        }
    }
}

#[test]
fn figure4_sparse_methods_hurt_vgg_and_resnet() {
    // §V-D: sparse methods (WP, TTQ) never beat plain for VGG/ResNet.
    for kind in [ModelKind::Vgg16, ModelKind::ResNet18] {
        for platform in PlatformChoice::all() {
            for &threads in &platform.platform().paper_thread_counts() {
                let base = StackConfig::plain(kind, platform).threads(threads);
                let plain = evaluate(&base);
                for technique in [Technique::WeightPruning, Technique::TernaryQuantisation] {
                    let sparse = evaluate(&base.compress(table3(kind, technique)));
                    assert!(
                        sparse.modelled_s >= plain.modelled_s * 0.98,
                        "{kind}/{technique} beat plain on {platform:?}@{threads}t"
                    );
                }
            }
        }
    }
}

#[test]
fn figure4_mobilenet_does_not_scale_but_its_sparse_variants_catch_up() {
    for platform in PlatformChoice::all() {
        let max_t = platform.platform().max_threads();
        let base = StackConfig::plain(ModelKind::MobileNet, platform);
        let plain_1 = evaluate(&base.threads(1));
        let plain_max = evaluate(&base.threads(max_t));
        // No meaningful speedup from threads (§V-D).
        assert!(
            plain_max.modelled_s > plain_1.modelled_s * 0.85,
            "MobileNet sped up too much on {platform:?}"
        );
        // The quantised variant overtakes plain at max threads.
        let q = evaluate(
            &base
                .threads(max_t)
                .compress(table3(ModelKind::MobileNet, Technique::TernaryQuantisation)),
        );
        assert!(
            q.modelled_s < plain_max.modelled_s,
            "quantised MobileNet should beat plain at {max_t} threads on {platform:?}"
        );
    }
}

#[test]
fn table4_sparse_formats_cost_memory_channel_pruning_saves_it() {
    for kind in ModelKind::all() {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let plain = evaluate(&base);
        let wp = evaluate(&base.compress(table3(kind, Technique::WeightPruning)));
        let cp = evaluate(&base.compress(table3(kind, Technique::ChannelPruning)));
        let q = evaluate(&base.compress(table3(kind, Technique::TernaryQuantisation)));
        assert!(
            wp.memory_mb > plain.memory_mb,
            "{kind}: WP should inflate memory"
        );
        assert!(
            q.memory_mb > plain.memory_mb,
            "{kind}: TTQ should inflate memory"
        );
        assert!(
            cp.memory_mb < plain.memory_mb * 0.6,
            "{kind}: CP should shrink memory"
        );
    }
}

#[test]
fn table4_memory_ratios_track_paper_within_2x() {
    // Absolute MB differ (our accounting is a model), but the
    // technique/plain ratios should be in the paper's ballpark.
    let paper: [(ModelKind, [f64; 4]); 3] = [
        (ModelKind::Vgg16, [111.4, 144.4, 17.9, 130.3]),
        (ModelKind::ResNet18, [89.0, 99.4, 31.6, 100.8]),
        (ModelKind::MobileNet, [69.1, 188.5, 10.8, 201.1]),
    ];
    for (kind, mb) in paper {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let ours = [
            evaluate(&base).memory_mb,
            evaluate(&base.compress(table3(kind, Technique::WeightPruning))).memory_mb,
            evaluate(&base.compress(table3(kind, Technique::ChannelPruning))).memory_mb,
            evaluate(&base.compress(table3(kind, Technique::TernaryQuantisation))).memory_mb,
        ];
        for i in 1..4 {
            let ours_ratio = ours[i] / ours[0];
            let paper_ratio = mb[i] / mb[0];
            assert!(
                ours_ratio / paper_ratio < 2.6 && paper_ratio / ours_ratio < 2.6,
                "{kind} col {i}: ratio {ours_ratio:.2} vs paper {paper_ratio:.2}"
            );
        }
    }
}

#[test]
fn figure5_compressed_big_nets_beat_mobilenet_on_the_odroid() {
    // §V-E: at fixed 90% accuracy, channel-pruned VGG-16/ResNet-18
    // outperform (even channel-pruned) MobileNet's *plain* baseline on
    // the Odroid with 8 threads.
    let plain_mobilenet =
        evaluate(&StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4).threads(8));
    for kind in [ModelKind::Vgg16, ModelKind::ResNet18] {
        let x = AccuracyModel::table5_operating_point(kind, Technique::ChannelPruning);
        let cfg = StackConfig::plain(kind, PlatformChoice::OdroidXu4)
            .threads(8)
            .compress(CompressionChoice::ChannelPruning { compression_pct: x });
        let cell = evaluate(&cfg);
        assert!(cell.accuracy_pct >= 89.0);
        assert!(
            cell.modelled_s < plain_mobilenet.modelled_s,
            "{kind} at 90% should beat plain MobileNet: {} vs {}",
            cell.modelled_s,
            plain_mobilenet.modelled_s
        );
    }
}

#[test]
fn figure6_backend_ordering_and_imagenet_inversion() {
    // Fig. 6: hand OpenCL < OpenMP(8) < CLBlast at CIFAR scale.
    for kind in ModelKind::all() {
        let base = StackConfig::plain(kind, PlatformChoice::OdroidXu4);
        let omp = evaluate(&base.threads(8));
        let hand = evaluate(&base.backend(Backend::OpenClHandTuned));
        let blast = evaluate(&base.backend(Backend::OpenClClblast));
        assert!(
            hand.modelled_s < omp.modelled_s,
            "{kind}: hand OpenCL should win"
        );
        assert!(
            blast.modelled_s > omp.modelled_s,
            "{kind}: CLBlast should lose at 32x32"
        );
    }
    // §V-F: the "up to 10x" CLBlast slowdown happens on ResNet-18.
    let base = StackConfig::plain(ModelKind::ResNet18, PlatformChoice::OdroidXu4);
    let hand = evaluate(&base.backend(Backend::OpenClHandTuned));
    let blast = evaluate(&base.backend(Backend::OpenClClblast));
    let ratio = blast.modelled_s / hand.modelled_s;
    assert!(ratio > 5.0 && ratio < 20.0, "CLBlast/hand = {ratio}");
}

#[test]
fn table5_accuracy_contract_holds_end_to_end() {
    // Every Table V cell evaluates to ~90% predicted accuracy.
    for kind in ModelKind::all() {
        for technique in Technique::all() {
            let x = AccuracyModel::table5_operating_point(kind, technique);
            let choice = match technique {
                Technique::WeightPruning => CompressionChoice::WeightPruning { sparsity_pct: x },
                Technique::ChannelPruning => {
                    CompressionChoice::ChannelPruning { compression_pct: x }
                }
                Technique::TernaryQuantisation => {
                    CompressionChoice::TernaryQuantisation { threshold: x }
                }
            };
            let cfg = StackConfig::plain(kind, PlatformChoice::IntelI7).compress(choice);
            let cell = evaluate(&cfg);
            assert!(
                (cell.accuracy_pct - 90.0).abs() < 1.0,
                "{kind}/{technique}: {}",
                cell.accuracy_pct
            );
        }
    }
}
