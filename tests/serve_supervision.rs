//! Deterministic self-healing tests: worker-panic supervision, the
//! hung-batch watchdog, crash-loop backoff, and the brownout circuit
//! breaker — all driven single-threaded through a [`ManualClock`] and a
//! manually-pumped server (`workers == 0`), with faults injected
//! through the serve-level fault plan, so every recovery decision is a
//! function of simulated time.
//!
//! The fault-driven scenarios need `--features fault-inject`; the
//! health-semantics tests at the bottom run under any feature set.

use cnn_stack::nn::{Conv2d, Flatten, Linear, ReLU};
use cnn_stack::prelude::*;
use cnn_stack::serve::ManualClock;
use std::sync::Arc;
use std::time::Duration;

const SHAPE: [usize; 3] = [3, 8, 8];
const MAX_DELAY: Duration = Duration::from_millis(5);

/// A small conv net; deterministic for a given seed, so every session
/// replica the server builds — including post-crash respawns — is
/// identical.
fn small_net(seed: u64) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(3, 6, 3, 1, 1, seed)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(6 * 8 * 8, 10, seed + 1)),
    ])
    .expect("stack is non-empty")
}

/// Request `i`'s input: distinct per request so outputs are too.
fn request_input(i: usize) -> Tensor {
    Tensor::from_fn(SHAPE, move |e| {
        (((e as u64 + 31 * i as u64) * 2654435761) % 211) as f32 * 0.01 - 1.0
    })
}

/// Supervision knobs sized for simulated time: a 50ms hang floor and a
/// 10ms→20ms capped crash backoff, so tests advance the clock in small,
/// explicit steps.
fn test_supervision() -> SupervisionPolicy {
    SupervisionPolicy {
        hang_multiplier: 8.0,
        hang_floor: Duration::from_millis(50),
        monitor_interval: Duration::from_millis(5),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(20),
    }
}

fn supervised_server(max_batch: usize, clock: &ManualClock) -> Server {
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(max_batch)
        .max_delay(MAX_DELAY)
        .workers(0)
        .observer(ObsLevel::Off)
        .supervision(test_supervision())
        .build()
        .expect("test config is valid");
    Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7))
        .expect("small net compiles and serves")
}

fn served(ticket: Ticket) -> Served {
    match ticket.wait().outcome {
        Outcome::Served(s) => s,
        other => panic!("expected Served, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Worker supervision: panics become typed failures, then a respawn.

/// An injected worker crash mid-batch must resolve every co-batched
/// ticket as a typed `WorkerCrashed` failure (never a lost ticket),
/// hold the worker down for its backoff, and then respawn it with a
/// fresh ladder that serves subsequent traffic.
#[cfg(feature = "fault-inject")]
#[test]
fn worker_crash_fails_tickets_typed_then_respawn_serves() {
    use cnn_stack::nn::FaultPlan;

    let clock = ManualClock::new();
    let server = supervised_server(4, &clock);
    server.inject_serve_faults(FaultPlan::new().crash_serve_batch(0));

    let doomed: Vec<Ticket> = (0..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump(), "the crashed batch still counts as work");
    for ticket in doomed {
        match ticket.wait().outcome {
            Outcome::Failed(FailureCause::WorkerCrashed(msg)) => {
                assert!(
                    msg.contains("fault-inject"),
                    "the panic message must reach the client: {msg}"
                );
            }
            other => panic!("expected WorkerCrashed, got {other:?}"),
        }
    }

    // The worker is inside its respawn backoff: new traffic queues but
    // nothing runs until the backoff expires on the server clock.
    let survivors: Vec<Ticket> = (3..6)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(!server.pump(), "no cycles while the backoff is pending");
    clock.advance(test_supervision().backoff_base);
    assert!(server.pump(), "backoff expired: respawn and serve");
    for ticket in survivors {
        let s = served(ticket);
        assert_eq!(s.batch_size, 3);
        assert!(s.output.data().iter().all(|v| v.is_finite()));
    }

    let health = server.shutdown();
    assert_eq!(health.served, 3);
    assert_eq!(health.failed, 3);
    assert_eq!(health.respawns, 1);
    assert_eq!(health.workers[0].crashes, 1);
    assert!(!health.is_clean(), "a crash must dirty the health report");
}

// ---------------------------------------------------------------------
// Hung-batch watchdog.

/// A wedged batch is invisible until its hang timeout, then one
/// watchdog sweep deposes the worker, resolves the whole batch as
/// typed `BatchHung` failures, and recycles the worker so the queue
/// keeps moving.
#[cfg(feature = "fault-inject")]
#[test]
fn watchdog_recycles_hung_worker_and_fails_its_batch() {
    use cnn_stack::nn::FaultPlan;

    let clock = ManualClock::new();
    let server = supervised_server(4, &clock);
    server.inject_serve_faults(FaultPlan::new().hang_serve_batch(0));

    let hung: Vec<Ticket> = (0..2)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump(), "the worker wedges inside this cycle");
    assert!(!server.pump(), "a wedged worker runs no further batches");

    // Before the hang timeout the watchdog must not touch the batch —
    // slow is not hung.
    assert_eq!(server.supervise(), 0);
    assert!(hung.iter().all(|t| t.try_wait().is_none()));

    // Past the timeout (hang floor, since ManualClock pre-warm measures
    // zero expected latency) one sweep fails over the worker.
    clock.advance(test_supervision().hang_floor + Duration::from_millis(1));
    assert_eq!(server.supervise(), 1, "exactly one worker failed over");
    for ticket in hung {
        match ticket.wait().outcome {
            Outcome::Failed(FailureCause::BatchHung) => {}
            other => panic!("expected BatchHung, got {other:?}"),
        }
    }

    // The recycled worker (same slot, new generation) serves new work.
    let after: Vec<Ticket> = (2..4)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());
    for ticket in after {
        assert_eq!(served(ticket).batch_size, 2);
    }

    let health = server.shutdown();
    assert_eq!(health.served, 2);
    assert_eq!(health.failed, 2);
    assert_eq!(health.hung_batches, 1);
    assert_eq!(health.respawns, 1);
    assert!(!health.is_clean());
}

/// Shutting down with a batch still wedged in flight must resolve those
/// tickets (typed, as `BatchHung`) — no ticket is ever lost, even
/// through the shutdown path.
#[cfg(feature = "fault-inject")]
#[test]
fn shutdown_resolves_wedged_batch_instead_of_losing_it() {
    use cnn_stack::nn::FaultPlan;

    let clock = ManualClock::new();
    let server = supervised_server(4, &clock);
    server.inject_serve_faults(FaultPlan::new().hang_serve_batch(0));

    let hung: Vec<Ticket> = (0..2)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());

    let health = server.shutdown();
    for ticket in hung {
        match ticket.wait().outcome {
            Outcome::Failed(FailureCause::BatchHung) => {}
            other => panic!("expected BatchHung at shutdown, got {other:?}"),
        }
    }
    assert_eq!(health.failed, 2);
    assert_eq!(health.served, 0);
}

// ---------------------------------------------------------------------
// Crash-loop backoff.

/// Consecutive crashes double the respawn backoff up to the cap, and a
/// cleanly served batch resets the streak — the supervisor converges to
/// a bounded respawn rate instead of hot-looping a crashing worker.
#[cfg(feature = "fault-inject")]
#[test]
fn crash_loop_backoff_doubles_then_caps() {
    use cnn_stack::nn::FaultPlan;

    let clock = ManualClock::new();
    // max_batch 1: every submit is a full batch, so no max-delay waits
    // muddy the backoff arithmetic.
    let server = supervised_server(1, &clock);
    server.inject_serve_faults(
        FaultPlan::new()
            .crash_serve_batch(0)
            .crash_serve_batch(1)
            .crash_serve_batch(2),
    );

    // Crash 1 at t=0: streak 1, backoff = base (10ms).
    let a = server.submit(request_input(0)).unwrap();
    assert!(server.pump());
    assert!(matches!(
        a.wait().outcome,
        Outcome::Failed(FailureCause::WorkerCrashed(_))
    ));
    let b = server.submit(request_input(1)).unwrap();
    assert!(!server.pump(), "down for 10ms after the first crash");
    clock.advance(Duration::from_millis(10));

    // Crash 2 at t=10ms: streak 2, backoff doubles to 20ms.
    assert!(server.pump(), "respawned worker runs (and crashes) again");
    assert!(matches!(
        b.wait().outcome,
        Outcome::Failed(FailureCause::WorkerCrashed(_))
    ));
    let c = server.submit(request_input(2)).unwrap();
    clock.advance(Duration::from_millis(10));
    assert!(
        !server.pump(),
        "10ms after the second crash the doubled backoff still holds"
    );
    clock.advance(Duration::from_millis(10));

    // Crash 3 at t=30ms: streak 3 would want 40ms but the cap is 20ms.
    assert!(server.pump());
    assert!(matches!(
        c.wait().outcome,
        Outcome::Failed(FailureCause::WorkerCrashed(_))
    ));
    let d = server.submit(request_input(3)).unwrap();
    clock.advance(Duration::from_millis(10));
    assert!(!server.pump());
    clock.advance(Duration::from_millis(10));
    // t=50ms: an uncapped schedule would hold the worker down to 70ms.
    assert!(server.pump(), "the capped backoff ends at 20ms, not 40ms");
    let s = served(d);
    assert_eq!(s.batch_size, 1);

    let health = server.shutdown();
    assert_eq!(health.workers[0].crashes, 3);
    assert_eq!(health.respawns, 3);
    assert_eq!(health.failed, 3);
    assert_eq!(health.served, 1);
}

// ---------------------------------------------------------------------
// Brownout circuit breaker.

/// The full brownout arc: a burst of deadline misses trips the breaker,
/// traffic swaps onto the degraded plan ladder (served, not shed, and
/// flagged `degraded`), the cooldown elapses, and a clean half-open
/// probe window closes the breaker back onto the primary ladder.
#[cfg(feature = "fault-inject")]
#[test]
fn breaker_trips_to_degraded_ladder_then_recovers_through_probe() {
    use cnn_stack::nn::FaultPlan;
    use cnn_stack::serve::BreakerState;

    let clock = ManualClock::new();
    let breaker = BreakerPolicy {
        window: 8,
        min_samples: 4,
        trip_miss_rate: 0.5,
        cooldown: Duration::from_millis(100),
        probe_requests: 2,
    };
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(4)
        .max_delay(MAX_DELAY)
        .workers(0)
        .observer(ObsLevel::Off)
        .supervision(test_supervision())
        .breaker(breaker)
        .build()
        .expect("breaker config is valid");
    let server = Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7))
        .expect("small net compiles and serves");

    // Phase 1 — trip: a slow batch blows every deadline in it. Four
    // misses reach min_samples at a 100% miss rate.
    server.inject_serve_faults(FaultPlan::new().slow_serve_batch(0, 2_000_000));
    let slow: Vec<Ticket> = (0..4)
        .map(|i| {
            server
                .submit_with_deadline(request_input(i), Duration::from_millis(1))
                .unwrap()
        })
        .collect();
    assert!(server.pump());
    for ticket in slow {
        let s = served(ticket);
        assert!(s.latency > Duration::from_millis(1), "the batch was slowed");
        assert!(!s.degraded, "the tripping batch itself ran primary");
    }
    let health = server.health();
    assert_eq!(health.breaker_trips, 1);
    assert_eq!(
        health.breaker.expect("breaker configured").state,
        BreakerState::Open
    );

    // Phase 2 — brownout: while open, batches run the degraded ladder
    // instead of being shed, and say so.
    let browned: Vec<Ticket> = (4..6)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());
    for ticket in browned {
        let s = served(ticket);
        assert!(s.degraded, "open breaker must route to the degraded plan");
        assert!(s.output.data().iter().all(|v| v.is_finite()));
    }
    assert_eq!(server.health().degraded_batches, 1);

    // Phase 3 — recovery: after the cooldown the breaker half-opens,
    // probes run primary, and a clean probe window closes it.
    clock.advance(breaker.cooldown);
    let probes: Vec<Ticket> = (6..8)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());
    for ticket in probes {
        assert!(!served(ticket).degraded, "probes run the primary ladder");
    }
    let health = server.shutdown();
    assert_eq!(
        health.breaker.expect("breaker configured").state,
        BreakerState::Closed
    );
    assert_eq!(health.breaker_trips, 1, "recovery must not re-trip");
    assert_eq!(health.served, 8);
    assert!(
        health.is_clean(),
        "a brownout degrades fidelity but is not a fault"
    );
}

// ---------------------------------------------------------------------
// Health semantics (no fault injection required).

/// Queue-full sheds are load conditions, not faults: they leave
/// `is_clean` true but make the server not `is_quiet`.
#[test]
fn sheds_keep_health_clean_but_not_quiet() {
    let clock = ManualClock::new();
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(1)
        .queue_depth(1)
        .workers(0)
        .observer(ObsLevel::Off)
        .build()
        .expect("test config is valid");
    let server = Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7))
        .expect("small net compiles and serves");

    // One slot in the queue: the first request is admitted, the next
    // two shed at submit time.
    let admitted = server.submit(request_input(0)).unwrap();
    let shed: Vec<Ticket> = (1..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    for ticket in shed {
        match ticket.wait().outcome {
            Outcome::Shed(ShedReason::QueueFull) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }
    assert!(server.pump());
    let _ = served(admitted);

    let health = server.shutdown();
    assert_eq!(health.shed_queue_full, 2);
    assert!(health.is_clean(), "sheds are not faults");
    assert!(!health.is_quiet(), "but a shedding server is not quiet");
}

/// A server that served everything without incident is both clean and
/// quiet, with every supervision counter at zero.
#[test]
fn unfaulted_server_is_clean_and_quiet() {
    let clock = ManualClock::new();
    let server = supervised_server(4, &clock);
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());
    for ticket in tickets {
        let s = served(ticket);
        assert!(!s.degraded, "no breaker configured: primary only");
    }
    assert_eq!(server.supervise(), 0, "nothing to fail over");

    let health = server.shutdown();
    assert!(health.is_clean());
    assert!(health.is_quiet());
    assert_eq!(health.respawns, 0);
    assert_eq!(health.hung_batches, 0);
    assert_eq!(health.breaker_trips, 0);
    assert_eq!(health.degraded_batches, 0);
    assert!(health.breaker.is_none(), "no breaker was configured");
}
