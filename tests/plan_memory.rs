//! Memory-planning properties.
//!
//! The liveness-coloured arena must be a pure *layout* optimisation:
//! the kernels, the algorithm choices, and every computed value are
//! unchanged, so outputs must be bit-identical to the legacy ping-pong
//! arena — NaN and Inf payloads included. The arena the session
//! actually allocates must never exceed the plan's predicted
//! `peak_bytes`. And a memory budget must produce plans that truly fit,
//! or fail with a typed error naming the smallest budget that would.

use cnn_stack::models::{vgg16, vgg16_width};
use cnn_stack::nn::{
    ArenaStrategy, Conv2d, ConvAlgorithm, Error, ExecConfig, Flatten, InferencePlan,
    InferenceSession, Layer, Linear, MaxPool2d, Network, PlanCompiler, PlanError, ReLU,
};
use cnn_stack::tensor::Tensor;
use proptest::prelude::*;

/// A small conv stack with an optional pool and a linear head, built
/// deterministically from a seed so two calls give identical weights.
fn build_net(
    in_c: usize,
    hw: usize,
    convs: &[usize],
    pool: bool,
    classes: usize,
    seed: u64,
) -> Network {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut c = in_c;
    for (i, &oc) in convs.iter().enumerate() {
        layers.push(Box::new(Conv2d::new(c, oc, 3, 1, 1, seed + i as u64)));
        layers.push(Box::new(ReLU::new()));
        c = oc;
    }
    let mut spatial = hw;
    if pool {
        layers.push(Box::new(MaxPool2d::new(2)));
        spatial /= 2;
    }
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(
        c * spatial * spatial,
        classes,
        seed + 99,
    )));
    Network::new(layers).expect("valid network")
}

/// Deterministic input with NaN and ±Inf payloads sprinkled in: the
/// arena layout must carry non-finite values bit-for-bit like any
/// other.
fn poisoned_input(shape: Vec<usize>, seed: u64) -> Tensor {
    Tensor::from_fn(shape, move |i| match (seed as usize + i) % 17 {
        0 => f32::NAN,
        5 => f32::INFINITY,
        11 => f32::NEG_INFINITY,
        k => (k as f32 - 8.0) * 0.37,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coloured vs ping-pong: same network, same inputs, same
    /// compiled algorithms — outputs must agree to the bit, and the
    /// session must never allocate more arena than the plan predicted.
    #[test]
    fn coloured_arena_is_bit_identical_to_ping_pong(
        in_c in 1usize..4,
        hw_sel in 0usize..3,
        conv1 in 1usize..7,
        conv2 in 0usize..7, // 0 = no second conv
        pool_bit in 0usize..2,
        classes in 1usize..5,
        batch in 1usize..5,
        threads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let hw = [4usize, 6, 8][hw_sel];
        let pool = pool_bit == 1;
        let convs: Vec<usize> = std::iter::once(conv1)
            .chain((conv2 > 0).then_some(conv2))
            .collect();
        let shape = vec![batch, in_c, hw, hw];
        let x = poisoned_input(shape.clone(), seed);

        let mut net_a = build_net(in_c, hw, &convs, pool, classes, seed);
        let mut net_b = build_net(in_c, hw, &convs, pool, classes, seed);
        let cfg_a = ExecConfig::builder()
            .threads(threads)
            .arena(ArenaStrategy::Coloured)
            .build()
            .unwrap();
        let cfg_b = ExecConfig::builder()
            .threads(threads)
            .arena(ArenaStrategy::PingPong)
            .build()
            .unwrap();
        let plan_a = PlanCompiler::standard().run(&mut net_a, &shape, &cfg_a).unwrap();
        let plan_b = PlanCompiler::standard().run(&mut net_b, &shape, &cfg_b).unwrap();
        let fp = plan_a.footprint();
        prop_assert!(fp.peak_bytes <= fp.naive_bytes);

        let mut sess_a = InferenceSession::new(&mut net_a, plan_a).unwrap();
        let mut sess_b = InferenceSession::new(&mut net_b, plan_b).unwrap();
        // Serial sessions run the whole batch through one arena, so the
        // compile-time prediction is an exact upper bound on what the
        // session allocated. (Batch-parallel sessions size one smaller
        // arena per chunk; their total is reported but the plan-level
        // bound applies per chunk, not to the sum.)
        if threads == 1 {
            prop_assert!(sess_a.arena_bytes() <= fp.peak_bytes);
            prop_assert!(sess_b.arena_bytes() <= fp.naive_bytes);
        }
        for round in 0..2 {
            let ya = sess_a.run(&x).unwrap();
            let yb = sess_b.run(&x).unwrap();
            for (i, (a, b)) in ya.data().iter().zip(yb.data()).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "round {round} elem {i}: {a:?} != {b:?}"
                );
            }
        }
    }
}

/// The paper's fastest configuration — im2col + packed GEMM everywhere
/// — cannot fit a 16 MB activation envelope at batch 16 under the
/// legacy arena, but the budgeted compiler produces a plan that does,
/// and that plan computes the same function as the unconstrained one.
#[test]
fn sixteen_mb_budget_fits_where_fixed_im2col_does_not() {
    let budget = 16 * 1024 * 1024;
    let shape = [16usize, 3, 32, 32];

    // Global im2col with the legacy two-buffer arena: over 16 MB, and
    // the admission check says so with a typed error.
    let fixed = vgg16(10);
    let cfg_fixed = ExecConfig::builder()
        .conv_algo(ConvAlgorithm::Im2col)
        .arena(ArenaStrategy::PingPong)
        .plan_budget(budget)
        .build()
        .unwrap();
    let err = InferencePlan::compile(&fixed.network, &shape, &cfg_fixed).unwrap_err();
    let Error::Plan(PlanError::BudgetInfeasible {
        budget_bytes,
        min_feasible_bytes,
    }) = err
    else {
        panic!("expected BudgetInfeasible, got {err:?}");
    };
    assert_eq!(budget_bytes, budget);
    assert!(min_feasible_bytes > budget);

    // The budgeted compiler fits the same model in the same envelope.
    let mut free_model = vgg16(10);
    let free_plan = PlanCompiler::standard()
        .run(&mut free_model.network, &shape, &ExecConfig::serial())
        .unwrap();
    let mut capped_model = vgg16(10);
    let cfg_capped = ExecConfig::builder().plan_budget(budget).build().unwrap();
    let capped_plan = PlanCompiler::standard()
        .run(&mut capped_model.network, &shape, &cfg_capped)
        .unwrap();
    assert!(capped_plan.footprint().peak_bytes <= budget);

    let x = Tensor::from_fn(shape.to_vec(), |i| ((i % 31) as f32 - 15.0) * 0.05);
    let mut free_sess = InferenceSession::new(&mut free_model.network, free_plan).unwrap();
    let mut capped_sess = InferenceSession::new(&mut capped_model.network, capped_plan).unwrap();
    assert!(capped_sess.arena_bytes() <= budget);
    let ya = free_sess.run(&x).unwrap();
    let yb = capped_sess.run(&x).unwrap();
    for (a, b) in ya.data().iter().zip(yb.data()) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

/// An envelope nothing can satisfy fails with the smallest feasible
/// budget — and that reported floor is itself compilable.
#[test]
fn infeasible_budget_error_names_an_achievable_floor() {
    let shape = [4usize, 3, 32, 32];
    let mut model = vgg16_width(10, 0.25);
    let cfg = ExecConfig::builder().plan_budget(1024).build().unwrap();
    let err = PlanCompiler::standard()
        .run(&mut model.network, &shape, &cfg)
        .unwrap_err();
    let Error::Plan(PlanError::BudgetInfeasible {
        min_feasible_bytes, ..
    }) = err
    else {
        panic!("expected BudgetInfeasible, got {err:?}");
    };
    let mut model2 = vgg16_width(10, 0.25);
    let cfg2 = ExecConfig::builder()
        .plan_budget(min_feasible_bytes)
        .build()
        .unwrap();
    let plan = PlanCompiler::standard()
        .run(&mut model2.network, &shape, &cfg2)
        .unwrap();
    assert!(plan.footprint().peak_bytes <= min_feasible_bytes);
}
