//! Deterministic serving-layer tests: max-delay batching, deadline and
//! queue-full shedding, and co-batch integrity under guard demotion —
//! all driven single-threaded through a [`ManualClock`] and a
//! manually-pumped server (`workers == 0`), so every assertion is about
//! simulated time, not scheduler luck.

use cnn_stack::nn::{Conv2d, Flatten, Linear, ReLU};
use cnn_stack::prelude::*;
use cnn_stack::serve::{Clock, ManualClock};
use std::sync::Arc;
use std::time::Duration;

const SHAPE: [usize; 3] = [3, 8, 8];
const MAX_DELAY: Duration = Duration::from_millis(5);

/// A small conv net; deterministic for a given seed, so every session
/// replica the server builds is identical.
fn small_net(seed: u64) -> Network {
    Network::new(vec![
        Box::new(Conv2d::new(3, 6, 3, 1, 1, seed)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
        Box::new(Linear::new(6 * 8 * 8, 10, seed + 1)),
    ])
    .expect("stack is non-empty")
}

/// Request `i`'s input: distinct per request so outputs are too.
fn request_input(i: usize) -> Tensor {
    Tensor::from_fn(SHAPE, move |e| {
        (((e as u64 + 31 * i as u64) * 2654435761) % 211) as f32 * 0.01 - 1.0
    })
}

fn manual_server(max_batch: usize, clock: &ManualClock) -> Server {
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(max_batch)
        .max_delay(MAX_DELAY)
        .workers(0)
        .observer(ObsLevel::Off)
        .build()
        .expect("test config is valid");
    Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7))
        .expect("small net compiles and serves")
}

fn served(ticket: Ticket) -> Served {
    match ticket.wait().outcome {
        Outcome::Served(s) => s,
        other => panic!("expected Served, got {other:?}"),
    }
}

/// Reference output for request `i`, computed through a plain batch-1
/// engine session with the serving exec path. The serve plan compiler
/// honours the im2col override at every ladder rung and the packed GEMM
/// is bit-exact across batch sizes, so served outputs must match this
/// *bit for bit* regardless of how requests were co-batched.
fn reference_logits(i: usize) -> Tensor {
    let cfg = ServeConfig::builder(SHAPE)
        .workers(0)
        .observer(ObsLevel::Off)
        .build()
        .unwrap();
    let clock = ManualClock::new();
    let server = Server::start_with_clock(cfg, Arc::new(clock), || small_net(7)).unwrap();
    let ticket = server.submit(request_input(i)).unwrap();
    while !server.pump() {}
    served(ticket).output
}

/// An under-full batch is held open for exactly `max_delay` of clock
/// time — visible on the manual clock, which only advances when the
/// batcher waits out its window — and everything queued inside the
/// window is served together.
#[test]
fn max_delay_holds_batch_open_for_stragglers() {
    let clock = ManualClock::new();
    let server = manual_server(4, &clock);
    let t0 = Duration::from_nanos(0);
    assert_eq!(clock.now_ns(), t0.as_nanos() as u64);

    let tickets: Vec<Ticket> = (0..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump(), "a queued batch must be processed");

    // The batch opened at t=0 with 3 < max_batch requests, so the
    // batcher waited out the whole max-delay window before running.
    assert_eq!(clock.now_ns(), MAX_DELAY.as_nanos() as u64);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let s = served(ticket);
        assert_eq!(s.batch_size, 3, "all three must share one batch");
        assert_eq!(
            s.output.data(),
            reference_logits(i).data(),
            "co-batched output differs from the batch-1 reference"
        );
    }
    assert_eq!(server.shutdown().served, 3);
}

/// A full batch flushes immediately: no max-delay wait appears on the
/// clock.
#[test]
fn full_batch_flushes_without_waiting() {
    let clock = ManualClock::new();
    let server = manual_server(4, &clock);
    let tickets: Vec<Ticket> = (0..4)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());
    assert_eq!(
        clock.now_ns(),
        0,
        "a full batch must not wait out the delay window"
    );
    for ticket in tickets {
        assert_eq!(served(ticket).batch_size, 4);
    }
}

/// `max_batch == 1` never opens a delay window, so batch-size-1 serving
/// pays no added latency.
#[test]
fn batch_size_one_never_delays() {
    let clock = ManualClock::new();
    let server = manual_server(1, &clock);
    let a = server.submit(request_input(0)).unwrap();
    let b = server.submit(request_input(1)).unwrap();
    assert!(server.pump());
    assert!(server.pump());
    assert_eq!(clock.now_ns(), 0, "no delay window may open at max_batch 1");
    assert_eq!(served(a).batch_size, 1);
    assert_eq!(served(b).batch_size, 1);
}

/// A request whose deadline passed while it sat in the queue is shed
/// with a typed outcome at batch-assembly time; requests with slack in
/// the same batch are still served.
#[test]
fn expired_deadline_sheds_without_starving_the_batch() {
    let clock = ManualClock::new();
    let server = manual_server(4, &clock);
    let tight = server
        .submit_with_deadline(request_input(0), Duration::from_millis(1))
        .unwrap();
    let lax = server
        .submit_with_deadline(request_input(1), Duration::from_secs(60))
        .unwrap();
    // Time passes in the queue: more than `tight`'s budget.
    clock.advance(Duration::from_millis(2));
    assert!(server.pump());

    match tight.wait().outcome {
        Outcome::Shed(ShedReason::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let s = served(lax);
    assert_eq!(
        s.batch_size, 1,
        "the shed request must not occupy the batch"
    );

    let health = server.shutdown();
    assert_eq!(health.shed_deadline, 1);
    assert_eq!(health.served, 1);
}

/// Admission control: once the bounded queue is full, submissions
/// resolve immediately to a typed `Shed(QueueFull)` — no hang, no
/// panic — and queued work is unaffected.
#[test]
fn full_queue_sheds_at_admission() {
    let clock = ManualClock::new();
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(4)
        .queue_depth(4)
        .max_delay(MAX_DELAY)
        .workers(0)
        .observer(ObsLevel::Off)
        .build()
        .unwrap();
    let server = Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7)).unwrap();

    let queued: Vec<Ticket> = (0..4)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    let rejected = server.submit(request_input(4)).unwrap();
    match rejected.wait().outcome {
        Outcome::Shed(ShedReason::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }

    assert!(server.pump());
    for ticket in queued {
        assert_eq!(served(ticket).batch_size, 4);
    }
    let health = server.shutdown();
    assert_eq!(health.shed_queue_full, 1);
    assert_eq!(health.served, 4);
}

/// A mis-shaped input is a caller error, not load shedding.
#[test]
fn shape_mismatch_is_an_error_not_a_shed() {
    let clock = ManualClock::new();
    let server = manual_server(4, &clock);
    let err = server.submit(Tensor::zeros(vec![1, 3, 8, 8])).unwrap_err();
    assert!(err.to_string().contains("does not match"));
}

/// Shutdown drains the queue — buffered requests are served, not
/// dropped — and the final health snapshot accounts for every ticket.
#[test]
fn shutdown_drains_buffered_requests() {
    let clock = ManualClock::new();
    let server = manual_server(4, &clock);
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    let health = server.shutdown();
    assert_eq!(health.served, 3);
    assert_eq!(health.submitted, 3);
    for ticket in tickets {
        let _ = served(ticket);
    }
}

/// The co-batch integrity proof (fault-inject harness): a guard trip
/// and demotion triggered by one batch's execution must leave every
/// co-batched request served with clean, finite outputs — a demotion is
/// a per-step algorithm change plus a retry, never partial output.
#[cfg(feature = "fault-inject")]
#[test]
fn guard_demotion_never_corrupts_co_batched_requests() {
    use cnn_stack::nn::FaultPlan;

    let clock = ManualClock::new();
    let cfg = ServeConfig::builder(SHAPE)
        .max_batch(4)
        .max_delay(MAX_DELAY)
        .workers(0)
        .guard(GuardConfig::BoundaryCheck)
        .observer(ObsLevel::Off)
        .build()
        .unwrap();
    let server = Server::start_with_clock(cfg, Arc::new(clock.clone()), || small_net(7)).unwrap();
    // Corrupt the conv output (layer 0) on each session's next run (the
    // pre-warm run at build time was run 0).
    server.inject_faults(|| FaultPlan::new().nan_output(0, 1));

    let tickets: Vec<Ticket> = (0..3)
        .map(|i| server.submit(request_input(i)).unwrap())
        .collect();
    assert!(server.pump());

    let outcomes: Vec<Served> = tickets.into_iter().map(served).collect();
    for (i, s) in outcomes.iter().enumerate() {
        assert_eq!(s.batch_size, 3);
        assert!(s.demoted, "the guard trip must surface as a demotion");
        assert!(
            s.output.data().iter().all(|v| v.is_finite()),
            "request {i}: injected NaN leaked into a served output"
        );
        // The demoted step re-ran with the safer (blocked) GEMM, whose
        // accumulation order differs from the packed reference, so
        // compare numerically rather than bit-for-bit.
        let reference = reference_logits(i);
        for (a, b) in s.output.data().iter().zip(reference.data()) {
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "request {i}: co-batched output diverged from clean reference ({a} vs {b})"
            );
        }
    }

    let health = server.shutdown();
    assert_eq!(health.served, 3);
    assert!(health.total_demotions() >= 1);
    assert!(health.workers.iter().any(|w| w.engine.guards_tripped >= 1));
}
