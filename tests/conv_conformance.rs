//! Cross-algorithm convolution conformance harness.
//!
//! Every convolution algorithm the stack can select — direct, im2col
//! over both GEMM engines, Winograd F(2×2,3×3), Winograd F(4×4,3×3),
//! FFT, and CSR sparse-direct — is run against one naive reference
//! (loop order matched to the direct kernel) across randomized
//! shape/stride/pad/channel grids and a curated list of degenerate
//! shapes. Each algorithm carries its own error budget:
//!
//! * **Bit-exact** — direct and CSR accumulate in the reference order,
//!   so their outputs must match the reference to the bit.
//! * **Relative** — im2col reassociates the reduction (GEMM blocking),
//!   Winograd evaluates it through transform matrices whose
//!   conditioning amplifies rounding; each gets a max-norm relative
//!   budget sized to its reassociation depth.
//! * **FFT-scaled** — FFT error grows with the transform length, so
//!   its budget scales with `log2(plane)` per the standard
//!   Gentleman–Sande bound.
//!
//! The harness also checks the NaN/Inf propagation contract (outputs
//! whose receptive field saw a non-finite input must be non-finite;
//! transform-domain algorithms may spread wider but never across batch
//! images) and the workspace-sizing contract (`forward_into` with a
//! NaN-poisoned scratch of exactly `forward_scratch_elems` floats must
//! reproduce `forward` bit-for-bit).

use cnn_stack::nn::{Conv2d, ConvAlgorithm, ExecConfig, Layer, Phase, WeightFormat};
use cnn_stack::tensor::{gemm::GemmAlgorithm, Tensor};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-algorithm error budget class.
#[derive(Clone, Copy, Debug)]
enum Tolerance {
    /// Same accumulation order as the reference: bitwise equality.
    BitExact,
    /// Max-norm relative error budget.
    Rel(f32),
    /// Max-norm relative budget scaled by `log2` of the FFT plane size.
    FftScaled,
}

/// One row of the conformance table.
struct AlgoCase {
    name: &'static str,
    format: WeightFormat,
    conv_algo: ConvAlgorithm,
    gemm_algo: GemmAlgorithm,
    tol: Tolerance,
}

/// Every convolution path the planner can select.
fn conformance_table() -> Vec<AlgoCase> {
    vec![
        AlgoCase {
            name: "direct",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::Direct,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::BitExact,
        },
        AlgoCase {
            name: "im2col-blocked",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::Im2col,
            gemm_algo: GemmAlgorithm::Blocked,
            tol: Tolerance::Rel(1e-5),
        },
        AlgoCase {
            name: "im2col-packed",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::Im2col,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::Rel(1e-5),
        },
        AlgoCase {
            name: "winograd-f2",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::Winograd,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::Rel(2e-4),
        },
        AlgoCase {
            name: "winograd-f4",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::WinogradF4,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::Rel(1e-3),
        },
        AlgoCase {
            name: "fft",
            format: WeightFormat::Dense,
            conv_algo: ConvAlgorithm::Fft,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::FftScaled,
        },
        AlgoCase {
            name: "csr-direct",
            format: WeightFormat::Csr,
            conv_algo: ConvAlgorithm::Direct,
            gemm_algo: GemmAlgorithm::Packed,
            tol: Tolerance::BitExact,
        },
    ]
}

/// One convolution shape under test.
#[derive(Clone, Copy, Debug)]
struct ConvShape {
    n: usize,
    in_c: usize,
    out_c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
}

impl ConvShape {
    fn out_extent(&self) -> (usize, usize) {
        (
            (self.h + 2 * self.pad - self.k) / self.stride + 1,
            (self.w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    fn valid(&self) -> bool {
        self.h + 2 * self.pad >= self.k && self.w + 2 * self.pad >= self.k
    }

    /// FFT plane size (padded to powers of two) for the FFT budget.
    fn fft_plane(&self) -> usize {
        let pow2 = |x: usize| x.next_power_of_two();
        pow2(self.h + 2 * self.pad + self.k - 1) * pow2(self.w + 2 * self.pad + self.k - 1)
    }
}

/// Naive reference convolution, f32 accumulation in the direct
/// kernel's per-output order: `acc = bias; for c, kh, kw { acc += }`.
#[allow(clippy::too_many_arguments)]
fn reference_f32(x: &[f32], weights: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
    let (out_h, out_w) = s.out_extent();
    let mut out = vec![0.0f32; s.n * s.out_c * out_h * out_w];
    let mut pos = 0;
    for img in 0..s.n {
        let xi = &x[img * s.in_c * s.h * s.w..];
        for o in 0..s.out_c {
            let filter = &weights[o * s.in_c * s.k * s.k..];
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = bias[o];
                    for c in 0..s.in_c {
                        for kh in 0..s.k {
                            for kw in 0..s.k {
                                let iy = (oy * s.stride + kh) as isize - s.pad as isize;
                                let ix = (ox * s.stride + kw) as isize - s.pad as isize;
                                if iy < 0 || ix < 0 || iy >= s.h as isize || ix >= s.w as isize {
                                    continue;
                                }
                                let xv = xi[(c * s.h + iy as usize) * s.w + ix as usize];
                                acc += weights[((o * s.in_c + c) * s.k + kh) * s.k + kw] * xv;
                            }
                        }
                    }
                    let _ = filter;
                    out[pos] = acc;
                    pos += 1;
                }
            }
        }
    }
    out
}

/// f64 reference for error-model measurements (the "true" answer).
fn reference_f64(x: &[f32], weights: &[f32], bias: &[f32], s: ConvShape) -> Vec<f64> {
    let (out_h, out_w) = s.out_extent();
    let mut out = vec![0.0f64; s.n * s.out_c * out_h * out_w];
    let mut pos = 0;
    for img in 0..s.n {
        let xi = &x[img * s.in_c * s.h * s.w..];
        for o in 0..s.out_c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = f64::from(bias[o]);
                    for c in 0..s.in_c {
                        for kh in 0..s.k {
                            for kw in 0..s.k {
                                let iy = (oy * s.stride + kh) as isize - s.pad as isize;
                                let ix = (ox * s.stride + kw) as isize - s.pad as isize;
                                if iy < 0 || ix < 0 || iy >= s.h as isize || ix >= s.w as isize {
                                    continue;
                                }
                                let xv = xi[(c * s.h + iy as usize) * s.w + ix as usize];
                                let wv = weights[((o * s.in_c + c) * s.k + kh) * s.k + kw];
                                acc += f64::from(wv) * f64::from(xv);
                            }
                        }
                    }
                    out[pos] = acc;
                    pos += 1;
                }
            }
        }
    }
    out
}

fn exec_cfg(case: &AlgoCase) -> ExecConfig {
    ExecConfig {
        conv_algo: case.conv_algo,
        gemm_algo: case.gemm_algo,
        ..ExecConfig::serial()
    }
}

/// Builds a seeded conv layer plus a random input/bias for a shape.
fn build_layer(s: ConvShape, seed: u64) -> (Conv2d, Tensor) {
    let mut conv = Conv2d::new(s.in_c, s.out_c, s.k, s.stride, s.pad, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed_b1a5);
    conv.bias_mut().value = Tensor::from_fn([s.out_c], |_| rng.gen_range(-0.5..0.5f32));
    let x = Tensor::from_fn([s.n, s.in_c, s.h, s.w], |_| rng.gen_range(-2.0..2.0f32));
    (conv, x)
}

/// Max-norm relative error of `got` against `reference`.
fn max_rel_err(got: &[f32], reference: &[f32]) -> f32 {
    let scale = reference
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    got.iter()
        .zip(reference)
        .fold(0.0f32, |m, (g, r)| m.max((g - r).abs()))
        / scale
}

fn check_case(case: &AlgoCase, s: ConvShape, seed: u64) {
    let (mut conv, x) = build_layer(s, seed);
    conv.set_format(case.format);
    let reference = reference_f32(
        x.data(),
        conv.weight().value.data(),
        conv.bias().value.data(),
        s,
    );
    let got = conv.forward(&x, Phase::Eval, &exec_cfg(case));
    let (out_h, out_w) = s.out_extent();
    assert_eq!(
        got.shape().dims(),
        &[s.n, s.out_c, out_h, out_w],
        "{}: output shape for {s:?}",
        case.name
    );
    // Winograd rows on non-eligible shapes fall back to the direct
    // kernel, so their effective budget there is bit-exactness; the
    // relative budget below covers both regimes.
    match case.tol {
        Tolerance::BitExact => {
            for (i, (g, r)) in got.data().iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{}: bit mismatch at {i} for {s:?}: {g} vs {r}",
                    case.name
                );
            }
        }
        Tolerance::Rel(tol) => {
            let err = max_rel_err(got.data(), &reference);
            assert!(
                err <= tol,
                "{}: rel error {err:e} > budget {tol:e} for {s:?}",
                case.name
            );
        }
        Tolerance::FftScaled => {
            let tol = 32.0 * (s.fft_plane() as f32).log2().max(1.0) * f32::EPSILON;
            let err = max_rel_err(got.data(), &reference);
            assert!(
                err <= tol,
                "{}: rel error {err:e} > log-scaled budget {tol:e} for {s:?}",
                case.name
            );
        }
    }
}

/// Curated degenerate shapes every algorithm must survive: 1×1 maps,
/// single channels, stride exceeding the kernel, outputs collapsing to
/// a single position, and kernels larger than the unpadded input.
fn degenerate_shapes() -> Vec<ConvShape> {
    vec![
        // 1×1 map, pointwise kernel.
        ConvShape {
            n: 1,
            in_c: 1,
            out_c: 1,
            h: 1,
            w: 1,
            k: 1,
            stride: 1,
            pad: 0,
        },
        // Single input channel, standard 3×3.
        ConvShape {
            n: 2,
            in_c: 1,
            out_c: 4,
            h: 7,
            w: 7,
            k: 3,
            stride: 1,
            pad: 1,
        },
        // Stride larger than the kernel window.
        ConvShape {
            n: 1,
            in_c: 3,
            out_c: 2,
            h: 5,
            w: 5,
            k: 1,
            stride: 3,
            pad: 0,
        },
        // Output collapses to a single 1×1 position.
        ConvShape {
            n: 2,
            in_c: 2,
            out_c: 3,
            h: 3,
            w: 3,
            k: 3,
            stride: 1,
            pad: 0,
        },
        // Kernel wider than the unpadded input (pad makes it fit).
        ConvShape {
            n: 1,
            in_c: 2,
            out_c: 2,
            h: 4,
            w: 4,
            k: 5,
            stride: 1,
            pad: 2,
        },
        // Tiny map where padding supplies most of the window.
        ConvShape {
            n: 1,
            in_c: 1,
            out_c: 1,
            h: 2,
            w: 2,
            k: 3,
            stride: 2,
            pad: 1,
        },
        // Large even-kernel-free odd kernel, strided.
        ConvShape {
            n: 1,
            in_c: 2,
            out_c: 2,
            h: 6,
            w: 6,
            k: 5,
            stride: 2,
            pad: 0,
        },
        // Canonical 3×3 stride-1 same-pad layer (Winograd fast path).
        ConvShape {
            n: 2,
            in_c: 3,
            out_c: 4,
            h: 8,
            w: 8,
            k: 3,
            stride: 1,
            pad: 1,
        },
        // Non-square map, Winograd tile clipping on both axes.
        ConvShape {
            n: 1,
            in_c: 2,
            out_c: 3,
            h: 11,
            w: 9,
            k: 3,
            stride: 1,
            pad: 1,
        },
    ]
}

fn random_shape(rng: &mut ChaCha8Rng) -> ConvShape {
    loop {
        let s = ConvShape {
            n: rng.gen_range(1..=3),
            in_c: rng.gen_range(1..=4),
            out_c: rng.gen_range(1..=5),
            h: rng.gen_range(1..=12),
            w: rng.gen_range(1..=12),
            k: [1usize, 3, 5][rng.gen_range(0..3usize)],
            stride: rng.gen_range(1..=3),
            pad: rng.gen_range(0..=2),
        };
        if s.valid() {
            return s;
        }
    }
}

#[test]
fn all_algorithms_match_reference_on_degenerate_shapes() {
    for (i, s) in degenerate_shapes().into_iter().enumerate() {
        for case in &conformance_table() {
            check_case(case, s, 0xD15C0 + i as u64);
        }
    }
}

#[test]
fn all_algorithms_match_reference_on_random_grid() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC04F);
    for i in 0..24 {
        let s = random_shape(&mut rng);
        for case in &conformance_table() {
            check_case(case, s, 0xA1 + i);
        }
    }
}

/// Output positions whose receptive field contains input `(y0, x0)`.
fn receptive_outputs(s: ConvShape, y0: usize, x0: usize) -> Vec<(usize, usize)> {
    let (out_h, out_w) = s.out_extent();
    let mut hits = Vec::new();
    for oy in 0..out_h {
        for ox in 0..out_w {
            let y_lo = oy * s.stride;
            let x_lo = ox * s.stride;
            // Window rows cover [y_lo - pad, y_lo - pad + k).
            let y_in = (y0 + s.pad) >= y_lo && (y0 + s.pad) < y_lo + s.k;
            let x_in = (x0 + s.pad) >= x_lo && (x0 + s.pad) < x_lo + s.k;
            if y_in && x_in {
                hits.push((oy, ox));
            }
        }
    }
    hits
}

/// Runs the non-finite propagation contract for one poison value.
fn check_poison(poison: f32) {
    let s = ConvShape {
        n: 2,
        in_c: 2,
        out_c: 3,
        h: 8,
        w: 8,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let (y0, x0) = (3, 4);
    for case in &conformance_table() {
        let (mut conv, mut x) = build_layer(s, 0xBAD);
        // Strictly non-zero taps: the direct kernel (and CSR snapshot)
        // skip zero weights, which would mask the poison.
        for wv in conv.weight_mut().value.data_mut() {
            if wv.abs() < 0.05 {
                *wv = 0.05f32.copysign(*wv + 0.01);
            }
        }
        conv.set_format(case.format);
        x.data_mut()[y0 * s.w + x0] = poison;
        let got = conv.forward(&x, Phase::Eval, &exec_cfg(case));
        let (out_h, out_w) = s.out_extent();
        let plane = out_h * out_w;
        // Every output whose receptive field saw the poison must be
        // non-finite — transform algorithms may additionally smear it
        // across their tile/plane, but never less than this.
        for o in 0..s.out_c {
            for &(oy, ox) in &receptive_outputs(s, y0, x0) {
                let v = got.data()[(o * out_h + oy) * out_w + ox];
                assert!(
                    !v.is_finite(),
                    "{}: output ({o},{oy},{ox}) in the receptive field of a \
                     {poison} input stayed finite ({v})",
                    case.name
                );
            }
        }
        // Direct-sum algorithms must confine it to the receptive field.
        let spreads = matches!(
            case.conv_algo,
            ConvAlgorithm::Winograd | ConvAlgorithm::WinogradF4 | ConvAlgorithm::Fft
        );
        if !spreads {
            let hits = receptive_outputs(s, y0, x0);
            for o in 0..s.out_c {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        if hits.contains(&(oy, ox)) {
                            continue;
                        }
                        let v = got.data()[(o * out_h + oy) * out_w + ox];
                        assert!(
                            v.is_finite(),
                            "{}: output ({o},{oy},{ox}) outside the receptive \
                             field went non-finite ({v})",
                            case.name
                        );
                    }
                }
            }
        }
        // No algorithm may smear the poison across batch images.
        for v in &got.data()[plane * s.out_c..] {
            assert!(
                v.is_finite(),
                "{}: poison leaked into a clean batch image",
                case.name
            );
        }
    }
}

#[test]
fn nan_inputs_poison_exactly_their_receptive_fields() {
    check_poison(f32::NAN);
}

#[test]
fn infinite_inputs_poison_their_receptive_fields() {
    check_poison(f32::INFINITY);
}

/// `forward_into` with a NaN-poisoned scratch region of exactly
/// `forward_scratch_elems` floats must reproduce `forward` bit-for-bit:
/// proves the advertised workspace is sufficient and fully initialised
/// before use (the liveness planner hands algorithms recycled arenas).
#[test]
fn advertised_workspace_is_sufficient_and_fully_initialised() {
    let shapes = [
        ConvShape {
            n: 2,
            in_c: 3,
            out_c: 4,
            h: 8,
            w: 8,
            k: 3,
            stride: 1,
            pad: 1,
        },
        ConvShape {
            n: 1,
            in_c: 2,
            out_c: 3,
            h: 11,
            w: 9,
            k: 3,
            stride: 1,
            pad: 1,
        },
        ConvShape {
            n: 1,
            in_c: 2,
            out_c: 2,
            h: 6,
            w: 6,
            k: 5,
            stride: 2,
            pad: 2,
        },
        ConvShape {
            n: 2,
            in_c: 1,
            out_c: 2,
            h: 5,
            w: 5,
            k: 1,
            stride: 1,
            pad: 0,
        },
    ];
    for s in shapes {
        for case in &conformance_table() {
            let (mut conv, x) = build_layer(s, 0x5C4A);
            conv.set_format(case.format);
            let cfg = exec_cfg(case);
            let want = conv.forward(&x, Phase::Eval, &cfg);
            if !Layer::forward_into_supported(&conv, &cfg) {
                continue;
            }
            Layer::prepare(&mut conv, &cfg);
            let shape = [s.n, s.in_c, s.h, s.w];
            let scratch_len = Layer::forward_scratch_elems(&conv, &shape, &cfg);
            let mut scratch = vec![f32::NAN; scratch_len];
            let mut out = vec![f32::NAN; want.len()];
            Layer::forward_into(&conv, x.data(), &shape, &mut out, &mut scratch, &cfg);
            for (i, (g, r)) in out.iter().zip(want.data()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{}: forward_into diverged from forward at {i} for {s:?}",
                    case.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tolerance model, FFT arm: the max-norm relative error against an
    /// f64 reference stays under a budget proportional to log₂ of the
    /// padded plane size (Gentleman–Sande-style growth).
    #[test]
    fn fft_error_grows_at_most_with_log_plane(
        h in 3usize..24, w in 3usize..24,
        in_c in 1usize..4, out_c in 1usize..4,
        k_idx in 0usize..3, pad in 0usize..3, seed in 0u64..64,
    ) {
        let k = [3usize, 5, 7][k_idx];
        let s = ConvShape { n: 1, in_c, out_c, h, w, k, stride: 1, pad };
        prop_assume!(s.valid());
        let (mut conv, x) = build_layer(s, seed);
        let truth = reference_f64(
            x.data(),
            conv.weight().value.data(),
            conv.bias().value.data(),
            s,
        );
        let cfg = ExecConfig { conv_algo: ConvAlgorithm::Fft, ..ExecConfig::serial() };
        let got = conv.forward(&x, Phase::Eval, &cfg);
        let scale = truth.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-6);
        let err = got
            .data()
            .iter()
            .zip(&truth)
            .fold(0.0f64, |m, (g, r)| m.max((f64::from(*g) - r).abs()))
            / scale;
        let budget = 24.0 * (s.fft_plane() as f64).log2().max(1.0) * f64::from(f32::EPSILON);
        prop_assert!(
            err <= budget,
            "fft rel err {err:e} above log-scaled budget {budget:e} for {s:?}",
        );
    }

    /// Tolerance model, Winograd F(4×4) arm: the absolute error is
    /// bounded by (conditioning constant) × (input magnitude) — i.e.
    /// the *relative* error stays flat as the input scale sweeps three
    /// orders of magnitude, because the transforms are linear.
    #[test]
    fn winograd4_error_is_linear_in_magnitude(
        h in 4usize..16, w in 4usize..16,
        in_c in 1usize..4, out_c in 1usize..4,
        pad in 0usize..2, seed in 0u64..64,
    ) {
        const CONDITIONING: f64 = 2048.0;
        let s = ConvShape { n: 1, in_c, out_c, h, w, k: 3, stride: 1, pad };
        prop_assume!(s.valid());
        for magnitude in [1.0f32, 64.0, 4096.0] {
            let (mut conv, x) = build_layer(s, seed);
            let x = Tensor::from_fn(x.shape().dims(), |i| x.data()[i] * magnitude);
            let truth = reference_f64(
                x.data(),
                conv.weight().value.data(),
                conv.bias().value.data(),
                s,
            );
            let cfg = ExecConfig {
                conv_algo: ConvAlgorithm::WinogradF4,
                ..ExecConfig::serial()
            };
            let got = conv.forward(&x, Phase::Eval, &cfg);
            let scale = truth.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-6);
            let err = got
                .data()
                .iter()
                .zip(&truth)
                .fold(0.0f64, |m, (g, r)| m.max((f64::from(*g) - r).abs()))
                / scale;
            let budget = CONDITIONING * f64::from(f32::EPSILON);
            prop_assert!(
                err <= budget,
                "winograd-f4 rel err {err:e} above conditioning budget {budget:e} \
                 at magnitude {magnitude} for {s:?}",
            );
        }
    }

    /// Degenerate-shape sweep for every algorithm: randomized members
    /// of the degenerate families (1×1 maps, single channels,
    /// stride > kernel) stay within each algorithm's budget.
    #[test]
    fn degenerate_families_hold_for_every_algorithm(
        family in 0usize..3, extent in 1usize..7,
        channels in 1usize..4, seed in 0u64..64,
    ) {
        let s = match family {
            // 1×1 pointwise over an arbitrary map.
            0 => ConvShape {
                n: 1, in_c: channels, out_c: channels,
                h: extent, w: extent, k: 1, stride: 1, pad: 0,
            },
            // Single channel in and out.
            1 => ConvShape {
                n: 2, in_c: 1, out_c: 1,
                h: extent + 2, w: extent + 2, k: 3, stride: 1, pad: 1,
            },
            // Stride strictly larger than the kernel.
            _ => ConvShape {
                n: 1, in_c: channels, out_c: 2,
                h: extent + 3, w: extent + 3, k: 1, stride: 3, pad: 0,
            },
        };
        prop_assume!(s.valid());
        for case in &conformance_table() {
            check_case(case, s, seed);
        }
    }
}
