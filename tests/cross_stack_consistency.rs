//! Cross-crate consistency: every configuration of the stack's format /
//! algorithm / threading layers must compute the *same function* — only
//! the cost may change.

use cnn_stack::models::ModelKind;
use cnn_stack::nn::network::set_network_format;
use cnn_stack::nn::{ConvAlgorithm, ExecConfig, Phase, WeightFormat};
use cnn_stack::stack::{evaluate, materialise, CompressionChoice, PlatformChoice, StackConfig};
use cnn_stack::tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_input(seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::from_fn([2, 3, 32, 32], |_| rng.gen_range(-1.0..1.0))
}

#[test]
fn all_execution_paths_agree_for_every_model() {
    let input = random_input(1);
    for kind in ModelKind::all() {
        let mut model = kind.build_width(10, 0.1);
        // Introduce genuine sparsity so CSR differs structurally.
        cnn_stack::compress::magnitude::prune_network(&mut model.network, 0.5);
        let reference = model
            .network
            .forward(&input, Phase::Eval, &ExecConfig::serial());
        for format in [WeightFormat::Dense, WeightFormat::Csr] {
            set_network_format(&mut model.network, format);
            for algo in [ConvAlgorithm::Direct, ConvAlgorithm::Im2col] {
                for threads in [1usize, 3, 4] {
                    let exec = ExecConfig {
                        threads,
                        conv_algo: algo,
                        ..ExecConfig::serial()
                    };
                    let out = model.network.forward(&input, Phase::Eval, &exec);
                    assert!(
                        reference.allclose(&out, 1e-3),
                        "{kind} diverged: {format:?}/{algo:?}/{threads} threads"
                    );
                }
            }
        }
        set_network_format(&mut model.network, WeightFormat::Dense);
    }
}

#[test]
fn every_stack_cell_materialises_and_evaluates() {
    // The full Fig. 4 grid (at the Table III points) materialises,
    // evaluates and produces sane numbers.
    for kind in ModelKind::all() {
        for platform in PlatformChoice::all() {
            for choice in [
                CompressionChoice::Plain,
                CompressionChoice::WeightPruning { sparsity_pct: 60.0 },
                CompressionChoice::ChannelPruning {
                    compression_pct: 50.0,
                },
                CompressionChoice::TernaryQuantisation { threshold: 0.09 },
            ] {
                let cfg = StackConfig::plain(kind, platform)
                    .compress(choice)
                    .threads(2);
                let cell = evaluate(&cfg);
                assert!(
                    cell.modelled_s > 0.0 && cell.modelled_s < 60.0,
                    "{kind} {choice:?} on {platform:?}: time {}",
                    cell.modelled_s
                );
                assert!(cell.memory_mb > 0.1 && cell.memory_mb < 1000.0);
                assert!(cell.accuracy_pct > 9.0 && cell.accuracy_pct <= 100.0);
                assert!(cell.effective_macs <= cell.macs);
            }
        }
    }
}

#[test]
fn materialised_networks_run_at_small_width() {
    let input = random_input(2);
    for kind in ModelKind::all() {
        for choice in [
            CompressionChoice::WeightPruning { sparsity_pct: 75.0 },
            CompressionChoice::ChannelPruning {
                compression_pct: 40.0,
            },
            CompressionChoice::TernaryQuantisation { threshold: 0.1 },
        ] {
            let cfg = StackConfig::plain(kind, PlatformChoice::OdroidXu4).compress(choice);
            let mut model = materialise(&cfg, 0.1);
            let out = model
                .network
                .forward(&input, Phase::Eval, &ExecConfig::default());
            assert_eq!(out.shape().dims(), &[2, 10], "{kind} {choice:?}");
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "{kind} {choice:?}"
            );
        }
    }
}

#[test]
fn simulated_opencl_device_matches_cpu_network_layer() {
    // The OpenCL simulation is functionally exact: a conv layer run on
    // the simulated Mali equals the nn layer's output.
    use cnn_stack::hwsim::{odroid_xu4, OclDevice};
    use cnn_stack::nn::{Conv2d, Layer};

    let mut conv = Conv2d::new(3, 8, 3, 1, 1, 99);
    let input = random_input(3);
    let cpu_out = conv.forward(&input, Phase::Eval, &ExecConfig::serial());

    let gpu = odroid_xu4().gpu.expect("odroid has a gpu");
    let mut dev = OclDevice::new(gpu);
    let geom = conv.geometry(32, 32);
    // Per image: the device convolves one c*h*w buffer at a time.
    for img in 0..2 {
        let image = &input.data()[img * 3 * 1024..(img + 1) * 3 * 1024];
        let run = dev.run_conv2d(image, &conv.weight_matrix(), &geom, (4, 4), 16);
        let cpu_img = &cpu_out.data()[img * 8 * 1024..(img + 1) * 8 * 1024];
        for (a, b) in run.output.data().iter().zip(cpu_img) {
            assert!((a - b).abs() < 1e-3, "device/CPU divergence");
        }
    }
}

#[test]
fn batchnorm_folding_preserves_every_model() {
    use cnn_stack::nn::{fold_batchnorm, strip_identity_batchnorms};
    let input = random_input(7);
    for kind in ModelKind::all() {
        let mut model = kind.build_width(10, 0.1);
        // Give the running statistics some life first.
        for seed in 0..2 {
            let x = random_input(50 + seed);
            let _ = model
                .network
                .forward(&x, Phase::Train, &ExecConfig::serial());
        }
        let before = model
            .network
            .forward(&input, Phase::Eval, &ExecConfig::serial());
        let folded = fold_batchnorm(&mut model.network);
        assert!(folded > 10, "{kind}: folded only {folded}");
        let stripped = strip_identity_batchnorms(&mut model.network);
        let after = model
            .network
            .forward(&input, Phase::Eval, &ExecConfig::serial());
        assert!(
            before.allclose(&after, 1e-2),
            "{kind}: folding changed outputs (folded {folded}, stripped {stripped})"
        );
    }
}

#[test]
fn serialisation_roundtrips_every_model() {
    use cnn_stack::nn::{load_params, save_params};
    let input = random_input(8);
    for kind in ModelKind::all() {
        let mut src = kind.build_width(10, 0.1);
        cnn_stack::compress::magnitude::prune_network(&mut src.network, 0.5);
        let want = src
            .network
            .forward(&input, Phase::Eval, &ExecConfig::serial());
        let blob = save_params(&mut src.network);
        let mut dst = kind.build_width(10, 0.1);
        load_params(&mut dst.network, &blob).expect("same architecture");
        let got = dst
            .network
            .forward(&input, Phase::Eval, &ExecConfig::serial());
        assert!(want.allclose(&got, 0.0), "{kind}: blob roundtrip diverged");
        // Pruning masks came along: fine-tuning cannot revive zeros.
        let sparsity = dst.network.weight_sparsity(&[1, 3, 32, 32]);
        assert!(sparsity > 0.4, "{kind}: masks lost ({sparsity})");
    }
}
