//! Channel-pruning plans: which channels of a network are structurally
//! removable, and what surgery removing one entails.

use cnn_stack_nn::{BatchNorm2d, Conv2d, DepthwiseConv2d, Layer, Linear, Network, ResidualBlock};

/// One group of jointly prunable channels and its consumers.
///
/// A "group" is a producer convolution whose output channels can be
/// removed; the variants encode everything downstream that must shrink in
/// lock-step so the network stays shape-consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneGroup {
    /// `conv → bn → … → next_conv` (the VGG pattern).
    ConvToConv {
        /// Producer `Conv2d` layer index in the [`Network`].
        conv: usize,
        /// Its `BatchNorm2d` index (saliency source).
        bn: usize,
        /// Consumer `Conv2d` whose input channel is removed.
        next_conv: usize,
    },
    /// `conv → bn → … → dw → dw_bn → … → next_conv` (the MobileNet
    /// pattern: a depthwise stage sits between producer and the next
    /// pointwise convolution and must lose the same channel).
    ConvToDepthwise {
        /// Producer `Conv2d` index.
        conv: usize,
        /// Producer's `BatchNorm2d` index.
        bn: usize,
        /// Intermediate `DepthwiseConv2d` index.
        dw: usize,
        /// Depthwise stage's `BatchNorm2d` index.
        dw_bn: usize,
        /// Consumer pointwise `Conv2d` index.
        next_conv: usize,
    },
    /// `conv → bn → … → (flatten/GAP) → linear` (the final feature
    /// convolution feeding the classifier). `positions` is the number of
    /// flattened features each channel contributes (spatial extent at the
    /// flatten point; 1 after global average pooling).
    ConvToLinear {
        /// Producer `Conv2d` index.
        conv: usize,
        /// Producer's `BatchNorm2d` index.
        bn: usize,
        /// Consumer `Linear` index.
        linear: usize,
        /// Flattened features per channel.
        positions: usize,
    },
    /// The inner channel of a residual block — the only channel ResNet can
    /// prune without breaking the shortcut (§V-B.2).
    ResidualInner {
        /// `ResidualBlock` layer index.
        block: usize,
    },
}

/// The complete channel-pruning plan for a model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PruningPlan {
    groups: Vec<PruneGroup>,
}

impl PruningPlan {
    /// Creates a plan from an ordered group list.
    pub fn new(groups: Vec<PruneGroup>) -> Self {
        PruningPlan { groups }
    }

    /// The groups.
    pub fn groups(&self) -> &[PruneGroup] {
        &self.groups
    }

    /// Number of prunable groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Channels currently alive in group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range or the plan does not match the
    /// network's layer types.
    pub fn channels(&self, net: &Network, g: usize) -> usize {
        match self.groups[g] {
            PruneGroup::ConvToConv { conv, .. }
            | PruneGroup::ConvToDepthwise { conv, .. }
            | PruneGroup::ConvToLinear { conv, .. } => as_conv(net, conv).out_channels(),
            PruneGroup::ResidualInner { block } => as_block(net, block).inner_channels(),
        }
    }

    /// Total prunable channels across all groups.
    pub fn total_channels(&self, net: &Network) -> usize {
        (0..self.group_count()).map(|g| self.channels(net, g)).sum()
    }

    /// Whether group `g` can still lose a channel (surgery requires at
    /// least two alive).
    pub fn can_prune(&self, net: &Network, g: usize) -> bool {
        self.channels(net, g) > 1
    }

    /// Removes channel `c` of group `g`, performing all consumer surgery.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, the group has only one channel
    /// left, or the plan does not match the network.
    pub fn prune(&self, net: &mut Network, g: usize, c: usize) {
        match self.groups[g] {
            PruneGroup::ConvToConv {
                conv,
                bn,
                next_conv,
            } => {
                as_conv_mut(net, conv).remove_out_channel(c);
                as_bn_mut(net, bn).remove_channel(c);
                as_conv_mut(net, next_conv).remove_in_channel(c);
            }
            PruneGroup::ConvToDepthwise {
                conv,
                bn,
                dw,
                dw_bn,
                next_conv,
            } => {
                as_conv_mut(net, conv).remove_out_channel(c);
                as_bn_mut(net, bn).remove_channel(c);
                as_dw_mut(net, dw).remove_channel(c);
                as_bn_mut(net, dw_bn).remove_channel(c);
                as_conv_mut(net, next_conv).remove_in_channel(c);
            }
            PruneGroup::ConvToLinear {
                conv,
                bn,
                linear,
                positions,
            } => {
                as_conv_mut(net, conv).remove_out_channel(c);
                as_bn_mut(net, bn).remove_channel(c);
                as_linear_mut(net, linear).remove_in_features(c * positions, positions);
            }
            PruneGroup::ResidualInner { block } => {
                as_block_mut(net, block).prune_inner_channel(c);
            }
        }
    }

    /// Per-channel batch-norm scale gradients (`dL/dγ_c`) for group `g` —
    /// the signal Fisher pruning squares and accumulates.
    ///
    /// # Panics
    ///
    /// Panics if indices or layer types do not match.
    pub fn gamma_grad(&self, net: &mut Network, g: usize) -> Vec<f32> {
        match self.groups[g] {
            PruneGroup::ConvToConv { bn, .. }
            | PruneGroup::ConvToDepthwise { bn, .. }
            | PruneGroup::ConvToLinear { bn, .. } => {
                as_bn_mut(net, bn).gamma().grad.data().to_vec()
            }
            PruneGroup::ResidualInner { block } => as_block_mut(net, block)
                .bn1_mut()
                .gamma()
                .grad
                .data()
                .to_vec(),
        }
    }

    /// Marginal dense FLOPs (MACs) saved by removing one channel of each
    /// group, at a given network input shape. This is the paper's FLOP
    /// penalty term ("a penalty is placed on each channel scaled by the
    /// number of floating point operations it requires", §V-B.2).
    pub fn flops_per_channel(&self, net: &Network, input_shape: &[usize]) -> Vec<u64> {
        // Walk top-level layer input shapes.
        let mut shapes = Vec::with_capacity(net.len() + 1);
        let mut shape = input_shape.to_vec();
        for i in 0..net.len() {
            shapes.push(shape.clone());
            shape = net.layers()[i].descriptor(&shape).output_shape;
        }
        shapes.push(shape);

        self.groups
            .iter()
            .map(|group| match *group {
                PruneGroup::ConvToConv {
                    conv, next_conv, ..
                } => {
                    let d1 = net.layers()[conv].descriptor(&shapes[conv]);
                    let d2 = net.layers()[next_conv].descriptor(&shapes[next_conv]);
                    let out_c = as_conv(net, conv).out_channels() as u64;
                    let in_c = as_conv(net, next_conv).in_channels() as u64;
                    d1.macs / out_c + d2.macs / in_c
                }
                PruneGroup::ConvToDepthwise {
                    conv,
                    dw,
                    next_conv,
                    ..
                } => {
                    let d1 = net.layers()[conv].descriptor(&shapes[conv]);
                    let ddw = net.layers()[dw].descriptor(&shapes[dw]);
                    let d2 = net.layers()[next_conv].descriptor(&shapes[next_conv]);
                    let out_c = as_conv(net, conv).out_channels() as u64;
                    let dw_c = as_dw(net, dw).channels() as u64;
                    let in_c = as_conv(net, next_conv).in_channels() as u64;
                    d1.macs / out_c + ddw.macs / dw_c + d2.macs / in_c
                }
                PruneGroup::ConvToLinear {
                    conv,
                    linear,
                    positions,
                    ..
                } => {
                    let d1 = net.layers()[conv].descriptor(&shapes[conv]);
                    let out_c = as_conv(net, conv).out_channels() as u64;
                    let fc = as_linear(net, linear);
                    d1.macs / out_c + (positions * fc.out_features()) as u64
                }
                PruneGroup::ResidualInner { block } => {
                    let b = as_block(net, block);
                    let d1 = b.conv1().descriptor(&shapes[block]);
                    let shape_mid = d1.output_shape.clone();
                    let d2 = b.conv2().descriptor(&shape_mid);
                    d1.macs / b.conv1().out_channels() as u64
                        + d2.macs / b.conv2().in_channels() as u64
                }
            })
            .collect()
    }
}

fn as_conv(net: &Network, idx: usize) -> &Conv2d {
    net.layers()[idx]
        .as_any()
        .downcast_ref::<Conv2d>()
        .unwrap_or_else(|| panic!("layer {idx} is not a Conv2d"))
}

fn as_conv_mut(net: &mut Network, idx: usize) -> &mut Conv2d {
    net.layers_mut()[idx]
        .as_any_mut()
        .downcast_mut::<Conv2d>()
        .unwrap_or_else(|| panic!("layer {idx} is not a Conv2d"))
}

fn as_bn_mut(net: &mut Network, idx: usize) -> &mut BatchNorm2d {
    net.layers_mut()[idx]
        .as_any_mut()
        .downcast_mut::<BatchNorm2d>()
        .unwrap_or_else(|| panic!("layer {idx} is not a BatchNorm2d"))
}

fn as_dw(net: &Network, idx: usize) -> &DepthwiseConv2d {
    net.layers()[idx]
        .as_any()
        .downcast_ref::<DepthwiseConv2d>()
        .unwrap_or_else(|| panic!("layer {idx} is not a DepthwiseConv2d"))
}

fn as_dw_mut(net: &mut Network, idx: usize) -> &mut DepthwiseConv2d {
    net.layers_mut()[idx]
        .as_any_mut()
        .downcast_mut::<DepthwiseConv2d>()
        .unwrap_or_else(|| panic!("layer {idx} is not a DepthwiseConv2d"))
}

fn as_linear(net: &Network, idx: usize) -> &Linear {
    net.layers()[idx]
        .as_any()
        .downcast_ref::<Linear>()
        .unwrap_or_else(|| panic!("layer {idx} is not a Linear"))
}

fn as_linear_mut(net: &mut Network, idx: usize) -> &mut Linear {
    net.layers_mut()[idx]
        .as_any_mut()
        .downcast_mut::<Linear>()
        .unwrap_or_else(|| panic!("layer {idx} is not a Linear"))
}

fn as_block(net: &Network, idx: usize) -> &ResidualBlock {
    net.layers()[idx]
        .as_any()
        .downcast_ref::<ResidualBlock>()
        .unwrap_or_else(|| panic!("layer {idx} is not a ResidualBlock"))
}

fn as_block_mut(net: &mut Network, idx: usize) -> &mut ResidualBlock {
    net.layers_mut()[idx]
        .as_any_mut()
        .downcast_mut::<ResidualBlock>()
        .unwrap_or_else(|| panic!("layer {idx} is not a ResidualBlock"))
}

#[cfg(test)]
mod tests {
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn vgg_style_prune_keeps_network_runnable() {
        let mut model = crate::vgg16_width(10, 0.1);
        let g = 0;
        let before = model.plan.channels(&model.network, g);
        model.plan.prune(&mut model.network, g, 0);
        assert_eq!(model.plan.channels(&model.network, g), before - 1);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn mobilenet_prune_keeps_network_runnable() {
        let mut model = crate::mobilenet_width(10, 0.1);
        for g in 0..model.plan.group_count() {
            if model.plan.can_prune(&model.network, g) {
                model.plan.prune(&mut model.network, g, 0);
            }
        }
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn resnet_prune_keeps_network_runnable() {
        let mut model = crate::resnet18_width(10, 0.1);
        let g = model.plan.group_count() - 1;
        model.plan.prune(&mut model.network, g, 1);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn pruning_reduces_macs() {
        let mut model = crate::vgg16_width(10, 0.1);
        let shape = [1usize, 3, 32, 32];
        let before = model.network.macs(&shape);
        model.plan.prune(&mut model.network, 2, 0);
        let after = model.network.macs(&shape);
        assert!(after < before);
    }

    #[test]
    fn flops_per_channel_matches_mac_delta() {
        let mut model = crate::vgg16_width(10, 0.2);
        let shape = [1usize, 3, 32, 32];
        let per = model.plan.flops_per_channel(&model.network, &shape);
        let g = 1;
        let before = model.network.macs(&shape);
        model.plan.prune(&mut model.network, g, 0);
        let after = model.network.macs(&shape);
        let delta = before - after;
        // The plan estimates the *convolution* MAC savings; the true delta
        // additionally includes the pruned batch-norm/activation work, so
        // allow a small relative gap.
        let rel = (delta as f64 - per[g] as f64).abs() / delta as f64;
        assert!(
            rel < 0.02,
            "delta {delta} vs estimate {} (rel {rel})",
            per[g]
        );
    }

    #[test]
    fn gamma_grad_length_matches_channels() {
        let mut model = crate::resnet18_width(10, 0.1);
        // Produce some gradients.
        let x = Tensor::zeros([2, 3, 32, 32]);
        let cfg = ExecConfig::default();
        let y = model.network.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        model.network.backward(&ones);
        for g in 0..model.plan.group_count() {
            let grads = model.plan.gamma_grad(&mut model.network, g);
            assert_eq!(grads.len(), model.plan.channels(&model.network, g));
        }
    }
}
