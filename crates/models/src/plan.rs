//! Channel-pruning plans: which channels of a network are structurally
//! removable, and what surgery removing one entails.

use cnn_stack_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Error, Layer, Linear, Network, ResidualBlock,
};

/// One group of jointly prunable channels and its consumers.
///
/// A "group" is a producer convolution whose output channels can be
/// removed; the variants encode everything downstream that must shrink in
/// lock-step so the network stays shape-consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneGroup {
    /// `conv → bn → … → next_conv` (the VGG pattern).
    ConvToConv {
        /// Producer `Conv2d` layer index in the [`Network`].
        conv: usize,
        /// Its `BatchNorm2d` index (saliency source).
        bn: usize,
        /// Consumer `Conv2d` whose input channel is removed.
        next_conv: usize,
    },
    /// `conv → bn → … → dw → dw_bn → … → next_conv` (the MobileNet
    /// pattern: a depthwise stage sits between producer and the next
    /// pointwise convolution and must lose the same channel).
    ConvToDepthwise {
        /// Producer `Conv2d` index.
        conv: usize,
        /// Producer's `BatchNorm2d` index.
        bn: usize,
        /// Intermediate `DepthwiseConv2d` index.
        dw: usize,
        /// Depthwise stage's `BatchNorm2d` index.
        dw_bn: usize,
        /// Consumer pointwise `Conv2d` index.
        next_conv: usize,
    },
    /// `conv → bn → … → (flatten/GAP) → linear` (the final feature
    /// convolution feeding the classifier). `positions` is the number of
    /// flattened features each channel contributes (spatial extent at the
    /// flatten point; 1 after global average pooling).
    ConvToLinear {
        /// Producer `Conv2d` index.
        conv: usize,
        /// Producer's `BatchNorm2d` index.
        bn: usize,
        /// Consumer `Linear` index.
        linear: usize,
        /// Flattened features per channel.
        positions: usize,
    },
    /// The inner channel of a residual block — the only channel ResNet can
    /// prune without breaking the shortcut (§V-B.2).
    ResidualInner {
        /// `ResidualBlock` layer index.
        block: usize,
    },
}

/// The complete channel-pruning plan for a model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PruningPlan {
    groups: Vec<PruneGroup>,
}

impl PruningPlan {
    /// Creates a plan from an ordered group list.
    pub fn new(groups: Vec<PruneGroup>) -> Self {
        PruningPlan { groups }
    }

    /// The groups.
    pub fn groups(&self) -> &[PruneGroup] {
        &self.groups
    }

    /// Number of prunable groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Group `g`, or [`Error::IndexOutOfRange`] past the end.
    fn group(&self, g: usize) -> Result<PruneGroup, Error> {
        self.groups.get(g).copied().ok_or(Error::IndexOutOfRange {
            index: g,
            len: self.groups.len(),
        })
    }

    /// Channels currently alive in group `g`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if `g` is out of range, or
    /// [`Error::InvalidConfig`] if the plan does not match the network's
    /// layer types.
    pub fn try_channels(&self, net: &Network, g: usize) -> Result<usize, Error> {
        Ok(match self.group(g)? {
            PruneGroup::ConvToConv { conv, .. }
            | PruneGroup::ConvToDepthwise { conv, .. }
            | PruneGroup::ConvToLinear { conv, .. } => try_conv(net, conv)?.out_channels(),
            PruneGroup::ResidualInner { block } => try_block(net, block)?.inner_channels(),
        })
    }

    /// Channels currently alive in group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range or the plan does not match the
    /// network's layer types; [`try_channels`](Self::try_channels) is the
    /// fallible equivalent.
    pub fn channels(&self, net: &Network, g: usize) -> usize {
        self.try_channels(net, g)
            .expect("pruning plan matches the network")
    }

    /// Total prunable channels across all groups.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the plan does not match the
    /// network's layer types.
    pub fn try_total_channels(&self, net: &Network) -> Result<usize, Error> {
        let mut total = 0;
        for g in 0..self.group_count() {
            total += self.try_channels(net, g)?;
        }
        Ok(total)
    }

    /// Total prunable channels across all groups (panicking shim over
    /// [`try_total_channels`](Self::try_total_channels)).
    pub fn total_channels(&self, net: &Network) -> usize {
        self.try_total_channels(net)
            .expect("pruning plan matches the network")
    }

    /// Whether group `g` can still lose a channel (surgery requires at
    /// least two alive).
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_channels`](Self::try_channels).
    pub fn try_can_prune(&self, net: &Network, g: usize) -> Result<bool, Error> {
        Ok(self.try_channels(net, g)? > 1)
    }

    /// Whether group `g` can still lose a channel (panicking shim over
    /// [`try_can_prune`](Self::try_can_prune)).
    pub fn can_prune(&self, net: &Network, g: usize) -> bool {
        self.try_can_prune(net, g)
            .expect("pruning plan matches the network")
    }

    /// Removes channel `c` of group `g`, performing all consumer surgery.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if `g` is out of range,
    /// [`Error::InvalidConfig`] if `c` is out of range, the group has
    /// only one channel left, or the plan does not match the network's
    /// layer types. The network is unmodified on error.
    pub fn try_prune(&self, net: &mut Network, g: usize, c: usize) -> Result<(), Error> {
        let alive = self.try_channels(net, g)?;
        if alive <= 1 {
            return Err(Error::InvalidConfig(format!(
                "group {g} has only one channel left; it cannot be pruned"
            )));
        }
        if c >= alive {
            return Err(Error::InvalidConfig(format!(
                "channel {c} out of range for group {g} with {alive} channels"
            )));
        }
        match self.group(g)? {
            PruneGroup::ConvToConv {
                conv,
                bn,
                next_conv,
            } => {
                // Validate every consumer downcast before any surgery so
                // a mismatched plan cannot leave the network half-pruned.
                try_bn(net, bn)?;
                try_conv(net, next_conv)?;
                try_conv_mut(net, conv)?.remove_out_channel(c);
                try_bn_mut(net, bn)?.remove_channel(c);
                try_conv_mut(net, next_conv)?.remove_in_channel(c);
            }
            PruneGroup::ConvToDepthwise {
                conv,
                bn,
                dw,
                dw_bn,
                next_conv,
            } => {
                try_bn(net, bn)?;
                try_dw(net, dw)?;
                try_bn(net, dw_bn)?;
                try_conv(net, next_conv)?;
                try_conv_mut(net, conv)?.remove_out_channel(c);
                try_bn_mut(net, bn)?.remove_channel(c);
                try_dw_mut(net, dw)?.remove_channel(c);
                try_bn_mut(net, dw_bn)?.remove_channel(c);
                try_conv_mut(net, next_conv)?.remove_in_channel(c);
            }
            PruneGroup::ConvToLinear {
                conv,
                bn,
                linear,
                positions,
            } => {
                try_bn(net, bn)?;
                try_linear(net, linear)?;
                try_conv_mut(net, conv)?.remove_out_channel(c);
                try_bn_mut(net, bn)?.remove_channel(c);
                try_linear_mut(net, linear)?.remove_in_features(c * positions, positions);
            }
            PruneGroup::ResidualInner { block } => {
                try_block_mut(net, block)?.prune_inner_channel(c);
            }
        }
        Ok(())
    }

    /// Removes channel `c` of group `g` (panicking shim over
    /// [`try_prune`](Self::try_prune)).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range, the group has only one channel
    /// left, or the plan does not match the network.
    pub fn prune(&self, net: &mut Network, g: usize, c: usize) {
        self.try_prune(net, g, c)
            .expect("pruning plan matches the network");
    }

    /// Per-channel batch-norm scale gradients (`dL/dγ_c`) for group `g` —
    /// the signal Fisher pruning squares and accumulates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if `g` is out of range, or
    /// [`Error::InvalidConfig`] if layer types do not match.
    pub fn try_gamma_grad(&self, net: &mut Network, g: usize) -> Result<Vec<f32>, Error> {
        Ok(match self.group(g)? {
            PruneGroup::ConvToConv { bn, .. }
            | PruneGroup::ConvToDepthwise { bn, .. }
            | PruneGroup::ConvToLinear { bn, .. } => {
                try_bn_mut(net, bn)?.gamma().grad.data().to_vec()
            }
            PruneGroup::ResidualInner { block } => try_block_mut(net, block)?
                .bn1_mut()
                .gamma()
                .grad
                .data()
                .to_vec(),
        })
    }

    /// Per-channel batch-norm scale gradients (panicking shim over
    /// [`try_gamma_grad`](Self::try_gamma_grad)).
    pub fn gamma_grad(&self, net: &mut Network, g: usize) -> Vec<f32> {
        self.try_gamma_grad(net, g)
            .expect("pruning plan matches the network")
    }

    /// Marginal dense FLOPs (MACs) saved by removing one channel of each
    /// group, at a given network input shape. This is the paper's FLOP
    /// penalty term ("a penalty is placed on each channel scaled by the
    /// number of floating point operations it requires", §V-B.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] or [`Error::InvalidConfig`] if
    /// the plan does not match the network.
    pub fn try_flops_per_channel(
        &self,
        net: &Network,
        input_shape: &[usize],
    ) -> Result<Vec<u64>, Error> {
        // Walk top-level layer input shapes.
        let mut shapes = Vec::with_capacity(net.len() + 1);
        let mut shape = input_shape.to_vec();
        for i in 0..net.len() {
            shapes.push(shape.clone());
            shape = net.layer(i)?.descriptor(&shape).output_shape;
        }
        shapes.push(shape);

        let mut flops = Vec::with_capacity(self.groups.len());
        for group in &self.groups {
            flops.push(match *group {
                PruneGroup::ConvToConv {
                    conv, next_conv, ..
                } => {
                    let d1 = net.layer(conv)?.descriptor(&shapes[conv]);
                    let d2 = net.layer(next_conv)?.descriptor(&shapes[next_conv]);
                    let out_c = try_conv(net, conv)?.out_channels() as u64;
                    let in_c = try_conv(net, next_conv)?.in_channels() as u64;
                    d1.macs / out_c + d2.macs / in_c
                }
                PruneGroup::ConvToDepthwise {
                    conv,
                    dw,
                    next_conv,
                    ..
                } => {
                    let d1 = net.layer(conv)?.descriptor(&shapes[conv]);
                    let ddw = net.layer(dw)?.descriptor(&shapes[dw]);
                    let d2 = net.layer(next_conv)?.descriptor(&shapes[next_conv]);
                    let out_c = try_conv(net, conv)?.out_channels() as u64;
                    let dw_c = try_dw(net, dw)?.channels() as u64;
                    let in_c = try_conv(net, next_conv)?.in_channels() as u64;
                    d1.macs / out_c + ddw.macs / dw_c + d2.macs / in_c
                }
                PruneGroup::ConvToLinear {
                    conv,
                    linear,
                    positions,
                    ..
                } => {
                    let d1 = net.layer(conv)?.descriptor(&shapes[conv]);
                    let out_c = try_conv(net, conv)?.out_channels() as u64;
                    let fc = try_linear(net, linear)?;
                    d1.macs / out_c + (positions * fc.out_features()) as u64
                }
                PruneGroup::ResidualInner { block } => {
                    let b = try_block(net, block)?;
                    let d1 = b.conv1().descriptor(&shapes[block]);
                    let shape_mid = d1.output_shape.clone();
                    let d2 = b.conv2().descriptor(&shape_mid);
                    d1.macs / b.conv1().out_channels() as u64
                        + d2.macs / b.conv2().in_channels() as u64
                }
            });
        }
        Ok(flops)
    }

    /// Marginal dense FLOPs per channel (panicking shim over
    /// [`try_flops_per_channel`](Self::try_flops_per_channel)).
    pub fn flops_per_channel(&self, net: &Network, input_shape: &[usize]) -> Vec<u64> {
        self.try_flops_per_channel(net, input_shape)
            .expect("pruning plan matches the network")
    }
}

/// Generates the fallible shared/mutable downcast helper pair used by the
/// plan. Out-of-range indices surface as [`Error::IndexOutOfRange`] (from
/// `Network::layer`/`layer_mut`), mismatched layer types as
/// [`Error::InvalidConfig`].
macro_rules! try_downcast {
    ($shared:ident, $muta:ident, $ty:ty, $what:literal) => {
        fn $shared(net: &Network, idx: usize) -> Result<&$ty, Error> {
            net.layer(idx)?
                .as_any()
                .downcast_ref::<$ty>()
                .ok_or_else(|| {
                    Error::InvalidConfig(format!(concat!("layer {} is not a ", $what), idx))
                })
        }

        fn $muta(net: &mut Network, idx: usize) -> Result<&mut $ty, Error> {
            net.layer_mut(idx)?
                .as_any_mut()
                .downcast_mut::<$ty>()
                .ok_or_else(|| {
                    Error::InvalidConfig(format!(concat!("layer {} is not a ", $what), idx))
                })
        }
    };
}

try_downcast!(try_conv, try_conv_mut, Conv2d, "Conv2d");
try_downcast!(try_bn, try_bn_mut, BatchNorm2d, "BatchNorm2d");
try_downcast!(try_dw, try_dw_mut, DepthwiseConv2d, "DepthwiseConv2d");
try_downcast!(try_linear, try_linear_mut, Linear, "Linear");
try_downcast!(try_block, try_block_mut, ResidualBlock, "ResidualBlock");

#[cfg(test)]
mod tests {
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn vgg_style_prune_keeps_network_runnable() {
        let mut model = crate::vgg16_width(10, 0.1);
        let g = 0;
        let before = model.plan.channels(&model.network, g);
        model.plan.prune(&mut model.network, g, 0);
        assert_eq!(model.plan.channels(&model.network, g), before - 1);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn mobilenet_prune_keeps_network_runnable() {
        let mut model = crate::mobilenet_width(10, 0.1);
        for g in 0..model.plan.group_count() {
            if model.plan.can_prune(&model.network, g) {
                model.plan.prune(&mut model.network, g, 0);
            }
        }
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn resnet_prune_keeps_network_runnable() {
        let mut model = crate::resnet18_width(10, 0.1);
        let g = model.plan.group_count() - 1;
        model.plan.prune(&mut model.network, g, 1);
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn pruning_reduces_macs() {
        let mut model = crate::vgg16_width(10, 0.1);
        let shape = [1usize, 3, 32, 32];
        let before = model.network.macs(&shape);
        model.plan.prune(&mut model.network, 2, 0);
        let after = model.network.macs(&shape);
        assert!(after < before);
    }

    #[test]
    fn flops_per_channel_matches_mac_delta() {
        let mut model = crate::vgg16_width(10, 0.2);
        let shape = [1usize, 3, 32, 32];
        let per = model.plan.flops_per_channel(&model.network, &shape);
        let g = 1;
        let before = model.network.macs(&shape);
        model.plan.prune(&mut model.network, g, 0);
        let after = model.network.macs(&shape);
        let delta = before - after;
        // The plan estimates the *convolution* MAC savings; the true delta
        // additionally includes the pruned batch-norm/activation work, so
        // allow a small relative gap.
        let rel = (delta as f64 - per[g] as f64).abs() / delta as f64;
        assert!(
            rel < 0.02,
            "delta {delta} vs estimate {} (rel {rel})",
            per[g]
        );
    }

    #[test]
    fn gamma_grad_length_matches_channels() {
        let mut model = crate::resnet18_width(10, 0.1);
        // Produce some gradients.
        let x = Tensor::zeros([2, 3, 32, 32]);
        let cfg = ExecConfig::default();
        let y = model.network.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        model.network.backward(&ones);
        for g in 0..model.plan.group_count() {
            let grads = model.plan.gamma_grad(&mut model.network, g);
            assert_eq!(grads.len(), model.plan.channels(&model.network, g));
        }
    }

    #[test]
    fn try_apis_reject_bad_indices_without_mutating() {
        let mut model = crate::vgg16_width(10, 0.25);
        let groups = model.plan.group_count();

        // Group index out of range.
        assert!(matches!(
            model.plan.try_channels(&model.network, groups),
            Err(cnn_stack_nn::Error::IndexOutOfRange { index, len })
                if index == groups && len == groups
        ));
        assert!(model.plan.try_prune(&mut model.network, groups, 0).is_err());
        assert!(model
            .plan
            .try_gamma_grad(&mut model.network, groups)
            .is_err());

        // Channel index out of range: the network must be untouched.
        let alive = model.plan.try_channels(&model.network, 0).unwrap();
        let err = model
            .plan
            .try_prune(&mut model.network, 0, alive)
            .unwrap_err();
        assert!(matches!(err, cnn_stack_nn::Error::InvalidConfig(_)));
        assert_eq!(model.plan.try_channels(&model.network, 0).unwrap(), alive);
    }

    #[test]
    fn try_prune_refuses_last_channel() {
        let mut model = crate::vgg16_width(10, 0.1);
        let g = 0;
        while model.plan.try_channels(&model.network, g).unwrap() > 1 {
            model.plan.try_prune(&mut model.network, g, 0).unwrap();
        }
        assert!(!model.plan.try_can_prune(&model.network, g).unwrap());
        let err = model.plan.try_prune(&mut model.network, g, 0).unwrap_err();
        assert!(matches!(err, cnn_stack_nn::Error::InvalidConfig(_)));
    }

    #[test]
    fn try_flops_matches_panicking_api() {
        let model = crate::vgg16_width(10, 0.25);
        let shape = [1usize, 3, 32, 32];
        assert_eq!(
            model
                .plan
                .try_flops_per_channel(&model.network, &shape)
                .unwrap(),
            model.plan.flops_per_channel(&model.network, &shape)
        );
        assert_eq!(
            model.plan.try_total_channels(&model.network).unwrap(),
            model.plan.total_channels(&model.network)
        );
    }
}
