//! ResNet-18 in its CIFAR-10 form (§IV-A): a 3×3 stem, eight residual
//! blocks of two 3×3 convolutions each (17 convolutions + projection
//! shortcuts), batch norm after every convolution, and a linear
//! classifier.

use crate::model::{scale, Model, ModelKind};
use crate::plan::{PruneGroup, PruningPlan};
use cnn_stack_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, Network, ReLU, ResidualBlock,
};

/// Stage widths and strides: four stages of two blocks each.
const STAGES: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];

/// Builds full-width ResNet-18 for `classes` outputs.
pub fn resnet18(classes: usize) -> Model {
    resnet18_width(classes, 1.0)
}

/// Builds ResNet-18 with all widths scaled by `width`.
///
/// # Panics
///
/// Panics if `classes == 0` or `width <= 0`.
pub fn resnet18_width(classes: usize, width: f64) -> Model {
    assert!(classes > 0, "class count must be non-zero");
    assert!(width > 0.0, "width multiplier must be positive");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut groups = Vec::new();

    let stem = scale(64, width);
    layers.push(Box::new(Conv2d::new(3, stem, 3, 1, 1, 3000)));
    layers.push(Box::new(BatchNorm2d::new(stem)));
    layers.push(Box::new(ReLU::new()));

    let mut in_c = stem;
    let mut seed = 3100u64;
    for (base_c, stride) in STAGES {
        let out_c = scale(base_c, width);
        for b in 0..2 {
            let s = if b == 0 { stride } else { 1 };
            groups.push(PruneGroup::ResidualInner {
                block: layers.len(),
            });
            layers.push(Box::new(ResidualBlock::new(in_c, out_c, s, seed)));
            seed += 10;
            in_c = out_c;
        }
    }

    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::new(in_c, classes, 3900)));

    Model {
        kind: ModelKind::ResNet18,
        network: Network::new(layers).expect("model layer list is non-empty"),
        plan: PruningPlan::new(groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let mut m = resnet18(10);
        let y = m.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn has_eight_blocks() {
        let m = resnet18(10);
        assert_eq!(m.plan.group_count(), 8);
    }

    #[test]
    fn parameter_count_is_resnet18_scale() {
        let mut m = resnet18(10);
        // CIFAR ResNet-18 ≈ 11.2M parameters.
        let p = m.network.num_params();
        assert!(p > 10_500_000 && p < 11_800_000, "params {p}");
    }

    #[test]
    fn mac_count_is_resnet18_scale() {
        let m = resnet18(10);
        let macs = m.network.macs(&[1, 3, 32, 32]);
        // CIFAR ResNet-18 ≈ 555 MMACs.
        assert!(macs > 450_000_000 && macs < 650_000_000, "macs {macs}");
    }

    #[test]
    fn downsampling_halves_spatial_extent() {
        let m = resnet18(10);
        // Output of the network before GAP should be [1, 512, 4, 4].
        let shape = m.network.output_shape(&[1, 3, 32, 32]);
        assert_eq!(shape, vec![1, 10]);
        let descs = m.network.descriptors(&[1, 3, 32, 32]);
        let last_conv = descs
            .iter()
            .rev()
            .find(|d| d.name.starts_with("conv"))
            .unwrap();
        assert_eq!(&last_conv.output_shape[2..], &[4, 4]);
    }

    #[test]
    fn width_scaled_variant_runs_and_trains() {
        let mut m = resnet18_width(10, 0.125);
        let x = Tensor::zeros([2, 3, 32, 32]);
        let cfg = ExecConfig::default();
        let y = m.network.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        m.network.backward(&ones);
        // Gradients landed on stem conv.
        let g = m.network.params_mut()[0].grad.norm_sq();
        assert!(g.is_finite());
    }
}
