//! VGG-16, truncated for CIFAR-10 exactly as §IV-A describes: 13
//! convolutional layers (3×3, pad 1), max-pooling after layers
//! {2, 4, 7, 10, 13}, and a two-layer classifier head (512 → `classes`).
//!
//! Batch normalisation follows every convolution, matching the reference
//! implementation the paper's repository uses for CIFAR-scale VGG
//! training (and providing the per-channel scale that channel-pruning
//! saliency reads).

use crate::model::{scale, Model, ModelKind};
use crate::plan::{PruneGroup, PruningPlan};
use cnn_stack_nn::{BatchNorm2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, Network, ReLU};

/// The 13 convolution widths of VGG-16.
const VGG16_CHANNELS: [usize; 13] = [
    64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512,
];
/// 1-based conv indices followed by a max-pool (paper: {2, 4, 7, 10, 13}).
const POOL_AFTER: [usize; 5] = [2, 4, 7, 10, 13];

/// Builds full-width VGG-16 for `classes` outputs.
pub fn vgg16(classes: usize) -> Model {
    vgg16_width(classes, 1.0)
}

/// Builds VGG-16 with every convolution width scaled by `width`
/// (used for fast tests and width-sweep ablations).
///
/// # Panics
///
/// Panics if `classes == 0` or `width <= 0`.
pub fn vgg16_width(classes: usize, width: f64) -> Model {
    assert!(classes > 0, "class count must be non-zero");
    assert!(width > 0.0, "width multiplier must be positive");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut groups = Vec::new();
    let mut in_c = 3;
    let mut conv_indices = Vec::new();
    let mut bn_indices = Vec::new();

    for (i, &base_c) in VGG16_CHANNELS.iter().enumerate() {
        let out_c = scale(base_c, width);
        conv_indices.push(layers.len());
        layers.push(Box::new(Conv2d::new(in_c, out_c, 3, 1, 1, 1000 + i as u64)));
        bn_indices.push(layers.len());
        layers.push(Box::new(BatchNorm2d::new(out_c)));
        layers.push(Box::new(ReLU::new()));
        if POOL_AFTER.contains(&(i + 1)) {
            layers.push(Box::new(MaxPool2d::new(2)));
        }
        in_c = out_c;
    }

    // Head: 32 / 2^5 = 1x1 spatial → flatten → 512 → classes.
    let feat = in_c; // 1x1 spatial leaves `channels` features.
    let hidden = scale(512, width);
    layers.push(Box::new(Flatten::new()));
    let fc1_idx = layers.len();
    layers.push(Box::new(Linear::new(feat, hidden, 2000)));
    layers.push(Box::new(ReLU::new()));
    layers.push(Box::new(Linear::new(hidden, classes, 2001)));

    // Pruning plan: conv_i feeds conv_{i+1} for i < 13; conv_13 feeds the
    // first linear layer with 1 position per channel.
    for i in 0..12 {
        groups.push(PruneGroup::ConvToConv {
            conv: conv_indices[i],
            bn: bn_indices[i],
            next_conv: conv_indices[i + 1],
        });
    }
    groups.push(PruneGroup::ConvToLinear {
        conv: conv_indices[12],
        bn: bn_indices[12],
        linear: fc1_idx,
        positions: 1,
    });

    Model {
        kind: ModelKind::Vgg16,
        network: Network::new(layers).expect("model layer list is non-empty"),
        plan: PruningPlan::new(groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn forward_shape_full_width() {
        let mut m = vgg16(10);
        let y = m.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn has_13_convs_and_5_pools() {
        let m = vgg16(10);
        let descs = m.network.descriptors(&[1, 3, 32, 32]);
        let convs = descs.iter().filter(|d| d.name.starts_with("conv")).count();
        let pools = descs
            .iter()
            .filter(|d| d.name.starts_with("maxpool"))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(pools, 5);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut m = vgg16(10);
        // Conv params: sum(out*in*9 + out) + BN 2*out each; head:
        // 512*512+512 + 512*10+10.
        let mut expect = 0usize;
        let mut in_c = 3;
        for &c in &VGG16_CHANNELS {
            expect += c * in_c * 9 + c + 2 * c;
            in_c = c;
        }
        expect += 512 * 512 + 512 + 512 * 10 + 10;
        assert_eq!(m.network.num_params(), expect);
    }

    #[test]
    fn total_macs_are_vgg_scale() {
        let m = vgg16(10);
        let macs = m.network.macs(&[1, 3, 32, 32]);
        // CIFAR VGG-16 is ~313 MMACs; accept the right ballpark (conv only
        // dominates; BN adds a little).
        assert!(macs > 250_000_000 && macs < 400_000_000, "macs {macs}");
    }

    #[test]
    fn plan_covers_all_13_convs() {
        let m = vgg16(10);
        assert_eq!(m.plan.group_count(), 13);
    }

    #[test]
    fn width_scaling_reduces_size() {
        let mut small = vgg16_width(10, 0.25);
        let mut full = vgg16(10);
        assert!(small.network.num_params() < full.network.num_params() / 8);
        let y = small.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    #[should_panic(expected = "width multiplier")]
    fn zero_width_rejected() {
        let _ = vgg16_width(10, 0.0);
    }
}
