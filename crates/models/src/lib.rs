//! The paper's three CNN workloads (§IV-A), built on `cnn-stack-nn`:
//!
//! * **VGG-16** — 13 convolutional layers (3×3), max-pooling after layers
//!   {2, 4, 7, 10, 13}, with the paper's truncated CIFAR-10 head (two
//!   fully connected layers of 512 and `classes` outputs).
//! * **ResNet-18** — initial 3×3 stem plus eight two-convolution residual
//!   blocks and a linear classifier.
//! * **MobileNet** — 27 convolutional layers alternating 3×3 depthwise and
//!   1×1 pointwise convolutions, one fully connected classifier.
//!
//! Each builder also returns a [`PruningPlan`] describing which channels
//! are structurally prunable and what surgery removing one entails — the
//! metadata Fisher channel pruning (in `cnn-stack-compress`) operates on.
//! For ResNet the plan covers only the channels *between* shortcuts,
//! matching the paper's §V-B.2 constraint.
//!
//! # Example
//!
//! ```
//! use cnn_stack_models::resnet18;
//! use cnn_stack_nn::{ExecConfig, Phase};
//! use cnn_stack_tensor::Tensor;
//!
//! let mut model = resnet18(10);
//! let logits = model.network.forward(
//!     &Tensor::zeros([1, 3, 32, 32]),
//!     Phase::Eval,
//!     &ExecConfig::default(),
//! );
//! assert_eq!(logits.shape().dims(), &[1, 10]);
//! ```

pub mod mobilenet;
pub mod model;
pub mod plan;
pub mod resnet;
pub mod vgg;

pub use mobilenet::{mobilenet, mobilenet_width};
pub use model::{Model, ModelKind};
pub use plan::{PruneGroup, PruningPlan};
pub use resnet::{resnet18, resnet18_width};
pub use vgg::{vgg16, vgg16_width};
