//! The `Model` bundle: a network plus its pruning metadata and identity.

use crate::plan::PruningPlan;
use cnn_stack_nn::{Error, ExecConfig, InferencePlan, Network, PlanCompiler};

/// Which of the paper's three architectures a [`Model`] instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// VGG-16 (truncated CIFAR-10 head).
    Vgg16,
    /// ResNet-18 (CIFAR-10 definition).
    ResNet18,
    /// MobileNet (depthwise-separable, CIFAR-10 adaptation).
    MobileNet,
}

impl ModelKind {
    /// All three paper models, in the paper's presentation order.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Vgg16, ModelKind::ResNet18, ModelKind::MobileNet]
    }

    /// Display name as the paper writes it.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Vgg16 => "VGG-16",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::MobileNet => "MobileNet",
        }
    }

    /// The baseline CIFAR-10 test accuracy the paper reports after
    /// training from scratch (§V-A): 92.20 / 94.32 / 90.47 %.
    pub fn paper_baseline_accuracy(&self) -> f64 {
        match self {
            ModelKind::Vgg16 => 0.9220,
            ModelKind::ResNet18 => 0.9432,
            ModelKind::MobileNet => 0.9047,
        }
    }

    /// Builds the full-width model for `classes` output classes.
    pub fn build(&self, classes: usize) -> Model {
        match self {
            ModelKind::Vgg16 => crate::vgg16(classes),
            ModelKind::ResNet18 => crate::resnet18(classes),
            ModelKind::MobileNet => crate::mobilenet(classes),
        }
    }

    /// Builds a width-scaled model (for fast tests and sweeps).
    pub fn build_width(&self, classes: usize, width: f64) -> Model {
        match self {
            ModelKind::Vgg16 => crate::vgg16_width(classes, width),
            ModelKind::ResNet18 => crate::resnet18_width(classes, width),
            ModelKind::MobileNet => crate::mobilenet_width(classes, width),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A network together with its architecture identity and channel-pruning
/// plan.
#[derive(Debug)]
pub struct Model {
    /// Which architecture this is.
    pub kind: ModelKind,
    /// The executable network.
    pub network: Network,
    /// Structural channel-pruning metadata.
    pub plan: PruningPlan,
}

impl Model {
    /// The canonical CIFAR-10 input shape at batch size `n`.
    pub fn input_shape(&self, n: usize) -> Vec<usize> {
        vec![n, 3, 32, 32]
    }

    /// Compiles the network into an inference plan at batch size `n`
    /// through `compiler`'s pass pipeline. Passes may rewrite the
    /// network in place (batch-norm folding, per-layer weight-format
    /// switches), which is why this takes `&mut self`.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::InvalidConfig`] from plan compilation.
    pub fn compile_plan(
        &mut self,
        n: usize,
        cfg: &ExecConfig,
        compiler: &PlanCompiler,
    ) -> Result<InferencePlan, Error> {
        let shape = self.input_shape(n);
        compiler.run(&mut self.network, &shape, cfg)
    }
}

/// Scales a channel count by a width multiplier, flooring at 2 so
/// surgery invariants ("cannot remove the last channel") stay satisfiable.
pub(crate) fn scale(channels: usize, width: f64) -> usize {
    ((channels as f64 * width).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_metadata() {
        assert_eq!(ModelKind::Vgg16.name(), "VGG-16");
        assert!((ModelKind::ResNet18.paper_baseline_accuracy() - 0.9432).abs() < 1e-9);
        assert_eq!(ModelKind::all().len(), 3);
        assert_eq!(ModelKind::MobileNet.to_string(), "MobileNet");
    }

    #[test]
    fn compile_plan_fuses_model_steps() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        let layers = model.network.len();
        let plan = model
            .compile_plan(1, &ExecConfig::serial(), &PlanCompiler::standard())
            .unwrap();
        // Fold-and-fuse absorbs the conv/bn/relu triples: fewer steps
        // than layers, but the spans still tile the whole network.
        assert!(plan.steps().len() < layers);
        let covered: usize = plan.steps().iter().map(|s| s.span).sum();
        assert_eq!(covered, layers);
        assert!(plan.steps().iter().any(|s| s.cfg.fused_relu));
    }

    #[test]
    fn scale_floors_at_two() {
        assert_eq!(scale(64, 0.5), 32);
        assert_eq!(scale(8, 0.1), 2);
        assert_eq!(scale(64, 1.0), 64);
    }
}
