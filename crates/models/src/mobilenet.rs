//! MobileNet (Howard et al.) adapted to CIFAR-10 (§IV-A): 27
//! convolutional layers alternating 3×3 depthwise and 1×1 pointwise
//! convolutions, plus a single fully connected classifier. As in the
//! paper's reference implementation the stem convolution keeps stride 1
//! at 32×32 input resolution.

use crate::model::{scale, Model, ModelKind};
use crate::plan::{PruneGroup, PruningPlan};
use cnn_stack_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Layer, Linear, Network, ReLU,
};

/// The 13 depthwise-separable stages: (pointwise output width, stride of
/// the depthwise convolution).
const STAGES: [(usize, usize); 13] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

/// Builds full-width MobileNet for `classes` outputs.
pub fn mobilenet(classes: usize) -> Model {
    mobilenet_width(classes, 1.0)
}

/// Builds MobileNet with all widths scaled by `width` (the
/// width-multiplier hyper-parameter of the original paper).
///
/// # Panics
///
/// Panics if `classes == 0` or `width <= 0`.
pub fn mobilenet_width(classes: usize, width: f64) -> Model {
    assert!(classes > 0, "class count must be non-zero");
    assert!(width > 0.0, "width multiplier must be positive");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();

    // Stem: full 3x3 convolution.
    let stem = scale(32, width);
    let stem_conv = layers.len();
    layers.push(Box::new(Conv2d::new(3, stem, 3, 1, 1, 4000)));
    let stem_bn = layers.len();
    layers.push(Box::new(BatchNorm2d::new(stem)));
    layers.push(Box::new(ReLU::new()));

    // Depthwise-separable stages, remembering layer indices for the plan.
    struct StageIdx {
        dw: usize,
        dw_bn: usize,
        pw: usize,
        pw_bn: usize,
    }
    let mut idx = Vec::new();
    let mut in_c = stem;
    let mut seed = 4100u64;
    for (base_c, stride) in STAGES {
        let out_c = scale(base_c, width);
        let dw = layers.len();
        layers.push(Box::new(DepthwiseConv2d::new(in_c, 3, stride, 1, seed)));
        let dw_bn = layers.len();
        layers.push(Box::new(BatchNorm2d::new(in_c)));
        layers.push(Box::new(ReLU::new()));
        let pw = layers.len();
        layers.push(Box::new(Conv2d::new(in_c, out_c, 1, 1, 0, seed + 1)));
        let pw_bn = layers.len();
        layers.push(Box::new(BatchNorm2d::new(out_c)));
        layers.push(Box::new(ReLU::new()));
        idx.push(StageIdx {
            dw,
            dw_bn,
            pw,
            pw_bn,
        });
        seed += 10;
        in_c = out_c;
    }

    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Flatten::new()));
    let fc = layers.len();
    layers.push(Box::new(Linear::new(in_c, classes, 4900)));

    // Pruning plan. The stem and every pointwise convolution produce
    // channels consumed by the following depthwise + pointwise pair; the
    // final pointwise feeds the classifier via global average pooling
    // (1 position per channel).
    let mut groups = Vec::new();
    groups.push(PruneGroup::ConvToDepthwise {
        conv: stem_conv,
        bn: stem_bn,
        dw: idx[0].dw,
        dw_bn: idx[0].dw_bn,
        next_conv: idx[0].pw,
    });
    for i in 0..STAGES.len() - 1 {
        groups.push(PruneGroup::ConvToDepthwise {
            conv: idx[i].pw,
            bn: idx[i].pw_bn,
            dw: idx[i + 1].dw,
            dw_bn: idx[i + 1].dw_bn,
            next_conv: idx[i + 1].pw,
        });
    }
    let last = idx.last().expect("at least one stage");
    groups.push(PruneGroup::ConvToLinear {
        conv: last.pw,
        bn: last.pw_bn,
        linear: fc,
        positions: 1,
    });

    Model {
        kind: ModelKind::MobileNet,
        network: Network::new(layers).expect("model layer list is non-empty"),
        plan: PruningPlan::new(groups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_nn::{ExecConfig, Phase};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let mut m = mobilenet(10);
        let y = m.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn has_27_conv_layers_and_one_fc() {
        let m = mobilenet(10);
        let descs = m.network.descriptors(&[1, 3, 32, 32]);
        let convs = descs
            .iter()
            .filter(|d| d.name.starts_with("conv") || d.name.starts_with("dwconv"))
            .count();
        let fcs = descs
            .iter()
            .filter(|d| d.name.starts_with("linear"))
            .count();
        assert_eq!(convs, 27, "paper: 27 convolutional layers");
        assert_eq!(fcs, 1, "paper: a single fully connected layer");
    }

    #[test]
    fn parameter_count_is_mobilenet_scale() {
        let mut m = mobilenet(10);
        // CIFAR MobileNet ≈ 3.2M parameters.
        let p = m.network.num_params();
        assert!(p > 3_000_000 && p < 3_600_000, "params {p}");
    }

    #[test]
    fn macs_far_below_vgg() {
        let mob = mobilenet(10).network.macs(&[1, 3, 32, 32]);
        let vgg = crate::vgg16(10).network.macs(&[1, 3, 32, 32]);
        assert!(
            mob * 4 < vgg,
            "MobileNet ({mob}) should be far cheaper than VGG ({vgg})"
        );
    }

    #[test]
    fn plan_covers_stem_plus_all_pointwise() {
        let m = mobilenet(10);
        assert_eq!(m.plan.group_count(), 14); // stem + 13 pointwise convs
    }

    #[test]
    fn spatial_extent_ends_at_2x2() {
        let m = mobilenet(10);
        let descs = m.network.descriptors(&[1, 3, 32, 32]);
        let last_conv = descs
            .iter()
            .rev()
            .find(|d| d.name.starts_with("conv"))
            .unwrap();
        assert_eq!(&last_conv.output_shape[2..], &[2, 2]);
    }

    #[test]
    fn width_half_is_quarter_params() {
        let mut full = mobilenet(10);
        let mut half = mobilenet_width(10, 0.5);
        let ratio = full.network.num_params() as f64 / half.network.num_params() as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
