//! End-to-end evaluation of one stack configuration: the experiment cell
//! behind every bar of Figs. 4–6 and every entry of Tables IV/VI.

use crate::build::try_materialise;
use crate::config::{PlanMode, StackConfig};
use cnn_stack_hwsim::{network_energy, network_time, EnergyModel, SimConfig};
use cnn_stack_nn::memory::{network_memory, MemoryBreakdown};
use cnn_stack_nn::{
    ConvAlgorithm, Error, ExecConfig, HealthReport, InferencePlan, InferenceSession, PlanCompiler,
};
use cnn_stack_obs::{self as obs, MetricsSnapshot, Observer};
use cnn_stack_tensor::Tensor;
use std::sync::Arc;
use std::time::Instant;

/// One evaluated cell of the experiment grid.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Modelled inference time on the configured platform, seconds.
    pub modelled_s: f64,
    /// Wall-clock time of a real host execution (functional validation),
    /// if one was requested.
    pub measured_host_s: Option<f64>,
    /// Runtime memory footprint (paper accounting), megabytes.
    pub memory_mb: f64,
    /// Modelled energy per inference on the configured platform, joules.
    pub energy_j: f64,
    /// Memory breakdown.
    pub memory: MemoryBreakdown,
    /// Predicted top-1 accuracy, percent.
    pub accuracy_pct: f64,
    /// Dense MAC count of the materialised network.
    pub macs: u64,
    /// Effective (stored-non-zero) MACs.
    pub effective_macs: u64,
    /// Overall weight sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Runtime health of the host execution: guards tripped, panics
    /// contained, retries, and kernel demotions. Always clean for
    /// modelled-only evaluations (no host run happens).
    pub health: HealthReport,
    /// One line per compiled host-plan step — `name [span] conv/gemm`
    /// with a `+relu` suffix for fused epilogues. Empty when no host run
    /// was requested. Under [`PlanMode::Selection`] this is where the
    /// per-layer choices of the pass compiler become visible.
    pub plan_steps: Vec<String>,
    /// Snapshot of every observability instrument recorded during the
    /// evaluation (GEMM calls/FLOPs, im2col traffic, pool activity,
    /// guard scans, engine steps), when [`StackConfig::obs`] was above
    /// `Off`. `None` with observability off.
    pub metrics: Option<MetricsSnapshot>,
}

/// Evaluates `cfg` with the analytic platform model only (no host
/// execution). Uses the full-width model.
pub fn evaluate(cfg: &StackConfig) -> CellResult {
    evaluate_with(cfg, 1.0, false)
}

/// Evaluates `cfg` at a given width multiplier (panicking shim over
/// [`try_evaluate_with`]).
///
/// # Panics
///
/// Panics if the configuration is invalid or the host execution fails
/// even after guarded recovery.
pub fn evaluate_with(cfg: &StackConfig, width: f64, measure_host: bool) -> CellResult {
    try_evaluate_with(cfg, width, measure_host).expect("stack configuration is valid")
}

/// Evaluates `cfg` at a given width multiplier, optionally also running
/// one real forward pass on the build host for functional validation
/// (`measure_host`). Host measurement uses the configured thread count,
/// convolution algorithm and guard level; the session's
/// [`HealthReport`] — guard trips, contained panics, retries, kernel
/// demotions — is attached to the returned cell.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for out-of-range operating points,
/// or the session error if the host execution fails beyond what guarded
/// degradation can recover.
pub fn try_evaluate_with(
    cfg: &StackConfig,
    width: f64,
    measure_host: bool,
) -> Result<CellResult, Error> {
    let mut model = try_materialise(cfg, width)?;
    let input_shape = [1usize, 3, 32, 32];
    let descs = model.network.descriptors(&input_shape);

    let platform = cfg.platform.platform();
    let sim = SimConfig {
        threads: cfg.threads,
        backend: cfg.backend,
        im2col: matches!(cfg.algorithm, ConvAlgorithm::Im2col),
    };
    let energy = network_energy(
        &platform,
        &EnergyModel::for_platform(&platform),
        &descs,
        &sim,
    );

    let memory = network_memory(&descs, matches!(cfg.algorithm, ConvAlgorithm::Im2col));

    // One observer covers the whole cell: the host session's (so kernel
    // metrics, engine spans, and the modelled-timing spans land in the
    // same registry/ring), or a standalone one for modelled-only cells.
    let observer: Option<Arc<Observer>>;
    let (measured_host_s, health, plan_steps) = if measure_host {
        let exec = ExecConfig {
            threads: cfg.threads,
            conv_algo: cfg.algorithm,
            observer: cfg.obs,
            // Deployed plans must fit the target's memory envelope: an
            // explicit stack budget wins, else the platform's default
            // (a quarter of installed RAM).
            plan_budget: Some(
                cfg.plan_budget
                    .unwrap_or_else(|| platform.arena_budget_bytes()),
            ),
            ..ExecConfig::serial()
        };
        // Compile once, execute via the arena-backed session: the timed
        // pass then measures arithmetic, not per-layer allocation.
        let plan = match cfg.plan {
            PlanMode::Global => InferencePlan::compile(&model.network, &input_shape, &exec)?,
            PlanMode::Selection => {
                PlanCompiler::standard().run(&mut model.network, &input_shape, &exec)?
            }
        };
        let plan_steps = plan
            .steps()
            .iter()
            .map(|s| {
                format!(
                    "{} [span {}] {:?}/{:?}{}",
                    s.name,
                    s.span,
                    s.cfg.conv_algo,
                    s.cfg.gemm_algo,
                    if s.cfg.fused_relu { " +relu" } else { "" }
                )
            })
            .collect();
        let mut session = InferenceSession::with_guard(&mut model.network, plan, cfg.guard)?;
        observer = session.observer().cloned();
        let input = Tensor::zeros(input_shape.to_vec());
        let mut out = Tensor::zeros(session.plan().output_shape().to_vec());
        // Warm once, then time one pass.
        session.run_into(&input, &mut out)?;
        let start = Instant::now();
        session.run_into(&input, &mut out)?;
        let elapsed = start.elapsed().as_secs_f64();
        (Some(elapsed), session.health().clone(), plan_steps)
    } else {
        observer = Observer::for_level(cfg.obs);
        (None, HealthReport::default(), Vec::new())
    };

    // The modelled timing records its per-layer spans through the
    // thread-local observer, so install ours for the call's duration.
    let (modelled_s, _) = {
        let _tls = observer.as_ref().map(|o| obs::install(o.clone()));
        network_time(&platform, &descs, &sim)
    };
    let metrics = observer.as_ref().map(|o| o.snapshot());

    let macs: u64 = descs.iter().map(|d| d.macs).sum();
    let effective_macs: u64 = descs.iter().map(|d| d.effective_macs()).sum();

    Ok(CellResult {
        modelled_s,
        measured_host_s,
        memory_mb: memory.total_mb(),
        energy_j: energy.total(),
        memory,
        accuracy_pct: cfg.predicted_accuracy(),
        macs,
        effective_macs,
        sparsity: model.network.weight_sparsity(&input_shape),
        health,
        plan_steps,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionChoice, PlatformChoice};
    use cnn_stack_models::ModelKind;

    #[test]
    fn plain_cell_has_baseline_accuracy_and_positive_time() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
        let cell = evaluate(&cfg);
        assert!((cell.accuracy_pct - 92.20).abs() < 1e-9);
        assert!(cell.modelled_s > 0.5 && cell.modelled_s < 3.0);
        assert!(cell.memory_mb > 30.0);
        assert!(cell.energy_j > 0.0);
        assert_eq!(cell.macs, cell.effective_macs);
        assert!(cell.measured_host_s.is_none());
    }

    #[test]
    fn channel_pruning_cell_is_faster_and_smaller() {
        let plain = evaluate(&StackConfig::plain(
            ModelKind::Vgg16,
            PlatformChoice::IntelI7,
        ));
        let cp = evaluate(
            &StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).compress(
                CompressionChoice::ChannelPruning {
                    compression_pct: 88.48,
                },
            ),
        );
        assert!(cp.modelled_s < plain.modelled_s * 0.5);
        assert!(cp.memory_mb < plain.memory_mb * 0.5);
    }

    #[test]
    fn weight_pruning_cell_is_slower_but_sparser() {
        let plain = evaluate(&StackConfig::plain(
            ModelKind::ResNet18,
            PlatformChoice::OdroidXu4,
        ));
        let wp = evaluate(
            &StackConfig::plain(ModelKind::ResNet18, PlatformChoice::OdroidXu4).compress(
                CompressionChoice::WeightPruning {
                    sparsity_pct: 88.92,
                },
            ),
        );
        assert!(wp.sparsity > 0.8);
        assert!(wp.modelled_s >= plain.modelled_s * 0.95);
        // Per the paper's Table IV, the CSR footprint exceeds the dense one.
        assert!(wp.memory_mb > plain.memory_mb);
    }

    #[test]
    fn host_measurement_runs_when_requested() {
        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::IntelI7);
        let cell = evaluate_with(&cfg, 0.1, true);
        let t = cell.measured_host_s.expect("host time requested");
        assert!(t > 0.0 && t < 30.0);
        assert!(cell.health.is_clean());
    }

    #[test]
    fn guarded_host_run_attaches_clean_health_report() {
        use cnn_stack_nn::GuardConfig;
        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::IntelI7)
            .guard(GuardConfig::BoundaryCheck);
        let cell = try_evaluate_with(&cfg, 0.1, true).unwrap();
        assert!(cell.measured_host_s.is_some());
        assert!(cell.health.is_clean());
        assert_eq!(cell.health.demotions, vec![]);
    }

    #[test]
    fn selection_plan_mode_fuses_and_reports_steps() {
        use crate::config::PlanMode;
        let global = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
        let selected = global.plan(PlanMode::Selection);
        let g = try_evaluate_with(&global, 0.1, true).unwrap();
        let s = try_evaluate_with(&selected, 0.1, true).unwrap();
        // Global planning: one step per layer, nothing fused.
        assert!(g.plan_steps.iter().all(|l| l.contains("[span 1]")));
        // Selection planning: conv+bn+relu triples collapse, the fused
        // epilogue is reported, and dense convs move off Direct.
        assert!(s.plan_steps.len() < g.plan_steps.len());
        assert!(s.plan_steps.iter().any(|l| l.contains("+relu")));
        assert!(s.plan_steps.iter().any(|l| l.contains("Im2col")));
        assert!(s.health.is_clean());
        assert!(s.measured_host_s.is_some());
    }

    #[test]
    fn obs_metrics_snapshot_attaches_when_requested() {
        use cnn_stack_obs::ObsLevel;
        let base = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::IntelI7);
        // Off: no snapshot.
        let off = try_evaluate_with(&base, 0.1, true).unwrap();
        assert!(off.metrics.is_none());
        // Metrics on a host run: kernel and engine instruments advance.
        let cell = try_evaluate_with(&base.obs(ObsLevel::Metrics), 0.1, true).unwrap();
        let m = cell.metrics.expect("metrics requested");
        assert!(m.counter("engine.runs_completed").unwrap() >= 2); // warm-up + timed
        assert!(m.counter("engine.steps_executed").unwrap() > 0);
        assert!(m.counter("gemm.calls").unwrap() > 0);
        // Modelled-only cells still carry a (quiet) snapshot.
        let modelled = try_evaluate_with(&base.obs(ObsLevel::Metrics), 0.1, false).unwrap();
        let m = modelled.metrics.expect("metrics requested");
        assert_eq!(m.counter("engine.runs_completed"), Some(0));
    }

    #[test]
    fn invalid_operating_point_is_an_error_not_a_panic() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).compress(
            CompressionChoice::WeightPruning {
                sparsity_pct: 150.0,
            },
        );
        assert!(try_evaluate_with(&cfg, 0.1, false).is_err());
    }
}
