//! Pareto-curve exploration and operating-point selection (Fig. 3,
//! Tables III and V).

use cnn_stack_compress::{AccuracyModel, Technique};
use cnn_stack_models::ModelKind;

/// One sampled point of an accuracy trade-off curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoPoint {
    /// Operating point (sparsity %, compression %, or TTQ threshold).
    pub x: f64,
    /// Predicted top-1 accuracy, percent.
    pub accuracy_pct: f64,
}

/// Samples the accuracy curve for a model × technique over the paper's
/// plotted range.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn pareto_curve(kind: ModelKind, technique: Technique, points: usize) -> Vec<ParetoPoint> {
    assert!(points >= 2, "need at least two points");
    AccuracyModel::curve(kind, technique, points)
        .into_iter()
        .map(|(x, accuracy_pct)| ParetoPoint { x, accuracy_pct })
        .collect()
}

/// Detects the curve's elbow: the most aggressive operating point whose
/// accuracy is still within `tolerance_pct` of the best accuracy on the
/// curve. This formalises the paper's "obvious elbows on the Pareto
/// curves" (§V-D); Table III records the authors' manual picks, which
/// this detector approximates.
///
/// # Panics
///
/// Panics if `curve` is empty or `tolerance_pct` is negative.
pub fn detect_elbow(curve: &[ParetoPoint], tolerance_pct: f64) -> ParetoPoint {
    assert!(!curve.is_empty(), "curve must be non-empty");
    assert!(tolerance_pct >= 0.0, "tolerance must be non-negative");
    let best = curve
        .iter()
        .map(|p| p.accuracy_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    // "Most aggressive" = largest x (all of the paper's x-axes order
    // increasing compression left to right).
    curve
        .iter()
        .filter(|p| p.accuracy_pct >= best - tolerance_pct)
        .cloned()
        .fold(curve[0], |acc, p| if p.x > acc.x { p } else { acc })
}

/// The Table V inverse problem: the most aggressive operating point with
/// accuracy at least `target_pct`. Returns `None` when even the
/// uncompressed model misses the target.
pub fn operating_point_at_accuracy(
    kind: ModelKind,
    technique: Technique,
    target_pct: f64,
) -> Option<f64> {
    AccuracyModel::operating_point_for_accuracy(kind, technique, target_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_span_paper_ranges() {
        let wp = pareto_curve(ModelKind::Vgg16, Technique::WeightPruning, 101);
        assert_eq!(wp.len(), 101);
        assert_eq!(wp[0].x, 0.0);
        assert_eq!(wp[100].x, 100.0);
        let q = pareto_curve(ModelKind::MobileNet, Technique::TernaryQuantisation, 21);
        assert!((q[20].x - 0.20).abs() < 1e-12);
    }

    #[test]
    fn elbow_is_within_tolerance_of_best() {
        for kind in ModelKind::all() {
            for tech in [Technique::WeightPruning, Technique::ChannelPruning] {
                let curve = pareto_curve(kind, tech, 201);
                let elbow = detect_elbow(&curve, 1.0);
                let best = curve
                    .iter()
                    .map(|p| p.accuracy_pct)
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(elbow.accuracy_pct >= best - 1.0);
                // And it is aggressive: at least as far as every other
                // qualifying point.
                for p in &curve {
                    if p.accuracy_pct >= best - 1.0 {
                        assert!(elbow.x >= p.x);
                    }
                }
            }
        }
    }

    #[test]
    fn detected_elbows_approximate_table3() {
        // The detector should land in the neighbourhood of the paper's
        // manual picks for the models that hold accuracy (VGG/ResNet).
        let curve = pareto_curve(ModelKind::Vgg16, Technique::WeightPruning, 401);
        let elbow = detect_elbow(&curve, 1.0);
        let paper =
            AccuracyModel::table3_operating_point(ModelKind::Vgg16, Technique::WeightPruning);
        assert!(
            (elbow.x - paper).abs() < 12.0,
            "elbow {} vs paper {paper}",
            elbow.x
        );
    }

    #[test]
    fn inverse_lookup_matches_target() {
        let x = operating_point_at_accuracy(ModelKind::ResNet18, Technique::ChannelPruning, 90.0)
            .unwrap();
        let acc = AccuracyModel::accuracy(ModelKind::ResNet18, Technique::ChannelPruning, x);
        assert!((acc - 90.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_curve_rejected() {
        let _ = detect_elbow(&[], 1.0);
    }
}
