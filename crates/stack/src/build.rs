//! Materialising a stack configuration into a concrete, surgically
//! modified network.

use crate::config::{CompressionChoice, StackConfig};
use cnn_stack_compress::{magnitude, ttq};
use cnn_stack_models::Model;
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::{Conv2d, Error, ResidualBlock};

/// Builds the configured model and applies the configured compression
/// for real: weight pruning installs magnitude masks, channel pruning
/// performs structural surgery down to the target parameter compression,
/// and quantisation ternarises every weight tensor. Finally the weight
/// format is applied network-wide.
///
/// `width` scales all channel counts (1.0 = the paper's full-size
/// models; smaller values build proportionally thinner networks for fast
/// functional runs).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if an operating point is out of
/// range (e.g. weight sparsity outside `[0, 100)` or a channel
/// compression target outside `[0, 100)`).
pub fn try_materialise(cfg: &StackConfig, width: f64) -> Result<Model, Error> {
    let mut model = cfg.model.build_width(10, width);
    match cfg.compression {
        CompressionChoice::Plain => {}
        CompressionChoice::WeightPruning { sparsity_pct } => {
            if !(0.0..100.0).contains(&sparsity_pct) {
                return Err(Error::InvalidConfig(format!(
                    "weight-pruning sparsity {sparsity_pct}% must be in [0, 100)"
                )));
            }
            magnitude::prune_network(&mut model.network, sparsity_pct / 100.0);
        }
        CompressionChoice::ChannelPruning { compression_pct } => {
            try_channel_prune_to(&mut model, compression_pct / 100.0)?;
        }
        CompressionChoice::TernaryQuantisation { threshold } => {
            if !threshold.is_finite() || threshold < 0.0 {
                return Err(Error::InvalidConfig(format!(
                    "TTQ threshold {threshold} must be finite and non-negative"
                )));
            }
            // Trained TTQ's sparsity is a property of the fine-tuned
            // weight distribution, not of the raw threshold on untrained
            // weights; hit the calibrated sparsity for this model and
            // threshold (Fig. 3(c) / Table III), then ternarise the
            // survivors.
            let sparsity =
                cnn_stack_compress::AccuracyModel::ttq_sparsity(cfg.model, threshold) / 100.0;
            magnitude::prune_network(&mut model.network, sparsity.min(0.99));
            ttq::ttq_quantise(&mut model.network, 0.0);
        }
    }
    set_network_format(&mut model.network, cfg.format);
    Ok(model)
}

/// Builds the configured model (panicking shim over
/// [`try_materialise`]).
///
/// # Panics
///
/// Panics if an operating point is out of range (e.g. sparsity ≥ 100 %).
pub fn materialise(cfg: &StackConfig, width: f64) -> Model {
    try_materialise(cfg, width).expect("stack configuration is valid")
}

/// Structurally prunes channels (lowest weight-magnitude saliency first,
/// the cheap offline proxy for the trained Fisher signal) until the
/// parameter compression target is reached or nothing more can be
/// removed.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `target` is not in `[0, 1)`, or
/// an error from the pruning plan if it does not match the network.
#[allow(clippy::needless_range_loop)]
pub fn try_channel_prune_to(model: &mut Model, target: f64) -> Result<(), Error> {
    if !(0.0..1.0).contains(&target) {
        return Err(Error::InvalidConfig(format!(
            "channel-pruning target {target} must be in [0, 1)"
        )));
    }
    let shape = [1usize, 3, 32, 32];
    let original: usize = model
        .network
        .descriptors(&shape)
        .iter()
        .map(|d| d.weight_elems)
        .sum();
    // Maintain producer-filter norms incrementally: pruning (g, c) drops
    // one row of group g's producer and one input-channel slice of its
    // consumer; in the chain-structured plans the consumer is group
    // g+1's producer, so only norms[g] and norms[g+1] change.
    let mut norms: Vec<Vec<f64>> = Vec::with_capacity(model.plan.group_count());
    for g in 0..model.plan.group_count() {
        norms.push(group_channel_norms(model, g)?);
    }
    'outer: loop {
        let now: usize = model
            .network
            .descriptors(&shape)
            .iter()
            .map(|d| d.weight_elems)
            .sum();
        let remaining = target - (1.0 - now as f64 / original as f64);
        if remaining <= 0.0 {
            break;
        }
        // Recomputing descriptors per channel is quadratic; prune a small
        // batch between recomputes (slight overshoot is fine — the
        // paper's compression rates are themselves one-decimal figures).
        let batch = ((remaining * model.plan.try_total_channels(&model.network)? as f64 / 2.0)
            .ceil() as usize)
            .clamp(1, 64);
        for _ in 0..batch {
            // Pick the (group, channel) with the smallest producer-filter
            // L2 norm among groups that can still shrink.
            let mut best: Option<(usize, usize, f64)> = None;
            for g in 0..model.plan.group_count() {
                if !model.plan.try_can_prune(&model.network, g)? {
                    continue;
                }
                for (c, &n) in norms[g].iter().enumerate() {
                    if best.is_none_or(|(_, _, b)| n < b) {
                        best = Some((g, c, n));
                    }
                }
            }
            let Some((g, c, _)) = best else {
                break 'outer; // nothing prunable remains
            };
            model.plan.try_prune(&mut model.network, g, c)?;
            norms[g].remove(c);
            if g + 1 < norms.len() {
                norms[g + 1] = group_channel_norms(model, g + 1)?;
            }
        }
    }
    Ok(())
}

/// Structurally prunes channels to a parameter compression target
/// (panicking shim over [`try_channel_prune_to`]).
///
/// # Panics
///
/// Panics if `target` is not in `[0, 1)`.
pub fn channel_prune_to(model: &mut Model, target: f64) {
    try_channel_prune_to(model, target).expect("channel-pruning target is valid");
}

/// L2 norms of each producer-filter row in a prune group.
fn group_channel_norms(model: &mut Model, g: usize) -> Result<Vec<f64>, Error> {
    use cnn_stack_models::PruneGroup;
    let group = model.plan.groups()[g];
    Ok(match group {
        PruneGroup::ConvToConv { conv, .. }
        | PruneGroup::ConvToDepthwise { conv, .. }
        | PruneGroup::ConvToLinear { conv, .. } => {
            let conv = model
                .network
                .layer(conv)?
                .as_any()
                .downcast_ref::<Conv2d>()
                .ok_or_else(|| Error::InvalidConfig(format!("layer {conv} is not a Conv2d")))?;
            conv_row_norms(conv)
        }
        PruneGroup::ResidualInner { block } => {
            let block = model
                .network
                .layer(block)?
                .as_any()
                .downcast_ref::<ResidualBlock>()
                .ok_or_else(|| {
                    Error::InvalidConfig(format!("layer {block} is not a ResidualBlock"))
                })?;
            conv_row_norms(block.conv1())
        }
    })
}

fn conv_row_norms(conv: &Conv2d) -> Vec<f64> {
    let m = conv.weight_matrix();
    let (rows, cols) = m.shape().matrix();
    (0..rows)
        .map(|r| {
            m.data()[r * cols..(r + 1) * cols]
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformChoice;
    use cnn_stack_models::ModelKind;
    use cnn_stack_nn::{ExecConfig, Phase, WeightFormat};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn plain_materialises_dense() {
        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4);
        let mut model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        assert!(descs.iter().all(|d| d.format == WeightFormat::Dense));
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn weight_pruning_yields_sparse_csr_network() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .compress(CompressionChoice::WeightPruning { sparsity_pct: 70.0 });
        let model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        let conv = descs.iter().find(|d| d.name.starts_with("conv")).unwrap();
        assert_eq!(conv.format, WeightFormat::Csr);
        assert!(conv.sparsity() > 0.6, "sparsity {}", conv.sparsity());
    }

    #[test]
    fn channel_pruning_hits_compression_target() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).compress(
            CompressionChoice::ChannelPruning {
                compression_pct: 60.0,
            },
        );
        let mut model = materialise(&cfg, 0.2);
        let mut full = ModelKind::Vgg16.build_width(10, 0.2);
        let now = model.network.num_params();
        let orig = full.network.num_params();
        let compression = 1.0 - now as f64 / orig as f64;
        assert!(
            (0.55..0.75).contains(&compression),
            "compression {compression}"
        );
        // Still dense format and runnable.
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn quantisation_is_ternary_and_csr() {
        let cfg = StackConfig::plain(ModelKind::ResNet18, PlatformChoice::OdroidXu4)
            .compress(CompressionChoice::TernaryQuantisation { threshold: 0.1 });
        let model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        let conv = descs.iter().find(|d| d.name.starts_with("conv")).unwrap();
        assert_eq!(conv.format, WeightFormat::Csr);
        assert!(conv.sparsity() > 0.0);
    }

    #[test]
    fn channel_pruning_prefers_low_norm_channels() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        // Zero out channel 1 of the first conv: it must be pruned first.
        {
            let conv = model
                .network
                .layer_mut(0)
                .unwrap()
                .as_any_mut()
                .downcast_mut::<Conv2d>()
                .unwrap();
            let cols = conv.in_channels() * 9;
            for i in cols..2 * cols {
                conv.weight_mut().value.data_mut()[i] = 0.0;
            }
        }
        let before = model.plan.channels(&model.network, 0);
        channel_prune_to(&mut model, 0.01);
        // Group 0's zeroed channel is the global minimum-norm channel.
        assert!(model.plan.channels(&model.network, 0) < before);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn bad_target_rejected() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        channel_prune_to(&mut model, 1.0);
    }

    #[test]
    fn try_apis_reject_bad_operating_points() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        assert!(matches!(
            try_channel_prune_to(&mut model, 1.0),
            Err(cnn_stack_nn::Error::InvalidConfig(_))
        ));
        assert!(matches!(
            try_channel_prune_to(&mut model, -0.1),
            Err(cnn_stack_nn::Error::InvalidConfig(_))
        ));

        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4).compress(
            CompressionChoice::WeightPruning {
                sparsity_pct: 120.0,
            },
        );
        assert!(matches!(
            try_materialise(&cfg, 0.1),
            Err(cnn_stack_nn::Error::InvalidConfig(_))
        ));

        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4).compress(
            CompressionChoice::TernaryQuantisation {
                threshold: f64::NAN,
            },
        );
        assert!(matches!(
            try_materialise(&cfg, 0.1),
            Err(cnn_stack_nn::Error::InvalidConfig(_))
        ));

        // A valid point still materialises through the fallible path.
        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4);
        assert!(try_materialise(&cfg, 0.1).is_ok());
    }
}
