//! Materialising a stack configuration into a concrete, surgically
//! modified network.

use crate::config::{CompressionChoice, StackConfig};
use cnn_stack_compress::{magnitude, ttq};
use cnn_stack_models::Model;
use cnn_stack_nn::network::set_network_format;
use cnn_stack_nn::{Conv2d, ResidualBlock};

/// Builds the configured model and applies the configured compression
/// for real: weight pruning installs magnitude masks, channel pruning
/// performs structural surgery down to the target parameter compression,
/// and quantisation ternarises every weight tensor. Finally the weight
/// format is applied network-wide.
///
/// `width` scales all channel counts (1.0 = the paper's full-size
/// models; smaller values build proportionally thinner networks for fast
/// functional runs).
///
/// # Panics
///
/// Panics if an operating point is out of range (e.g. sparsity ≥ 100 %).
pub fn materialise(cfg: &StackConfig, width: f64) -> Model {
    let mut model = cfg.model.build_width(10, width);
    match cfg.compression {
        CompressionChoice::Plain => {}
        CompressionChoice::WeightPruning { sparsity_pct } => {
            magnitude::prune_network(&mut model.network, sparsity_pct / 100.0);
        }
        CompressionChoice::ChannelPruning { compression_pct } => {
            channel_prune_to(&mut model, compression_pct / 100.0);
        }
        CompressionChoice::TernaryQuantisation { threshold } => {
            // Trained TTQ's sparsity is a property of the fine-tuned
            // weight distribution, not of the raw threshold on untrained
            // weights; hit the calibrated sparsity for this model and
            // threshold (Fig. 3(c) / Table III), then ternarise the
            // survivors.
            let sparsity =
                cnn_stack_compress::AccuracyModel::ttq_sparsity(cfg.model, threshold) / 100.0;
            magnitude::prune_network(&mut model.network, sparsity.min(0.99));
            ttq::ttq_quantise(&mut model.network, 0.0);
        }
    }
    set_network_format(&mut model.network, cfg.format);
    model
}

/// Structurally prunes channels (lowest weight-magnitude saliency first,
/// the cheap offline proxy for the trained Fisher signal) until the
/// parameter compression target is reached or nothing more can be
/// removed.
///
/// # Panics
///
/// Panics if `target` is not in `[0, 1)`.
#[allow(clippy::needless_range_loop)]
pub fn channel_prune_to(model: &mut Model, target: f64) {
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    let shape = [1usize, 3, 32, 32];
    let original: usize = model
        .network
        .descriptors(&shape)
        .iter()
        .map(|d| d.weight_elems)
        .sum();
    // Maintain producer-filter norms incrementally: pruning (g, c) drops
    // one row of group g's producer and one input-channel slice of its
    // consumer; in the chain-structured plans the consumer is group
    // g+1's producer, so only norms[g] and norms[g+1] change.
    let mut norms: Vec<Vec<f64>> = (0..model.plan.group_count())
        .map(|g| group_channel_norms(model, g))
        .collect();
    'outer: loop {
        let now: usize = model
            .network
            .descriptors(&shape)
            .iter()
            .map(|d| d.weight_elems)
            .sum();
        let remaining = target - (1.0 - now as f64 / original as f64);
        if remaining <= 0.0 {
            break;
        }
        // Recomputing descriptors per channel is quadratic; prune a small
        // batch between recomputes (slight overshoot is fine — the
        // paper's compression rates are themselves one-decimal figures).
        let batch = ((remaining * model.plan.total_channels(&model.network) as f64 / 2.0).ceil()
            as usize)
            .clamp(1, 64);
        for _ in 0..batch {
            // Pick the (group, channel) with the smallest producer-filter
            // L2 norm among groups that can still shrink.
            let mut best: Option<(usize, usize, f64)> = None;
            for g in 0..model.plan.group_count() {
                if !model.plan.can_prune(&model.network, g) {
                    continue;
                }
                for (c, &n) in norms[g].iter().enumerate() {
                    if best.is_none_or(|(_, _, b)| n < b) {
                        best = Some((g, c, n));
                    }
                }
            }
            let Some((g, c, _)) = best else {
                break 'outer; // nothing prunable remains
            };
            model.plan.prune(&mut model.network, g, c);
            norms[g].remove(c);
            if g + 1 < norms.len() {
                norms[g + 1] = group_channel_norms(model, g + 1);
            }
        }
    }
}

/// L2 norms of each producer-filter row in a prune group.
fn group_channel_norms(model: &mut Model, g: usize) -> Vec<f64> {
    use cnn_stack_models::PruneGroup;
    let group = model.plan.groups()[g];
    match group {
        PruneGroup::ConvToConv { conv, .. }
        | PruneGroup::ConvToDepthwise { conv, .. }
        | PruneGroup::ConvToLinear { conv, .. } => {
            let layer = &model.network.layers()[conv];
            let conv = layer
                .as_any()
                .downcast_ref::<Conv2d>()
                .expect("plan points at a Conv2d");
            conv_row_norms(conv)
        }
        PruneGroup::ResidualInner { block } => {
            let layer = &model.network.layers()[block];
            let block = layer
                .as_any()
                .downcast_ref::<ResidualBlock>()
                .expect("plan points at a ResidualBlock");
            conv_row_norms(block.conv1())
        }
    }
}

fn conv_row_norms(conv: &Conv2d) -> Vec<f64> {
    let m = conv.weight_matrix();
    let (rows, cols) = m.shape().matrix();
    (0..rows)
        .map(|r| {
            m.data()[r * cols..(r + 1) * cols]
                .iter()
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformChoice;
    use cnn_stack_models::ModelKind;
    use cnn_stack_nn::{ExecConfig, Phase, WeightFormat};
    use cnn_stack_tensor::Tensor;

    #[test]
    fn plain_materialises_dense() {
        let cfg = StackConfig::plain(ModelKind::MobileNet, PlatformChoice::OdroidXu4);
        let mut model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        assert!(descs.iter().all(|d| d.format == WeightFormat::Dense));
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn weight_pruning_yields_sparse_csr_network() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .compress(CompressionChoice::WeightPruning { sparsity_pct: 70.0 });
        let model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        let conv = descs.iter().find(|d| d.name.starts_with("conv")).unwrap();
        assert_eq!(conv.format, WeightFormat::Csr);
        assert!(conv.sparsity() > 0.6, "sparsity {}", conv.sparsity());
    }

    #[test]
    fn channel_pruning_hits_compression_target() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).compress(
            CompressionChoice::ChannelPruning {
                compression_pct: 60.0,
            },
        );
        let mut model = materialise(&cfg, 0.2);
        let mut full = ModelKind::Vgg16.build_width(10, 0.2);
        let now = model.network.num_params();
        let orig = full.network.num_params();
        let compression = 1.0 - now as f64 / orig as f64;
        assert!(
            (0.55..0.75).contains(&compression),
            "compression {compression}"
        );
        // Still dense format and runnable.
        let y = model.network.forward(
            &Tensor::zeros([1, 3, 32, 32]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn quantisation_is_ternary_and_csr() {
        let cfg = StackConfig::plain(ModelKind::ResNet18, PlatformChoice::OdroidXu4)
            .compress(CompressionChoice::TernaryQuantisation { threshold: 0.1 });
        let model = materialise(&cfg, 0.1);
        let descs = model.network.descriptors(&[1, 3, 32, 32]);
        let conv = descs.iter().find(|d| d.name.starts_with("conv")).unwrap();
        assert_eq!(conv.format, WeightFormat::Csr);
        assert!(conv.sparsity() > 0.0);
    }

    #[test]
    fn channel_pruning_prefers_low_norm_channels() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        // Zero out channel 1 of the first conv: it must be pruned first.
        {
            let conv = model
                .network
                .layer_mut(0)
                .unwrap()
                .as_any_mut()
                .downcast_mut::<Conv2d>()
                .unwrap();
            let cols = conv.in_channels() * 9;
            for i in cols..2 * cols {
                conv.weight_mut().value.data_mut()[i] = 0.0;
            }
        }
        let before = model.plan.channels(&model.network, 0);
        channel_prune_to(&mut model, 0.01);
        // Group 0's zeroed channel is the global minimum-norm channel.
        assert!(model.plan.channels(&model.network, 0) < before);
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn bad_target_rejected() {
        let mut model = ModelKind::Vgg16.build_width(10, 0.1);
        channel_prune_to(&mut model, 1.0);
    }
}
