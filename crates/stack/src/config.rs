//! Stack configuration: one choice per layer of the paper's Table I.

use cnn_stack_compress::Technique;
use cnn_stack_hwsim::{intel_i7, odroid_xu4, Backend, Platform};
use cnn_stack_models::ModelKind;
use cnn_stack_nn::{ConvAlgorithm, Error, GuardConfig, WeightFormat};
use cnn_stack_obs::ObsLevel;

/// Layer 2 of the stack: the compression technique and its operating
/// point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompressionChoice {
    /// The uncompressed dense baseline ("Plain" in Fig. 4).
    Plain,
    /// Deep Compression weight pruning at a sparsity (percent).
    WeightPruning {
        /// Target weight sparsity in percent.
        sparsity_pct: f64,
    },
    /// Fisher channel pruning at a parameter compression rate (percent).
    ChannelPruning {
        /// Target parameter compression in percent.
        compression_pct: f64,
    },
    /// Trained ternary quantisation at a threshold.
    TernaryQuantisation {
        /// TTQ threshold `t` (the paper sweeps 0–0.20).
        threshold: f64,
    },
}

impl CompressionChoice {
    /// The paper technique this choice instantiates (`None` for plain).
    pub fn technique(&self) -> Option<Technique> {
        match self {
            CompressionChoice::Plain => None,
            CompressionChoice::WeightPruning { .. } => Some(Technique::WeightPruning),
            CompressionChoice::ChannelPruning { .. } => Some(Technique::ChannelPruning),
            CompressionChoice::TernaryQuantisation { .. } => Some(Technique::TernaryQuantisation),
        }
    }

    /// The technique's operating point (`0.0` for plain).
    pub fn operating_point(&self) -> f64 {
        match *self {
            CompressionChoice::Plain => 0.0,
            CompressionChoice::WeightPruning { sparsity_pct } => sparsity_pct,
            CompressionChoice::ChannelPruning { compression_pct } => compression_pct,
            CompressionChoice::TernaryQuantisation { threshold } => threshold,
        }
    }

    /// The weight format the paper assigns to this technique (§V-C):
    /// CSR for the sparsity-inducing techniques, dense otherwise.
    pub fn paper_format(&self) -> WeightFormat {
        match self {
            CompressionChoice::WeightPruning { .. }
            | CompressionChoice::TernaryQuantisation { .. } => WeightFormat::Csr,
            _ => WeightFormat::Dense,
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            CompressionChoice::Plain => "Plain",
            CompressionChoice::WeightPruning { .. } => "Weight Pruning",
            CompressionChoice::ChannelPruning { .. } => "Channel Pruning",
            CompressionChoice::TernaryQuantisation { .. } => "Quantisation",
        }
    }
}

/// Layer 5 of the stack: which of the paper's platforms runs the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlatformChoice {
    /// The embedded heterogeneous board (§IV-E.1).
    OdroidXu4,
    /// The desktop CPU (§IV-E.2).
    IntelI7,
}

impl PlatformChoice {
    /// Both platforms, in the paper's order.
    pub fn all() -> [PlatformChoice; 2] {
        [PlatformChoice::OdroidXu4, PlatformChoice::IntelI7]
    }

    /// The platform descriptor.
    pub fn platform(&self) -> Platform {
        match self {
            PlatformChoice::OdroidXu4 => odroid_xu4(),
            PlatformChoice::IntelI7 => intel_i7(),
        }
    }
}

/// How the host-execution inference plan is constructed (the layer 3/4
/// boundary of the stack).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// One global algorithm/format choice applied to every layer
    /// (`InferencePlan::compile`); this is the paper's sweep regime,
    /// where each grid cell fixes a single stack-wide option.
    #[default]
    Global,
    /// Pass-based plan compilation (`PlanCompiler::standard`):
    /// batch-norm fold + conv/linear+ReLU fusion, then a per-layer
    /// algorithm/format choice from the cost model. When [`StackConfig`]
    /// carries a non-default `algorithm` or `format`, those act as
    /// global overrides and the selection pass stands down.
    Selection,
}

/// A complete across-stack configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StackConfig {
    /// Layer 1: the model.
    pub model: ModelKind,
    /// Layer 2: compression.
    pub compression: CompressionChoice,
    /// Layer 3: weight format (defaults to the paper's per-technique
    /// assignment) and convolution algorithm.
    pub format: WeightFormat,
    /// Layer 3: convolution lowering.
    pub algorithm: ConvAlgorithm,
    /// Layer 4: execution backend.
    pub backend: Backend,
    /// Layer 4: CPU thread count.
    pub threads: usize,
    /// Layer 5: target hardware.
    pub platform: PlatformChoice,
    /// Runtime guard level for host executions: [`GuardConfig::Off`]
    /// (the default) runs at full speed, `BoundaryCheck` validates
    /// activations at layer boundaries, `Paranoid` additionally scans
    /// inputs and weights before every run.
    pub guard: GuardConfig,
    /// How the host-execution plan is built: [`PlanMode::Global`] (the
    /// default, one algorithm everywhere) or [`PlanMode::Selection`]
    /// (fused, per-layer choices from the pass compiler).
    pub plan: PlanMode,
    /// Peak activation-arena bytes the host-execution plan may claim.
    /// `None` (the default) defers to the platform's envelope —
    /// [`Platform::arena_budget_bytes`], a quarter of installed RAM.
    pub plan_budget: Option<usize>,
    /// Observability level for the cell's evaluation:
    /// [`ObsLevel::Off`] (the default) records nothing,
    /// [`ObsLevel::Metrics`] attaches a metrics snapshot to the
    /// [`CellResult`](crate::runner::CellResult), [`ObsLevel::Trace`]
    /// additionally records spans for the modelled timing and every
    /// host-execution step.
    pub obs: ObsLevel,
}

impl StackConfig {
    /// The plain dense single-threaded baseline on a platform.
    pub fn plain(model: ModelKind, platform: PlatformChoice) -> Self {
        StackConfig {
            model,
            compression: CompressionChoice::Plain,
            format: WeightFormat::Dense,
            algorithm: ConvAlgorithm::Direct,
            backend: Backend::OpenMp,
            threads: 1,
            platform,
            guard: GuardConfig::Off,
            plan: PlanMode::Global,
            plan_budget: None,
            obs: ObsLevel::Off,
        }
    }

    /// Applies a compression choice, also selecting the paper's format
    /// for that technique (builder style).
    pub fn compress(mut self, choice: CompressionChoice) -> Self {
        self.compression = choice;
        self.format = choice.paper_format();
        self
    }

    /// Sets the thread count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        self.threads = threads;
        self
    }

    /// Sets the execution backend (builder style).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the weight format (builder style).
    pub fn format(mut self, format: WeightFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the runtime guard level for host executions (builder style).
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the host plan-construction mode (builder style).
    pub fn plan(mut self, plan: PlanMode) -> Self {
        self.plan = plan;
        self
    }

    /// Caps the host plan's arena footprint (builder style), overriding
    /// the platform's default envelope.
    pub fn plan_budget(mut self, bytes: usize) -> Self {
        self.plan_budget = Some(bytes);
        self
    }

    /// Sets the observability level for evaluations (builder style).
    pub fn obs(mut self, obs: ObsLevel) -> Self {
        self.obs = obs;
        self
    }

    /// Starts a validating builder seeded with the plain dense
    /// single-threaded baseline on `platform`.
    ///
    /// Unlike the panicking [`threads`](Self::threads) shim, the builder
    /// defers every check to [`build`](StackConfigBuilder::build), which
    /// reports bad combinations — zero threads, CSR weights with the
    /// Winograd lowering — as [`Error::InvalidConfig`] values.
    ///
    /// # Example
    ///
    /// ```
    /// use cnn_stack_core::config::{PlatformChoice, StackConfig};
    /// use cnn_stack_models::ModelKind;
    ///
    /// let cfg = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
    ///     .threads(4)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.threads, 4);
    /// assert!(StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
    ///     .threads(0)
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder(model: ModelKind, platform: PlatformChoice) -> StackConfigBuilder {
        StackConfigBuilder {
            config: StackConfig::plain(model, platform),
        }
    }

    /// Predicted top-1 accuracy (percent) of this configuration, from the
    /// calibrated response curves.
    pub fn predicted_accuracy(&self) -> f64 {
        use cnn_stack_compress::AccuracyModel;
        match self.compression.technique() {
            None => AccuracyModel::baseline(self.model),
            Some(t) => AccuracyModel::accuracy(self.model, t, self.compression.operating_point()),
        }
    }
}

/// Validating builder for [`StackConfig`]; see [`StackConfig::builder`].
#[derive(Clone, Debug)]
pub struct StackConfigBuilder {
    config: StackConfig,
}

impl StackConfigBuilder {
    /// Applies a compression choice, also selecting the paper's format
    /// for that technique.
    pub fn compress(mut self, choice: CompressionChoice) -> Self {
        self.config = self.config.compress(choice);
        self
    }

    /// Sets the thread count (validated at [`build`](Self::build)).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Overrides the weight format (validated against the convolution
    /// algorithm at [`build`](Self::build)).
    pub fn format(mut self, format: WeightFormat) -> Self {
        self.config.format = format;
        self
    }

    /// Sets the convolution lowering algorithm (validated against the
    /// weight format at [`build`](Self::build)).
    pub fn algorithm(mut self, algorithm: ConvAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the runtime guard level for host executions.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.config.guard = guard;
        self
    }

    /// Sets the host plan-construction mode.
    pub fn plan(mut self, plan: PlanMode) -> Self {
        self.config.plan = plan;
        self
    }

    /// Caps the host plan's arena footprint, overriding the platform's
    /// default envelope.
    pub fn plan_budget(mut self, bytes: usize) -> Self {
        self.config.plan_budget = Some(bytes);
        self
    }

    /// Sets the observability level for evaluations.
    pub fn obs(mut self, obs: ObsLevel) -> Self {
        self.config.obs = obs;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `threads == 0`, or if the
    /// weight format is CSR while the algorithm is a transform-domain
    /// one (Winograd F(2×2)/F(4×4) or FFT) — those transforms need
    /// dense filter taps, so the combinations have no execution path
    /// (the paper pairs transform algorithms with dense formats only,
    /// §V-C).
    pub fn build(self) -> Result<StackConfig, Error> {
        if self.config.threads == 0 {
            return Err(Error::InvalidConfig(
                "at least one thread required".to_string(),
            ));
        }
        if self.config.format == WeightFormat::Csr
            && matches!(
                self.config.algorithm,
                ConvAlgorithm::Winograd | ConvAlgorithm::WinogradF4 | ConvAlgorithm::Fft
            )
        {
            return Err(Error::InvalidConfig(
                "CSR weight format cannot be combined with a transform-domain \
                 algorithm (Winograd/FFT): the transform needs dense filter taps"
                    .to_string(),
            ));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_defaults() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::OdroidXu4);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.format, WeightFormat::Dense);
        assert_eq!(cfg.compression.label(), "Plain");
        assert!((cfg.predicted_accuracy() - 92.20).abs() < 1e-9);
    }

    #[test]
    fn compress_assigns_paper_format() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).compress(
            CompressionChoice::WeightPruning {
                sparsity_pct: 76.54,
            },
        );
        assert_eq!(cfg.format, WeightFormat::Csr);
        let cfg = cfg.compress(CompressionChoice::ChannelPruning {
            compression_pct: 88.48,
        });
        assert_eq!(cfg.format, WeightFormat::Dense);
    }

    #[test]
    fn operating_points_round_trip() {
        let c = CompressionChoice::TernaryQuantisation { threshold: 0.09 };
        assert_eq!(c.operating_point(), 0.09);
        assert_eq!(c.technique(), Some(Technique::TernaryQuantisation));
        assert_eq!(CompressionChoice::Plain.technique(), None);
    }

    #[test]
    fn platform_choices_materialise() {
        assert_eq!(PlatformChoice::OdroidXu4.platform().name, "Odroid-XU4");
        assert_eq!(PlatformChoice::IntelI7.platform().name, "Intel Core i7");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7).threads(0);
    }

    #[test]
    fn builder_accepts_valid_config() {
        let cfg = StackConfig::builder(ModelKind::ResNet18, PlatformChoice::OdroidXu4)
            .compress(CompressionChoice::WeightPruning { sparsity_pct: 70.0 })
            .threads(4)
            .backend(Backend::OpenMp)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.format, WeightFormat::Csr);
        assert_eq!(cfg.model, ModelKind::ResNet18);
    }

    #[test]
    fn builder_rejects_zero_threads() {
        let err = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .threads(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn guard_level_defaults_off_and_is_configurable() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
        assert_eq!(cfg.guard, GuardConfig::Off);
        let cfg = cfg.guard(GuardConfig::BoundaryCheck);
        assert_eq!(cfg.guard, GuardConfig::BoundaryCheck);
        let cfg = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .guard(GuardConfig::Paranoid)
            .build()
            .unwrap();
        assert_eq!(cfg.guard, GuardConfig::Paranoid);
    }

    #[test]
    fn plan_mode_defaults_global_and_is_configurable() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
        assert_eq!(cfg.plan, PlanMode::Global);
        let cfg = cfg.plan(PlanMode::Selection);
        assert_eq!(cfg.plan, PlanMode::Selection);
        let cfg = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .plan(PlanMode::Selection)
            .build()
            .unwrap();
        assert_eq!(cfg.plan, PlanMode::Selection);
    }

    #[test]
    fn obs_level_defaults_off_and_is_configurable() {
        let cfg = StackConfig::plain(ModelKind::Vgg16, PlatformChoice::IntelI7);
        assert_eq!(cfg.obs, ObsLevel::Off);
        let cfg = cfg.obs(ObsLevel::Metrics);
        assert_eq!(cfg.obs, ObsLevel::Metrics);
        let cfg = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .obs(ObsLevel::Trace)
            .build()
            .unwrap();
        assert_eq!(cfg.obs, ObsLevel::Trace);
    }

    #[test]
    fn builder_rejects_csr_winograd() {
        let err = StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
            .compress(CompressionChoice::WeightPruning { sparsity_pct: 70.0 })
            .algorithm(ConvAlgorithm::Winograd)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        assert!(err.to_string().contains("Winograd"));
        // Dense + Winograd is a supported point.
        assert!(
            StackConfig::builder(ModelKind::Vgg16, PlatformChoice::IntelI7)
                .algorithm(ConvAlgorithm::Winograd)
                .build()
                .is_ok()
        );
    }
}
