//! Serving a configured stack cell: the bridge from [`StackConfig`]
//! (which model, compressed how) to a running multi-tenant
//! [`Server`] (batched, guarded, under admission control).
//!
//! [`runner::evaluate`](crate::runner::evaluate) answers "how fast is
//! one inference of this cell"; this module answers "what does this
//! cell sustain under open-loop traffic" by materialising the cell's
//! network once per session replica and handing it to the serving
//! layer.

use crate::build::try_materialise;
use crate::config::StackConfig;
use cnn_stack_serve::{ServeConfig, ServeError, Server};

/// Starts a server over the network a stack cell materialises.
///
/// The model layer (architecture, compression surgery, weight format)
/// comes from `cfg` at the given `width`; everything serving-side —
/// batching policy, queue depth, deadlines, guard level, engine
/// threads — comes from `serve_cfg`. The serving engine always runs
/// the packed im2col path (the fastest measured host configuration),
/// so `cfg`'s `algorithm`/`backend`/`platform` fields, which drive the
/// *modelled* evaluation, do not apply here.
///
/// # Errors
///
/// Returns [`ServeError::Engine`] when the cell cannot be materialised
/// (invalid operating point), or any session/plan error from server
/// start-up.
pub fn serve_cell(
    cfg: &StackConfig,
    width: f64,
    serve_cfg: ServeConfig,
) -> Result<Server, ServeError> {
    // Validate the cell once up front so a bad operating point surfaces
    // here as an error instead of panicking inside a replica build.
    try_materialise(cfg, width)?;
    let cfg = *cfg;
    Server::start(serve_cfg, move || {
        try_materialise(&cfg, width)
            .expect("validated above; materialisation is deterministic")
            .network
    })
}
