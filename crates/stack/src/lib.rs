//! The **Deep Learning Inference Stack** (§II) — the paper's primary
//! contribution — as an executable artifact.
//!
//! A [`StackConfig`] fixes one choice at each of the five layers of
//! Table I:
//!
//! 1. **Neural network model** — VGG-16 / ResNet-18 / MobileNet.
//! 2. **Machine learning technique** — plain, weight pruning, channel
//!    pruning, or ternary quantisation, at an operating point.
//! 3. **Data format & algorithm** — dense or CSR weights; direct or
//!    im2col convolution.
//! 4. **Systems technique** — OpenMP threads, hand-tuned OpenCL, or
//!    CLBlast.
//! 5. **Hardware** — Odroid-XU4 or Intel Core i7.
//!
//! [`build`] materialises the configured network (performing real
//! pruning/quantisation surgery), [`runner`] evaluates a configuration
//! end-to-end (modelled time, optionally measured host time, memory,
//! accuracy), and [`pareto`] explores the accuracy trade-off curves and
//! selects operating points (Fig. 3 / Tables III & V).
//!
//! # Example
//!
//! ```
//! use cnn_stack_core::{PlatformChoice, StackConfig};
//! use cnn_stack_models::ModelKind;
//!
//! let cfg = StackConfig::plain(ModelKind::ResNet18, PlatformChoice::IntelI7).threads(4);
//! let cell = cnn_stack_core::runner::evaluate(&cfg);
//! assert!(cell.modelled_s > 0.0);
//! assert!(cell.memory_mb > 0.0);
//! ```

pub mod build;
pub mod config;
pub mod pareto;
pub mod runner;
pub mod serve;

pub use build::{materialise, try_materialise};
pub use cnn_stack_nn::{GuardConfig, HealthReport};
pub use cnn_stack_obs::ObsLevel;
pub use config::{CompressionChoice, PlanMode, PlatformChoice, StackConfig, StackConfigBuilder};
pub use pareto::{detect_elbow, pareto_curve, ParetoPoint};
pub use runner::{evaluate, try_evaluate_with, CellResult};
pub use serve::serve_cell;
