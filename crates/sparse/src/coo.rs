//! Coordinate (COO) format — the simplest sparse representation, one
//! `(row, col, value)` triplet per non-zero.
//!
//! The paper evaluates CSR only and "leaves the exploration of other
//! formats for future work" (§IV-C); COO is the first entry of that
//! exploration (see the `format_comparison` ablation bench). Its
//! per-nonzero cost is 12 bytes (two u32 indices + one f32) against CSR's
//! 8, but it has no per-row pointer overhead, so it wins for very tall
//! or hyper-sparse matrices.

use crate::csr::CsrMatrix;
use cnn_stack_tensor::Tensor;
use std::fmt;

/// A coordinate-format sparse matrix with row-major-sorted triplets.
///
/// # Example
///
/// ```
/// use cnn_stack_sparse::CooMatrix;
/// use cnn_stack_tensor::Tensor;
///
/// let d = Tensor::from_vec([2, 2], vec![0.0, 1.0, 2.0, 0.0]);
/// let m = CooMatrix::from_dense(&d, 0.0);
/// assert_eq!(m.nnz(), 2);
/// assert!(m.to_dense().allclose(&d, 0.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CooMatrix {
    /// Converts a dense matrix, dropping entries with `|v| <= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not rank-2.
    pub fn from_dense(dense: &Tensor, threshold: f32) -> Self {
        let (rows, cols) = dense.shape().matrix();
        let mut row_indices = Vec::new();
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.data()[r * cols + c];
                if v.abs() > threshold {
                    row_indices.push(r as u32);
                    col_indices.push(c as u32);
                    values.push(v);
                }
            }
        }
        CooMatrix {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Expands back to dense.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros([self.rows, self.cols]);
        for i in 0..self.nnz() {
            out.data_mut()
                [self.row_indices[i] as usize * self.cols + self.col_indices[i] as usize] =
                self.values[i];
        }
        out
    }

    /// Sparse × dense product `C = self · B`.
    ///
    /// Each triplet costs two index loads and one scattered accumulate —
    /// strictly worse locality than CSR's row-grouped traversal, which is
    /// why COO is a storage/interchange format rather than a compute one.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2 or dimensions disagree.
    pub fn spmm(&self, b: &Tensor) -> Tensor {
        let (bk, bn) = b.shape().matrix();
        assert_eq!(bk, self.cols, "inner dimension mismatch");
        let mut out = Tensor::zeros([self.rows, bn]);
        let odata = out.data_mut();
        for i in 0..self.nnz() {
            let r = self.row_indices[i] as usize;
            let c = self.col_indices[i] as usize;
            let v = self.values[i];
            let brow = &b.data()[c * bn..(c + 1) * bn];
            for (o, &bv) in odata[r * bn..(r + 1) * bn].iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
        out
    }

    /// Exact heap bytes: 12 per non-zero.
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * (4 + 4 + 4)
    }

    /// Converts to CSR (triplets are already row-major sorted).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.rows + 1];
        for &r in &self.row_indices {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix::from_raw(
            self.rows,
            self.cols,
            indptr,
            self.col_indices.clone(),
            self.values.clone(),
        )
    }
}

impl fmt::Debug for CooMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CooMatrix({}x{}, nnz={})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::matmul;

    fn sample() -> Tensor {
        Tensor::from_vec(
            [3, 4],
            vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 3.0, -1.0, 0.5, 0.0, 0.0],
        )
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let m = CooMatrix::from_dense(&d, 0.0);
        assert_eq!(m.nnz(), 5);
        assert!(m.to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn spmm_matches_dense() {
        let a = sample();
        let b = Tensor::from_fn([4, 3], |i| i as f32 * 0.5 - 2.0);
        let want = matmul(&a, &b);
        let got = CooMatrix::from_dense(&a, 0.0).spmm(&b);
        assert!(want.allclose(&got, 1e-5));
    }

    #[test]
    fn to_csr_preserves_structure() {
        let d = sample();
        let coo = CooMatrix::from_dense(&d, 0.0);
        let csr = coo.to_csr();
        assert!(csr.to_dense().allclose(&d, 0.0));
        assert_eq!(csr.nnz(), coo.nnz());
    }

    #[test]
    fn storage_is_12_bytes_per_nnz() {
        let m = CooMatrix::from_dense(&sample(), 0.0);
        assert_eq!(m.storage_bytes(), 5 * 12);
    }

    #[test]
    fn coo_vs_csr_storage_tradeoff() {
        // Hyper-sparse tall matrix: COO (no row pointers) wins.
        let mut tall = Tensor::zeros([1000, 4]);
        tall.data_mut()[0] = 1.0;
        let coo = CooMatrix::from_dense(&tall, 0.0);
        let csr = CsrMatrix::from_dense(&tall, 0.0);
        assert!(coo.storage_bytes() < csr.storage_bytes());
        // Dense-ish wide matrix: CSR's 8 B/nnz wins.
        let wide = Tensor::ones([2, 512]);
        let coo = CooMatrix::from_dense(&wide, 0.0);
        let csr = CsrMatrix::from_dense(&wide, 0.0);
        assert!(csr.storage_bytes() < coo.storage_bytes());
    }

    #[test]
    fn threshold_drops_small_entries() {
        // Values are {1, 2, 3, -1, 0.5}; |v| > 0.6 keeps four of them.
        let m = CooMatrix::from_dense(&sample(), 0.6);
        assert_eq!(m.nnz(), 4);
    }
}
