//! Byte-exact memory accounting for weight storage formats.
//!
//! Tables IV and VI of the paper report runtime memory footprints and show
//! the counter-intuitive headline result that CSR storage of pruned models
//! is *larger* than dense storage ("in dense format the matrix is an array
//! of 9 floating point elements for the 3×3 filter, while in CSR format
//! there are 3 arrays ... with additional parameters", §V-D). This module
//! provides the arithmetic behind those tables.

use std::fmt;

/// Size of one matrix-format choice, in bytes, broken into its arrays.
///
/// # Example
///
/// ```
/// use cnn_stack_sparse::FormatCost;
///
/// // A 3x3 filter that is 50% sparse: CSR still loses to dense.
/// let dense = FormatCost::dense(1, 9);
/// let csr = FormatCost::csr(1, 9, 5);
/// assert!(csr.total() > dense.total());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FormatCost {
    /// Bytes of f32 payload values.
    pub values: usize,
    /// Bytes of per-nonzero column (or row) indices.
    pub indices: usize,
    /// Bytes of row- (or column-) pointer array.
    pub pointers: usize,
}

impl FormatCost {
    /// Cost of storing an `rows × cols` matrix densely.
    pub fn dense(rows: usize, cols: usize) -> Self {
        FormatCost {
            values: rows * cols * 4,
            indices: 0,
            pointers: 0,
        }
    }

    /// Cost of storing an `rows × cols` matrix with `nnz` non-zeros in CSR
    /// (u32 column indices, usize row pointers — the layout of
    /// [`crate::CsrMatrix`]).
    ///
    /// # Panics
    ///
    /// Panics if `nnz > rows * cols`.
    pub fn csr(rows: usize, cols: usize, nnz: usize) -> Self {
        assert!(nnz <= rows * cols, "nnz {nnz} exceeds matrix capacity");
        FormatCost {
            values: nnz * 4,
            indices: nnz * 4,
            pointers: (rows + 1) * 8,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.values + self.indices + self.pointers
    }
}

impl fmt::Display for FormatCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B (values {} + indices {} + pointers {})",
            self.total(),
            self.values,
            self.indices,
            self.pointers
        )
    }
}

/// Bytes for dense storage of an `rows × cols` f32 matrix.
pub fn dense_bytes(rows: usize, cols: usize) -> usize {
    FormatCost::dense(rows, cols).total()
}

/// Bytes for CSR storage of an `rows × cols` matrix with `nnz` stored
/// entries.
///
/// # Panics
///
/// Panics if `nnz > rows * cols`.
pub fn csr_bytes(rows: usize, cols: usize, nnz: usize) -> usize {
    FormatCost::csr(rows, cols, nnz).total()
}

/// The break-even *density* below which CSR storage becomes smaller than
/// dense storage for an `rows × cols` matrix. At 8 bytes per stored
/// non-zero (value + index) versus 4 bytes per dense element, CSR wins
/// only below ~50 % density minus the row-pointer overhead.
pub fn csr_breakeven_density(rows: usize, cols: usize) -> f64 {
    let dense = dense_bytes(rows, cols) as f64;
    let pointers = ((rows + 1) * 8) as f64;
    // dense = pointers + nnz * 8  =>  nnz = (dense - pointers) / 8.
    ((dense - pointers) / 8.0 / (rows * cols) as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_is_4_bytes_per_element() {
        assert_eq!(dense_bytes(3, 3), 36);
        assert_eq!(dense_bytes(512, 512), 512 * 512 * 4);
    }

    #[test]
    fn csr_cost_formula() {
        // 10 rows, 100 nnz: 100*4 values + 100*4 indices + 11*8 pointers.
        assert_eq!(csr_bytes(10, 50, 100), 400 + 400 + 88);
    }

    #[test]
    fn paper_3x3_filter_observation() {
        // One 3x3 filter at the paper's ~77% VGG sparsity (2 of 9 kept):
        // dense = 36 B, CSR = 2*8 + 2*8 = 32? No: 2 values*4 + 2 idx*4 +
        // 2 pointers*8 = 8 + 8 + 16 = 32 — CSR only just wins for a single
        // row; but per-filter-row layouts (9 rows of 1) lose badly.
        let dense = dense_bytes(1, 9);
        assert_eq!(dense, 36);
        assert_eq!(csr_bytes(1, 9, 2), 8 + 8 + 16);
        // 50% sparsity: CSR loses.
        assert!(csr_bytes(1, 9, 5) > dense);
        // Layer stored as [out_c rows x 9]: at 50% density CSR always loses.
        assert!(csr_bytes(64, 9, 64 * 5) > dense_bytes(64, 9));
    }

    #[test]
    fn breakeven_density_near_half_for_wide_rows() {
        let be = csr_breakeven_density(64, 4608); // VGG conv matrix shape
        assert!(be > 0.45 && be < 0.5, "breakeven {be}");
    }

    #[test]
    fn breakeven_zero_for_tiny_matrices() {
        // Pointer overhead alone exceeds dense cost.
        assert_eq!(csr_breakeven_density(10, 1), 0.0);
    }

    #[test]
    fn display_is_descriptive() {
        let c = FormatCost::csr(2, 4, 3);
        let s = c.to_string();
        assert!(s.contains("values") && s.contains("pointers"));
    }

    #[test]
    #[should_panic(expected = "exceeds matrix capacity")]
    fn csr_nnz_validated() {
        let _ = csr_bytes(2, 2, 5);
    }

    #[test]
    fn format_cost_matches_csr_matrix_storage() {
        use crate::csr::CsrMatrix;
        use cnn_stack_tensor::Tensor;
        let d = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let m = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m.storage_bytes(), csr_bytes(2, 3, 3));
    }
}
