//! Block Compressed Sparse Row (BSR): CSR over fixed-size dense blocks.
//!
//! Part of the format exploration the paper defers (§IV-C). BSR stores
//! one column index per *block* instead of per element, amortising index
//! overhead by `block_size²` and restoring dense-kernel locality inside
//! blocks — the structured-sparsity story of the paper's [26]/[30]
//! citations (group Lasso pushes weights towards exactly this layout).
//! The trade-off: zeros inside a partially occupied block are stored
//! explicitly, so unstructured pruning fills many blocks and erases the
//! advantage. The `format_comparison` bench quantifies both regimes.

use cnn_stack_tensor::Tensor;
use std::fmt;

/// A BSR matrix with square `b × b` blocks.
///
/// # Example
///
/// ```
/// use cnn_stack_sparse::BsrMatrix;
/// use cnn_stack_tensor::Tensor;
///
/// let d = Tensor::from_vec([2, 4], vec![1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
/// let m = BsrMatrix::from_dense(&d, 2, 0.0);
/// assert_eq!(m.occupied_blocks(), 1);
/// assert!(m.to_dense().allclose(&d, 0.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    /// Block-row pointers: `indptr[br]..indptr[br+1]` spans block row `br`.
    indptr: Vec<usize>,
    /// Block-column indices.
    indices: Vec<u32>,
    /// Dense `block*block` payloads, row-major within each block.
    values: Vec<f32>,
}

impl BsrMatrix {
    /// Converts a dense matrix into BSR with `block × block` blocks; a
    /// block is stored iff it contains any `|v| > threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero or does not divide both dimensions.
    pub fn from_dense(dense: &Tensor, block: usize, threshold: f32) -> Self {
        let (rows, cols) = dense.shape().matrix();
        assert!(block > 0, "block size must be non-zero");
        assert!(
            rows % block == 0 && cols % block == 0,
            "block {block} must divide {rows}x{cols}"
        );
        let data = dense.data();
        let mut indptr = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for br in 0..rows / block {
            for bc in 0..cols / block {
                let mut occupied = false;
                'scan: for dy in 0..block {
                    for dx in 0..block {
                        if data[(br * block + dy) * cols + bc * block + dx].abs() > threshold {
                            occupied = true;
                            break 'scan;
                        }
                    }
                }
                if occupied {
                    indices.push(bc as u32);
                    for dy in 0..block {
                        for dx in 0..block {
                            values.push(data[(br * block + dy) * cols + bc * block + dx]);
                        }
                    }
                }
            }
            indptr.push(indices.len());
        }
        BsrMatrix {
            rows,
            cols,
            block,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block edge length.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of stored blocks.
    pub fn occupied_blocks(&self) -> usize {
        self.indices.len()
    }

    /// Stored element count (including explicit zeros inside blocks).
    pub fn stored_elems(&self) -> usize {
        self.values.len()
    }

    /// Fraction of stored elements that are actually zero — the
    /// "fill waste" of unstructured sparsity under a blocked format.
    pub fn fill_waste(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let zeros = self.values.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.values.len() as f64
    }

    /// Expands back to dense.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros([self.rows, self.cols]);
        let odata = out.data_mut();
        let bb = self.block * self.block;
        for br in 0..self.rows / self.block {
            for (slot, p) in (self.indptr[br]..self.indptr[br + 1]).enumerate() {
                let _ = slot;
                let bc = self.indices[p] as usize;
                let payload = &self.values[p * bb..(p + 1) * bb];
                for dy in 0..self.block {
                    for dx in 0..self.block {
                        odata[(br * self.block + dy) * self.cols + bc * self.block + dx] =
                            payload[dy * self.block + dx];
                    }
                }
            }
        }
        out
    }

    /// Block-sparse × dense product `C = self · B`: dense micro-kernels
    /// over occupied blocks.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2 or dimensions disagree.
    pub fn spmm(&self, b: &Tensor) -> Tensor {
        let (bk, bn) = b.shape().matrix();
        assert_eq!(bk, self.cols, "inner dimension mismatch");
        let mut out = Tensor::zeros([self.rows, bn]);
        let odata = out.data_mut();
        let bb = self.block * self.block;
        for br in 0..self.rows / self.block {
            for p in self.indptr[br]..self.indptr[br + 1] {
                let bc = self.indices[p] as usize;
                let payload = &self.values[p * bb..(p + 1) * bb];
                for dy in 0..self.block {
                    let orow =
                        &mut odata[(br * self.block + dy) * bn..(br * self.block + dy + 1) * bn];
                    for dx in 0..self.block {
                        let v = payload[dy * self.block + dx];
                        if v == 0.0 {
                            continue;
                        }
                        let brow =
                            &b.data()[(bc * self.block + dx) * bn..(bc * self.block + dx + 1) * bn];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += v * bv;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exact heap bytes: block pointers + one u32 per block + dense
    /// payloads.
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * 8 + self.indices.len() * 4 + self.values.len() * 4
    }
}

impl fmt::Debug for BsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BsrMatrix({}x{}, block {}, {} blocks, fill waste {:.0}%)",
            self.rows,
            self.cols,
            self.block,
            self.occupied_blocks(),
            self.fill_waste() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::matmul;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn block_structured(rows: usize, cols: usize, block: usize, keep: f64, seed: u64) -> Tensor {
        // Whole blocks are either dense or zero — the structured case.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut keep_mask = vec![false; (rows / block) * (cols / block)];
        for k in keep_mask.iter_mut() {
            *k = rng.gen_bool(keep);
        }
        Tensor::from_fn([rows, cols], |i| {
            let (r, c) = (i / cols, i % cols);
            if keep_mask[(r / block) * (cols / block) + c / block] {
                rng.gen_range(0.1..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_structured() {
        let d = block_structured(8, 12, 4, 0.5, 1);
        let m = BsrMatrix::from_dense(&d, 4, 0.0);
        assert!(m.to_dense().allclose(&d, 0.0));
        assert_eq!(m.fill_waste(), 0.0);
    }

    #[test]
    fn roundtrip_unstructured() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = Tensor::from_fn([6, 6], |_| {
            if rng.gen_bool(0.3) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let m = BsrMatrix::from_dense(&d, 3, 0.0);
        assert!(m.to_dense().allclose(&d, 0.0));
        assert!(m.fill_waste() > 0.0, "random sparsity should waste fill");
    }

    #[test]
    fn spmm_matches_dense() {
        let a = block_structured(8, 8, 2, 0.6, 3);
        let b = Tensor::from_fn([8, 5], |i| i as f32 * 0.1 - 1.0);
        let want = matmul(&a, &b);
        let got = BsrMatrix::from_dense(&a, 2, 0.0).spmm(&b);
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn storage_beats_csr_for_structured_sparsity() {
        use crate::csr::CsrMatrix;
        let d = block_structured(64, 64, 8, 0.25, 4);
        let bsr = BsrMatrix::from_dense(&d, 8, 0.0);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        assert!(
            bsr.storage_bytes() < csr.storage_bytes(),
            "bsr {} vs csr {}",
            bsr.storage_bytes(),
            csr.storage_bytes()
        );
    }

    #[test]
    fn storage_loses_to_csr_for_scattered_sparsity() {
        use crate::csr::CsrMatrix;
        // One non-zero per block: BSR stores the whole block anyway.
        let d = Tensor::from_fn([32, 32], |i| if i % 17 == 0 { 1.0 } else { 0.0 });
        let bsr = BsrMatrix::from_dense(&d, 4, 0.0);
        let csr = CsrMatrix::from_dense(&d, 0.0);
        assert!(bsr.storage_bytes() > csr.storage_bytes());
        assert!(bsr.fill_waste() > 0.5);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_block_rejected() {
        let _ = BsrMatrix::from_dense(&Tensor::zeros([6, 6]), 4, 0.0);
    }

    #[test]
    fn empty_matrix_has_no_blocks() {
        let m = BsrMatrix::from_dense(&Tensor::zeros([4, 4]), 2, 0.0);
        assert_eq!(m.occupied_blocks(), 0);
        assert_eq!(m.fill_waste(), 0.0);
        assert_eq!(m.spmm(&Tensor::ones([4, 2])).sum(), 0.0);
    }
}
