//! Compressed Sparse Row matrices.

use cnn_stack_tensor::Tensor;
use std::fmt;

/// A Compressed Sparse Row (CSR) matrix over `f32`.
///
/// CSR stores three arrays — row pointers, column indices and non-zero
/// values — exactly as the paper describes for its weight-pruned and
/// quantised models (§IV-C). Column indices use `u32` (no layer in any of
/// the paper's models has more than 2³² columns) to keep the per-nonzero
/// overhead at 4 bytes of index + 4 bytes of value, matching the C
/// implementation the paper benchmarks.
///
/// # Example
///
/// ```
/// use cnn_stack_sparse::CsrMatrix;
/// use cnn_stack_tensor::Tensor;
///
/// let m = CsrMatrix::from_dense(&Tensor::from_vec([2, 2], vec![0.0, 5.0, 0.0, 0.0]), 0.0);
/// assert_eq!(m.nnz(), 1);
/// assert_eq!(m.get(0, 1), 5.0);
/// assert_eq!(m.get(1, 1), 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` is the slice of `indices`/`values` for row `r`.
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `indptr` must have
    /// `rows + 1` monotonically non-decreasing entries ending at
    /// `values.len()`, `indices` and `values` must have equal lengths, and
    /// every column index must be `< cols` and strictly increasing within
    /// its row.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr must have rows+1 entries");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap(),
            values.len(),
            "indptr must end at nnz"
        );
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        for r in 0..rows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be non-decreasing");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "column indices must be strictly increasing per row"
                );
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index {last} out of bounds");
            }
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Converts a dense matrix to CSR, dropping entries with
    /// `|v| <= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not rank-2.
    pub fn from_dense(dense: &Tensor, threshold: f32) -> Self {
        let (rows, cols) = dense.shape().matrix();
        let data = dense.data();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v.abs() > threshold {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(values.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The row-pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The non-zero values array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The `(indices, values)` slice for one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        assert!(r < self.rows, "row {r} out of bounds");
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// Value at `(r, c)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let (idx, val) = self.row(r);
        match idx.binary_search(&(c as u32)) {
            Ok(pos) => val[pos],
            Err(_) => 0.0,
        }
    }

    /// Expands back to a dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros([self.rows, self.cols]);
        let data = out.data_mut();
        for r in 0..self.rows {
            for p in self.indptr[r]..self.indptr[r + 1] {
                data[r * self.cols + self.indices[p] as usize] = self.values[p];
            }
        }
        out
    }

    /// Sparse × dense product: `C[rows × n] = self · B[cols × n]`.
    ///
    /// This is the kernel the paper's CSR inference path runs: for each
    /// stored non-zero, one multiply-accumulate plus one index load — the
    /// per-nonzero overhead that explains Fig. 4's "sparse methods fail to
    /// provide any speedup" observation.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2 or its row count differs from `cols()`.
    pub fn spmm(&self, b: &Tensor) -> Tensor {
        let (bk, bn) = b.shape().matrix();
        assert_eq!(
            bk, self.cols,
            "inner dimension mismatch: {} vs {bk}",
            self.cols
        );
        let mut out = Tensor::zeros([self.rows, bn]);
        self.spmm_rows_into(b.data(), out.data_mut(), bn, 0, self.rows);
        out
    }

    /// SpMM over a sub-range of output rows, accumulating into `c`.
    /// The unit of work distributed by the parallel executor.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions or row range.
    pub fn spmm_rows_into(
        &self,
        b: &[f32],
        c: &mut [f32],
        n: usize,
        row_start: usize,
        row_end: usize,
    ) {
        assert!(
            row_start <= row_end && row_end <= self.rows,
            "row range out of bounds"
        );
        assert_eq!(b.len(), self.cols * n, "B length mismatch");
        assert_eq!(c.len(), self.rows * n, "C length mismatch");
        for r in row_start..row_end {
            let c_row = &mut c[r * n..(r + 1) * n];
            for p in self.indptr[r]..self.indptr[r + 1] {
                let col = self.indices[p] as usize;
                let v = self.values[p];
                let b_row = &b[col * n..(col + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += v * bv;
                }
            }
        }
    }

    /// Sparse matrix–vector product `y = self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for p in self.indptr[r]..self.indptr[r + 1] {
                acc += self.values[p] * x[self.indices[p] as usize];
            }
            y[r] = acc;
        }
        y
    }

    /// Transposed matrix as CSR (equivalently, this matrix in CSC order).
    pub fn transpose(&self) -> CsrMatrix {
        // Counting sort by column.
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for p in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[p] as usize;
                let dst = cursor[c];
                indices[dst] = r as u32;
                values[dst] = self.values[p];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Exact heap bytes of the three CSR arrays, the number the paper's
    /// memory-footprint tables charge for sparse weights.
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={}, sparsity={:.1}%)",
            self.rows,
            self.cols,
            self.nnz(),
            self.sparsity() * 100.0
        )
    }
}

impl From<&Tensor> for CsrMatrix {
    /// Converts a rank-2 dense tensor, keeping all exactly-non-zero values.
    fn from(dense: &Tensor) -> Self {
        CsrMatrix::from_dense(dense, 0.0)
    }
}

/// Dense×sparse helper: `A[m×k] · Bᵀ` where `B` is CSR of shape `[n×k]`.
/// Used by backward passes that need the transposed sparse operand without
/// materialising it.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn dense_times_csr_t(a: &Tensor, b: &CsrMatrix) -> Tensor {
    let (m, k) = a.shape().matrix();
    assert_eq!(k, b.cols(), "inner dimension mismatch");
    let n = b.rows();
    let adata = a.data();
    let mut out = Tensor::zeros([m, n]);
    let odata = out.data_mut();
    for i in 0..m {
        let a_row = &adata[i * k..(i + 1) * k];
        for r in 0..n {
            let (idx, val) = b.row(r);
            let mut acc = 0.0;
            for (&c, &v) in idx.iter().zip(val) {
                acc += a_row[c as usize] * v;
            }
            odata[i * n + r] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::{matmul, ops};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_sparse_dense(rows: usize, cols: usize, density: f64, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn([rows, cols], |_| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dense_roundtrip() {
        let d = random_sparse_dense(13, 17, 0.3, 1);
        let m = CsrMatrix::from_dense(&d, 0.0);
        assert!(m.to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn threshold_drops_small_values() {
        let d = Tensor::from_vec([1, 4], vec![0.05, -0.5, 0.2, -0.01]);
        let m = CsrMatrix::from_dense(&d, 0.1);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), -0.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn nnz_and_sparsity() {
        let d = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 0.0]);
        let m = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m.nnz(), 1);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        for seed in 0..4 {
            let a = random_sparse_dense(9, 14, 0.25, seed);
            let b = random_sparse_dense(14, 6, 1.0, seed + 100);
            let want = matmul(&a, &b);
            let got = CsrMatrix::from_dense(&a, 0.0).spmm(&b);
            assert!(want.allclose(&got, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn spmm_row_partition_matches_full() {
        let a = random_sparse_dense(8, 10, 0.4, 5);
        let b = random_sparse_dense(10, 7, 1.0, 6);
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let full = csr.spmm(&b);
        let mut c = vec![0.0; 8 * 7];
        csr.spmm_rows_into(b.data(), &mut c, 7, 0, 3);
        csr.spmm_rows_into(b.data(), &mut c, 7, 3, 8);
        assert!(full.allclose(&Tensor::from_vec([8, 7], c), 1e-6));
    }

    #[test]
    fn spmv_matches_spmm() {
        let a = random_sparse_dense(6, 9, 0.5, 9);
        let x: Vec<f32> = (0..9).map(|i| i as f32 * 0.1).collect();
        let csr = CsrMatrix::from_dense(&a, 0.0);
        let y = csr.spmv(&x);
        let want = csr.spmm(&Tensor::from_vec([9, 1], x));
        for (a, b) in y.iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = random_sparse_dense(7, 11, 0.3, 2);
        let t = CsrMatrix::from_dense(&d, 0.0).transpose();
        assert!(t.to_dense().allclose(&ops::transpose(&d), 0.0));
    }

    #[test]
    fn transpose_involution() {
        let d = random_sparse_dense(5, 8, 0.4, 3);
        let m = CsrMatrix::from_dense(&d, 0.0);
        assert!(m.transpose().transpose().to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn storage_bytes_formula() {
        let d = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let m = CsrMatrix::from_dense(&d, 0.0);
        // 3 indptr entries * 8 + 3 indices * 4 + 3 values * 4 = 24+12+12.
        assert_eq!(m.storage_bytes(), 3 * 8 + 3 * 4 + 3 * 4);
    }

    #[test]
    fn csr_costs_more_than_dense_for_3x3() {
        // The paper's §V-D observation: a 3x3 filter (9 floats = 36 bytes
        // dense) in CSR needs more bytes once it is less than ~half empty.
        let filter = Tensor::from_vec([1, 9], vec![0.5, 0.0, -0.3, 0.0, 0.8, 0.0, 0.1, 0.0, -0.2]);
        let dense_bytes = filter.storage_bytes();
        let csr = CsrMatrix::from_dense(&filter, 0.0);
        assert!(csr.storage_bytes() > dense_bytes);
    }

    #[test]
    fn from_raw_validates() {
        let m = CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_raw_rejects_unsorted_columns() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_raw_rejects_bad_column() {
        let _ = CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn empty_rows_handled() {
        let d = Tensor::from_vec([3, 2], vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let m = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(1).0.len(), 1);
        assert_eq!(m.row(2).0.len(), 0);
        let b = Tensor::ones([2, 2]);
        let c = m.spmm(&b);
        assert_eq!(c.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn dense_times_csr_t_matches_explicit_transpose() {
        let a = random_sparse_dense(5, 9, 1.0, 11);
        let bd = random_sparse_dense(7, 9, 0.4, 12);
        let b = CsrMatrix::from_dense(&bd, 0.0);
        let want = matmul(&a, &ops::transpose(&bd));
        let got = dense_times_csr_t(&a, &b);
        assert!(want.allclose(&got, 1e-5));
    }

    #[test]
    fn debug_shows_sparsity() {
        let m = CsrMatrix::from_dense(&Tensor::zeros([2, 2]), 0.0);
        assert!(format!("{m:?}").contains("sparsity"));
    }
}
