//! Compressed Sparse Column matrices.

use crate::csr::CsrMatrix;
use cnn_stack_tensor::Tensor;
use std::fmt;

/// A Compressed Sparse Column (CSC) matrix over `f32`.
///
/// CSC is the column-major dual of [`CsrMatrix`]. The paper evaluates CSR
/// only ("We leave the exploration of other formats for future work",
/// §IV-C); CSC is provided so that the format-ablation benchmark can make
/// that comparison concrete, and because the channel-pruning code removes
/// *columns* of the layer-weight matrix, which is O(removed columns) here
/// versus O(nnz) in CSR.
///
/// # Example
///
/// ```
/// use cnn_stack_sparse::CscMatrix;
/// use cnn_stack_tensor::Tensor;
///
/// let d = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 2.0]);
/// let m = CscMatrix::from_dense(&d, 0.0);
/// assert_eq!(m.nnz(), 2);
/// assert!(m.to_dense().allclose(&d, 0.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// `colptr[c]..colptr[c+1]` spans the entries of column `c`.
    colptr: Vec<usize>,
    row_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Converts a dense matrix to CSC, dropping entries with
    /// `|v| <= threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is not rank-2.
    pub fn from_dense(dense: &Tensor, threshold: f32) -> Self {
        let (rows, cols) = dense.shape().matrix();
        let data = dense.data();
        let mut colptr = Vec::with_capacity(cols + 1);
        let mut row_indices = Vec::new();
        let mut values = Vec::new();
        colptr.push(0);
        for c in 0..cols {
            for r in 0..rows {
                let v = data[r * cols + c];
                if v.abs() > threshold {
                    row_indices.push(r as u32);
                    values.push(v);
                }
            }
            colptr.push(values.len());
        }
        CscMatrix {
            rows,
            cols,
            colptr,
            row_indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row_indices, values)` slice for one column.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols()`.
    pub fn col(&self, c: usize) -> (&[u32], &[f32]) {
        assert!(c < self.cols, "column {c} out of bounds");
        let span = self.colptr[c]..self.colptr[c + 1];
        (&self.row_indices[span.clone()], &self.values[span])
    }

    /// Expands back to a dense tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros([self.rows, self.cols]);
        let data = out.data_mut();
        for c in 0..self.cols {
            for p in self.colptr[c]..self.colptr[c + 1] {
                data[self.row_indices[p] as usize * self.cols + c] = self.values[p];
            }
        }
        out
    }

    /// Drops an entire column, renumbering later columns — the structural
    /// operation channel pruning performs on a `[out, in]` weight matrix
    /// when an input channel disappears.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols()`.
    pub fn remove_col(&mut self, c: usize) {
        assert!(c < self.cols, "column {c} out of bounds");
        let span = self.colptr[c]..self.colptr[c + 1];
        let removed = span.len();
        self.row_indices.drain(span.clone());
        self.values.drain(span);
        for p in self.colptr[c + 1..].iter_mut() {
            *p -= removed;
        }
        self.colptr.remove(c + 1);
        self.cols -= 1;
    }

    /// Sparse × dense product `C = self · B`, traversing by column:
    /// every stored entry of column `c` scatters `value × B[c, :]` into
    /// its row of the output. Compared to CSR's row-major traversal the
    /// output accesses scatter, which is why CSR is the compute format of
    /// choice and CSC the *surgery* format.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank-2 or its row count differs from `cols()`.
    pub fn spmm(&self, b: &Tensor) -> Tensor {
        let (bk, bn) = b.shape().matrix();
        assert_eq!(bk, self.cols, "inner dimension mismatch");
        let mut out = Tensor::zeros([self.rows, bn]);
        let odata = out.data_mut();
        for c in 0..self.cols {
            let brow = &b.data()[c * bn..(c + 1) * bn];
            for p in self.colptr[c]..self.colptr[c + 1] {
                let r = self.row_indices[p] as usize;
                let v = self.values[p];
                for (o, &bv) in odata[r * bn..(r + 1) * bn].iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        }
        out
    }

    /// Exact heap bytes of the three CSC arrays.
    pub fn storage_bytes(&self) -> usize {
        self.colptr.len() * std::mem::size_of::<usize>()
            + self.row_indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    /// The same matrix in CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.to_dense(), 0.0)
    }
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix({}x{}, nnz={})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let d = Tensor::from_vec([3, 3], vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
        let m = CscMatrix::from_dense(&d, 0.0);
        assert_eq!(m.nnz(), 4);
        assert!(m.to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn col_access() {
        let d = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 3.0, 0.0, 0.0]);
        let m = CscMatrix::from_dense(&d, 0.0);
        let (ri, v) = m.col(0);
        assert_eq!(ri, &[0, 1]);
        assert_eq!(v, &[1.0, 3.0]);
        assert!(m.col(1).0.is_empty());
    }

    #[test]
    fn remove_col_shifts_structure() {
        let d = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut m = CscMatrix::from_dense(&d, 0.0);
        m.remove_col(1);
        assert_eq!(m.cols(), 2);
        let want = Tensor::from_vec([2, 2], vec![1.0, 3.0, 4.0, 6.0]);
        assert!(m.to_dense().allclose(&want, 0.0));
    }

    #[test]
    fn remove_first_and_last_col() {
        let d = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]);
        let mut m = CscMatrix::from_dense(&d, 0.0);
        m.remove_col(0);
        m.remove_col(1);
        assert_eq!(m.to_dense().data(), &[2.0]);
    }

    #[test]
    fn spmm_matches_dense() {
        use cnn_stack_tensor::matmul;
        let d = Tensor::from_vec(
            [3, 4],
            vec![1.0, 0.0, 2.0, 0.0, 0.0, -1.0, 0.0, 3.0, 0.5, 0.0, 0.0, -2.0],
        );
        let b = Tensor::from_fn([4, 5], |i| i as f32 * 0.25 - 1.0);
        let want = matmul(&d, &b);
        let got = CscMatrix::from_dense(&d, 0.0).spmm(&b);
        assert!(want.allclose(&got, 1e-5));
    }

    #[test]
    fn to_csr_agrees() {
        let d = Tensor::from_vec([2, 2], vec![0.0, 7.0, 8.0, 0.0]);
        let m = CscMatrix::from_dense(&d, 0.0);
        assert!(m.to_csr().to_dense().allclose(&d, 0.0));
    }

    #[test]
    fn storage_formula() {
        let d = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let m = CscMatrix::from_dense(&d, 0.0);
        assert_eq!(m.storage_bytes(), 3 * 8 + 2 * 4 + 2 * 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_col_bounds() {
        let mut m = CscMatrix::from_dense(&Tensor::zeros([2, 2]), 0.0);
        m.remove_col(2);
    }
}
