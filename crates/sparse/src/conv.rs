//! Sparse convolution kernels.
//!
//! The paper's CSR inference path uses the *direct* convolution algorithm
//! with sparse filters (§V-D: "This is due to using the direct convolution
//! algorithm and the filter size of the networks"). Both that direct
//! kernel and the im2col+SpMM lowering are provided so the ablation bench
//! can compare them.

use crate::csr::CsrMatrix;
use cnn_stack_tensor::{im2col, Conv2dGeometry, Tensor};

/// Direct sparse 2-D convolution.
///
/// * `input` — `[n, in_c, h, w]` activations.
/// * `filters` — CSR matrix of shape `[out_c, in_c * k_h * k_w]` whose row
///   `o` holds the flattened filter for output channel `o`.
/// * `bias` — optional `[out_c]` bias.
///
/// Each stored non-zero costs one index decode (recovering its
/// `(channel, kh, kw)` tap) plus `out_h * out_w` multiply-accumulates with
/// strided, non-contiguous input reads — the locality penalty behind the
/// paper's "sparse methods fail to provide any speedup" result.
///
/// # Panics
///
/// Panics if the filter matrix width does not equal
/// `geom.patch_len()`, the input shape does not match `geom`, or the bias
/// length does not equal the output channel count.
#[allow(clippy::needless_range_loop)]
pub fn sparse_conv2d(
    input: &Tensor,
    filters: &CsrMatrix,
    bias: Option<&[f32]>,
    geom: &Conv2dGeometry,
) -> Tensor {
    let (n, in_c, h, w) = input.shape().nchw();
    assert_eq!(in_c, geom.in_channels, "input channel mismatch");
    assert_eq!((h, w), (geom.in_h, geom.in_w), "input extent mismatch");
    assert_eq!(
        filters.cols(),
        geom.patch_len(),
        "filter width {} does not match patch length {}",
        filters.cols(),
        geom.patch_len()
    );
    let out_c = filters.rows();
    if let Some(b) = bias {
        assert_eq!(b.len(), out_c, "bias length mismatch");
    }
    let mut output = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
    let in_data = input.data();
    let out_data = output.data_mut();
    let in_img = in_c * h * w;
    let out_img = out_c * geom.out_h * geom.out_w;
    let khw = geom.k_h * geom.k_w;

    for img in 0..n {
        let input_img = &in_data[img * in_img..(img + 1) * in_img];
        let output_img = &mut out_data[img * out_img..(img + 1) * out_img];
        for o in 0..out_c {
            let plane =
                &mut output_img[o * geom.out_h * geom.out_w..(o + 1) * geom.out_h * geom.out_w];
            if let Some(b) = bias {
                plane.fill(b[o]);
            }
            let (idx, val) = filters.row(o);
            for (&flat, &v) in idx.iter().zip(val) {
                let flat = flat as usize;
                let c = flat / khw;
                let kh = (flat % khw) / geom.k_w;
                let kw = flat % geom.k_w;
                let in_plane = &input_img[c * h * w..(c + 1) * h * w];
                for oh in 0..geom.out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                    if ih < 0 || ih as usize >= h {
                        continue;
                    }
                    let in_row = &in_plane[ih as usize * w..(ih as usize + 1) * w];
                    let out_row = &mut plane[oh * geom.out_w..(oh + 1) * geom.out_w];
                    for ow in 0..geom.out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                        if iw < 0 || iw as usize >= w {
                            continue;
                        }
                        out_row[ow] += v * in_row[iw as usize];
                    }
                }
            }
        }
    }
    output
}

/// Sparse convolution via the im2col lowering: `filters · im2col(input)`.
///
/// Produces bit-compatible results with [`sparse_conv2d`] but trades the
/// irregular direct access pattern for a large dense intermediate — the
/// memory/time trade-off the paper notes when discussing im2col (§V-D).
///
/// # Panics
///
/// Same contract as [`sparse_conv2d`].
pub fn sparse_conv2d_im2col(
    input: &Tensor,
    filters: &CsrMatrix,
    bias: Option<&[f32]>,
    geom: &Conv2dGeometry,
) -> Tensor {
    let (n, in_c, h, w) = input.shape().nchw();
    assert_eq!(in_c, geom.in_channels, "input channel mismatch");
    assert_eq!((h, w), (geom.in_h, geom.in_w), "input extent mismatch");
    let out_c = filters.rows();
    let positions = geom.out_positions();
    let mut output = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
    let out_data = output.data_mut();
    let in_img = in_c * h * w;
    for img in 0..n {
        let cols = im2col(&input.data()[img * in_img..(img + 1) * in_img], geom);
        let prod = filters.spmm(&cols);
        let dst = &mut out_data[img * out_c * positions..(img + 1) * out_c * positions];
        dst.copy_from_slice(prod.data());
        if let Some(b) = bias {
            for o in 0..out_c {
                for p in &mut dst[o * positions..(o + 1) * positions] {
                    *p += b[o];
                }
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_tensor::matmul;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, density: f64, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    /// Dense reference convolution via im2col + GEMM.
    fn reference_conv(
        input: &Tensor,
        wmat: &Tensor,
        bias: Option<&[f32]>,
        geom: &Conv2dGeometry,
    ) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        let out_c = wmat.shape().dims()[0];
        let positions = geom.out_positions();
        let mut out = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
        let od = out.data_mut();
        for img in 0..n {
            let cols = im2col(
                &input.data()[img * in_c * h * w..(img + 1) * in_c * h * w],
                geom,
            );
            let prod = matmul(wmat, &cols);
            let dst = &mut od[img * out_c * positions..(img + 1) * out_c * positions];
            dst.copy_from_slice(prod.data());
            if let Some(b) = bias {
                for o in 0..out_c {
                    for p in &mut dst[o * positions..(o + 1) * positions] {
                        *p += b[o];
                    }
                }
            }
        }
        out
    }

    #[test]
    fn direct_matches_reference_3x3() {
        let geom = Conv2dGeometry::new(3, 8, 8, 3, 3, 1, 1);
        let input = random([2, 3, 8, 8], 1.0, 1);
        let wmat = random([4, geom.patch_len()], 0.4, 2);
        let bias = vec![0.1f32, -0.2, 0.3, 0.0];
        let filters = CsrMatrix::from_dense(&wmat, 0.0);
        let want = reference_conv(&input, &wmat, Some(&bias), &geom);
        let got = sparse_conv2d(&input, &filters, Some(&bias), &geom);
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn direct_matches_reference_stride2_no_bias() {
        let geom = Conv2dGeometry::new(2, 9, 9, 3, 3, 2, 1);
        let input = random([1, 2, 9, 9], 1.0, 3);
        let wmat = random([5, geom.patch_len()], 0.5, 4);
        let filters = CsrMatrix::from_dense(&wmat, 0.0);
        let want = reference_conv(&input, &wmat, None, &geom);
        let got = sparse_conv2d(&input, &filters, None, &geom);
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn direct_matches_reference_1x1() {
        let geom = Conv2dGeometry::new(8, 4, 4, 1, 1, 1, 0);
        let input = random([1, 8, 4, 4], 1.0, 5);
        let wmat = random([6, 8], 0.6, 6);
        let filters = CsrMatrix::from_dense(&wmat, 0.0);
        let want = reference_conv(&input, &wmat, None, &geom);
        let got = sparse_conv2d(&input, &filters, None, &geom);
        assert!(want.allclose(&got, 1e-4));
    }

    #[test]
    fn im2col_path_matches_direct() {
        let geom = Conv2dGeometry::new(3, 6, 6, 3, 3, 1, 1);
        let input = random([2, 3, 6, 6], 1.0, 7);
        let wmat = random([4, geom.patch_len()], 0.3, 8);
        let bias = vec![1.0f32; 4];
        let filters = CsrMatrix::from_dense(&wmat, 0.0);
        let a = sparse_conv2d(&input, &filters, Some(&bias), &geom);
        let b = sparse_conv2d_im2col(&input, &filters, Some(&bias), &geom);
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn all_zero_filters_give_bias_only() {
        let geom = Conv2dGeometry::new(1, 4, 4, 3, 3, 1, 1);
        let input = random([1, 1, 4, 4], 1.0, 9);
        let filters = CsrMatrix::from_dense(&Tensor::zeros([2, 9]), 0.0);
        let bias = vec![2.0f32, -1.0];
        let out = sparse_conv2d(&input, &filters, Some(&bias), &geom);
        for v in &out.data()[0..16] {
            assert_eq!(*v, 2.0);
        }
        for v in &out.data()[16..32] {
            assert_eq!(*v, -1.0);
        }
    }

    #[test]
    #[should_panic(expected = "filter width")]
    fn wrong_filter_width_rejected() {
        let geom = Conv2dGeometry::new(2, 4, 4, 3, 3, 1, 1);
        let filters = CsrMatrix::from_dense(&Tensor::zeros([2, 9]), 0.0); // needs 18
        let _ = sparse_conv2d(&Tensor::zeros([1, 2, 4, 4]), &filters, None, &geom);
    }
}
