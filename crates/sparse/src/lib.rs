//! Sparse data formats and kernels.
//!
//! The paper's "Data Formats and Algorithms" layer (§IV-C) stores
//! weight-pruned and ternary-quantised models in Compressed Sparse Row
//! (CSR) format. This crate provides CSR (and its column-major dual, CSC),
//! the sparse compute kernels used at inference time, and — crucially for
//! Tables IV and VI — *byte-exact memory accounting* for both formats,
//! which is how the paper demonstrates that CSR storage of small 3×3
//! filters costs **more** memory than dense storage.
//!
//! # Example
//!
//! ```
//! use cnn_stack_sparse::CsrMatrix;
//! use cnn_stack_tensor::Tensor;
//!
//! let dense = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0]);
//! let csr = CsrMatrix::from_dense(&dense, 0.0);
//! assert_eq!(csr.nnz(), 3);
//! assert!(csr.to_dense().allclose(&dense, 0.0));
//! ```

pub mod bsr;
pub mod conv;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod memory;
pub mod stats;

pub use bsr::BsrMatrix;
pub use conv::sparse_conv2d;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use memory::{csr_bytes, dense_bytes, FormatCost};
pub use stats::SparsityStats;
