//! Measured weight-tensor sparsity.
//!
//! The descriptor-level `weight_nnz` reports the *stored* non-zero count,
//! which equals the element count for a dense tensor even when pruning
//! has zeroed most of it. Algorithm selection (the plan compiler's
//! per-layer cost model) needs the *measured* sparsity of the actual
//! values — the quantity the paper's Fig. 1 expected-speedup dashed line
//! is parameterised on — so it can price the CSR kernels by the work
//! they really do.

/// Exact-zero census of a weight slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SparsityStats {
    /// Total elements inspected.
    pub elems: usize,
    /// Elements that are exactly `0.0` (the value magnitude pruning
    /// writes; denormals and negative zero count as zero).
    pub zeros: usize,
}

impl SparsityStats {
    /// Counts exact zeros in `data`.
    pub fn measure(data: &[f32]) -> Self {
        let zeros = data.iter().filter(|v| **v == 0.0).count();
        SparsityStats {
            elems: data.len(),
            zeros,
        }
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.elems - self.zeros
    }

    /// Fraction of zero elements in `[0, 1]` (0 for an empty slice).
    pub fn sparsity(&self) -> f64 {
        if self.elems == 0 {
            0.0
        } else {
            self.zeros as f64 / self.elems as f64
        }
    }

    /// Fraction of non-zero elements in `[0, 1]` (1 for an empty slice).
    pub fn density(&self) -> f64 {
        1.0 - self.sparsity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_exact_zeros() {
        let s = SparsityStats::measure(&[0.0, 1.0, -0.0, 2.5]);
        assert_eq!(s.elems, 4);
        assert_eq!(s.zeros, 2);
        assert_eq!(s.nnz(), 2);
        assert!((s.sparsity() - 0.5).abs() < 1e-12);
        assert!((s.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_slice_is_dense() {
        let s = SparsityStats::measure(&[]);
        assert_eq!(s.sparsity(), 0.0);
        assert_eq!(s.density(), 1.0);
    }
}
