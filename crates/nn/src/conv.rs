//! Standard 2-D convolution with selectable algorithm and weight format.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{
    scan_ternary, ConvAlgorithm, ExecConfig, Layer, Param, Phase, QuantPanels, WeightFormat,
};
use cnn_stack_parallel::parallel_for;
use cnn_stack_parallel::DisjointWriter;
use cnn_stack_sparse::CsrMatrix;
use cnn_stack_tensor::init::{initialise, Init};
use cnn_stack_tensor::{
    col2im, fft_conv2d_into, fft_conv_scratch_elems, gemm, im2col, im2col_into, ops,
    pack_b_im2col_batch_into, pack_b_im2col_into, winograd4_conv2d_into, winograd4_scratch_elems,
    winograd_conv2d, Conv2dGeometry, GemmAlgorithm, GemmPlan, Tensor,
};
use std::sync::Arc;

/// A standard (grouped-by-1) 2-D convolution layer.
///
/// The layer owns dense weights of shape `[out_c, in_c, k, k]` and can be
/// switched to CSR inference storage with
/// [`set_format`](Conv2d::set_format), mirroring the paper's format layer.
/// Both the direct and the im2col algorithms are implemented for both
/// formats; training (backward) always runs on the dense weights.
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{Conv2d, ExecConfig, Layer, Phase};
/// use cnn_stack_tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 16, 3, 1, 1, 42);
/// let y = conv.forward(&Tensor::zeros([2, 3, 32, 32]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[2, 16, 32, 32]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Param,
    bias: Param,
    format: WeightFormat,
    /// CSR snapshot of the weights, rebuilt lazily when `format == Csr`.
    csr: Option<CsrMatrix>,
    /// Plan-time packed GEMM A-panels of `weight_matrix()` (MR-row
    /// panels), built by [`Layer::prepare`] for the packed im2col path
    /// and reused by every `forward_into` run. Like `csr`, any weight
    /// mutation invalidates it.
    ///
    /// The panels are behind an [`Arc`] so pre-warmed serving sessions
    /// can share one prepack across many identical model replicas
    /// (compile once, serve many). The buffer is **never mutated through
    /// the `Arc`**: `prepare` always builds a fresh `Vec` and wraps it,
    /// and every invalidation site merely drops this handle — so a peer
    /// holding a clone of the old `Arc` keeps a fully consistent panel
    /// set and can never observe a half-invalidated cache.
    packed_weights: Option<Arc<Vec<f32>>>,
    /// Quantised weight snapshot (2-bit ternary B-panel codes), built
    /// eagerly by `set_format(Ternary)` when the weights are exactly
    /// ternary. Shares the `packed_weights` invalidation contract: any
    /// weight mutation drops the handle and the layer falls back to the
    /// f32 packed engine until `set_format` re-snapshots.
    quant_weights: Option<QuantPanels>,
    /// Cached training-forward input.
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "conv extents must be non-zero"
        );
        let weight = Param::new(initialise(
            [out_channels, in_channels, kernel, kernel],
            Init::KaimingNormal,
            seed,
        ));
        let bias = Param::new(Tensor::zeros([out_channels]));
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias,
            format: WeightFormat::Dense,
            csr: None,
            packed_weights: None,
            quant_weights: None,
            cached_input: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The weight parameter (dense master copy).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight parameter. Invalidate the CSR snapshot afterwards by
    /// calling [`set_format`](Conv2d::set_format) again if needed.
    pub fn weight_mut(&mut self) -> &mut Param {
        self.csr = None;
        self.packed_weights = None;
        self.quant_weights = None;
        &mut self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// Current inference weight format.
    pub fn format(&self) -> WeightFormat {
        self.format
    }

    /// Selects the inference weight format; `Csr` snapshots the current
    /// dense weights into CSR, `Ternary` snapshots exactly-ternary
    /// weights into 2-bit packed B-panel codes (non-ternary weights
    /// leave no snapshot and the layer runs the dense f32 engine).
    /// `Int8` has no convolution kernel — it also runs dense f32.
    pub fn set_format(&mut self, format: WeightFormat) {
        self.format = format;
        self.packed_weights = None;
        self.quant_weights = None;
        self.csr = match format {
            WeightFormat::Csr => Some(CsrMatrix::from_dense(&self.weight_matrix(), 0.0)),
            _ => None,
        };
        if format == WeightFormat::Ternary {
            if let Some((positive, negative)) = scan_ternary(self.weight.value.data()) {
                // The codes are the B operand of the transposed product
                // Outᵀ = Colᵀ·Wᵀ; their layout depends only on
                // (out_c, patch_len), so one snapshot serves every
                // input shape. `weight_matrix()` is `[out_c × patch_len]`
                // row-major — exactly the `[n × k]` the packer expects.
                let k_dim = self.in_channels * self.kernel * self.kernel;
                let plan = GemmPlan::new(1, k_dim, self.out_channels);
                let mut codes = vec![0u32; plan.ternary_b_words()];
                gemm::pack_b_ternary_transposed_into(&plan, self.weight.value.data(), &mut codes);
                self.quant_weights = Some(QuantPanels::Ternary {
                    codes: Arc::new(codes),
                    positive,
                    negative,
                });
            }
        }
    }

    /// The weights viewed as a `[out_c, in_c*k*k]` matrix (same memory
    /// order).
    pub fn weight_matrix(&self) -> Tensor {
        self.weight.value.reshape([
            self.out_channels,
            self.in_channels * self.kernel * self.kernel,
        ])
    }

    /// Convolution geometry for an input of spatial extent `h × w`.
    pub fn geometry(&self, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(
            self.in_channels,
            h,
            w,
            self.kernel,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Removes output channel `o`: drops the filter row and bias entry.
    /// Used by channel-pruning surgery.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range or only one channel remains.
    pub fn remove_out_channel(&mut self, o: usize) {
        assert!(o < self.out_channels, "output channel {o} out of range");
        assert!(
            self.out_channels > 1,
            "cannot remove the last output channel"
        );
        let row = self.in_channels * self.kernel * self.kernel;
        let mut w = self.weight.value.data().to_vec();
        w.drain(o * row..(o + 1) * row);
        let mut b = self.bias.value.data().to_vec();
        b.remove(o);
        self.out_channels -= 1;
        self.weight = Param::new(Tensor::from_vec(
            [
                self.out_channels,
                self.in_channels,
                self.kernel,
                self.kernel,
            ],
            w,
        ));
        self.bias = Param::new(Tensor::from_vec([self.out_channels], b));
        self.csr = None;
        self.packed_weights = None;
        self.quant_weights = None;
    }

    /// Removes input channel `c`: drops that slice from every filter.
    /// Used by channel-pruning surgery on the consumer layer.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or only one channel remains.
    pub fn remove_in_channel(&mut self, c: usize) {
        assert!(c < self.in_channels, "input channel {c} out of range");
        assert!(self.in_channels > 1, "cannot remove the last input channel");
        let kk = self.kernel * self.kernel;
        let old_row = self.in_channels * kk;
        let src = self.weight.value.data();
        let mut w = Vec::with_capacity(self.out_channels * (old_row - kk));
        for o in 0..self.out_channels {
            let row = &src[o * old_row..(o + 1) * old_row];
            w.extend_from_slice(&row[..c * kk]);
            w.extend_from_slice(&row[(c + 1) * kk..]);
        }
        self.in_channels -= 1;
        self.weight = Param::new(Tensor::from_vec(
            [
                self.out_channels,
                self.in_channels,
                self.kernel,
                self.kernel,
            ],
            w,
        ));
        self.csr = None;
        self.packed_weights = None;
        self.quant_weights = None;
    }

    /// Scratch floats the im2col lowering needs for one image at the
    /// given spatial extent (zero for the direct/sparse kernels).
    fn im2col_scratch_elems(&self, geom: &Conv2dGeometry) -> usize {
        geom.patch_len() * geom.out_positions()
    }

    /// Whether `cfg` routes this layer through the packed GEMM engine
    /// (weights lowered to im2col with a packed micro-kernel). The
    /// quantised algorithms are included: when their snapshot is absent
    /// or stale they run the same f32 packed engine on the dense master
    /// weights, so the routing predicate — and therefore scratch sizing
    /// and plan-time prepacking — does not depend on snapshot state.
    pub(crate) fn uses_packed_gemm(&self, cfg: &ExecConfig) -> bool {
        self.format != WeightFormat::Csr
            && cfg.conv_algo == ConvAlgorithm::Im2col
            && matches!(
                cfg.gemm_algo,
                GemmAlgorithm::Packed | GemmAlgorithm::TernaryPacked | GemmAlgorithm::Int8Packed
            )
    }

    /// Blocking plan of the transposed per-image ternary GEMM:
    /// `Outᵀ [positions × out_c] = Colᵀ · Wᵀ`. Running the product
    /// transposed keeps the 2-bit weight codes in the streaming B
    /// operand, and moves the (often tiny) output plane from the
    /// NR-padded column dimension onto the cheaper MR-padded rows.
    fn ternary_plan(&self, geom: &Conv2dGeometry) -> GemmPlan {
        GemmPlan::new(geom.out_positions(), geom.patch_len(), self.out_channels)
    }

    /// Length of a valid ternary code snapshot (shape-independent: the
    /// B-panel layout depends only on `(out_c, patch_len)`).
    fn ternary_code_words(&self) -> usize {
        let k_dim = self.in_channels * self.kernel * self.kernel;
        GemmPlan::new(1, k_dim, self.out_channels).ternary_b_words()
    }

    /// Whether a valid quantised snapshot matches `cfg`'s kernel choice.
    /// Convolution only has a ternary kernel; `Int8Packed` always runs
    /// the f32 fallback here.
    fn quant_snapshot_active(&self, cfg: &ExecConfig) -> bool {
        matches!(
            (cfg.gemm_algo, &self.quant_weights),
            (GemmAlgorithm::TernaryPacked, Some(QuantPanels::Ternary { codes, .. }))
                if self.format == WeightFormat::Ternary
                    && codes.len() == self.ternary_code_words()
        )
    }

    /// Blocking plan of the packed per-image GEMM: `[out_c × patch_len]`
    /// weights times the `[patch_len × out_positions]` column matrix.
    fn packed_plan(&self, geom: &Conv2dGeometry) -> GemmPlan {
        GemmPlan::new(self.out_channels, geom.patch_len(), geom.out_positions())
    }

    /// Blocking plan of the batch-merged packed GEMM: `group` images'
    /// column matrices concatenated into one `[patch_len × g·positions]`
    /// operand. `kc` depends only on `patch_len`, so per-output
    /// accumulation order — and therefore every output bit — matches the
    /// per-image product.
    fn packed_batch_plan(&self, geom: &Conv2dGeometry, group: usize) -> GemmPlan {
        GemmPlan::new(
            self.out_channels,
            geom.patch_len(),
            group * geom.out_positions(),
        )
    }

    /// How many images of a batch the packed path merges into one GEMM.
    ///
    /// Merging pays exactly when the per-image column count is below one
    /// column-grain (`nc = 4·NR = 64`): micro-kernel lanes stop being
    /// zero-padded (a 2×2 output plane uses 4 of `NR = 16` lanes alone)
    /// and the weight A-panels stream from memory once per grain instead
    /// of once per image. Beyond one grain per group the A-traffic is
    /// invariant in the group size, while the merged B/C working set
    /// keeps growing past cache — measured on VGG-16, whole-batch
    /// merging *slows* the wide early layers. So: the largest group
    /// whose merged columns still fit one grain, at least 1.
    fn packed_group(&self, geom: &Conv2dGeometry, n: usize) -> usize {
        let plane = geom.out_positions().max(1);
        ((4 * cnn_stack_tensor::NR) / plane).clamp(1, n.max(1))
    }

    /// Direct (7-loop) dense kernel over raw slices. All `eval_*_into`
    /// kernels are shared verbatim by [`Layer::forward`] and
    /// [`Layer::forward_into`], so the arena engine is bit-identical to
    /// the tensor path.
    fn eval_dense_direct_into(
        &self,
        in_data: &[f32],
        n: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let (h, w) = (geom.in_h, geom.in_w);
        let plane = geom.out_h * geom.out_w;
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let wdata = self.weight.value.data();
        let bdata = self.bias.value.data();
        let k = self.kernel;
        let row = self.in_channels * k * k;
        let writer = DisjointWriter::new(out);
        let writer = &writer;
        for img in 0..n {
            let x = &in_data[img * in_img..(img + 1) * in_img];
            parallel_for(cfg.threads, self.out_channels, cfg.schedule, |range| {
                for o in range {
                    // SAFETY: each grain `o` owns exactly one output
                    // plane; planes never overlap across grains.
                    let dst = unsafe {
                        writer.slice_mut(img * out_img + o * plane, img * out_img + (o + 1) * plane)
                    };
                    dst.fill(bdata[o]);
                    let filter = &wdata[o * row..(o + 1) * row];
                    direct_channel_conv(x, filter, dst, geom, h, w, k);
                    if cfg.fused_relu {
                        for d in dst.iter_mut() {
                            *d = d.max(0.0);
                        }
                    }
                }
            });
        }
    }

    /// im2col + GEMM dense kernel over raw slices; `scratch` holds the
    /// per-image column matrix ([`Self::im2col_scratch_elems`] floats).
    #[allow(clippy::too_many_arguments)]
    fn eval_dense_im2col_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let plane = geom.out_positions();
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let wmat = self.weight_matrix();
        let k_dim = wmat.shape().dims()[1];
        let bdata = self.bias.value.data();
        let cols_len = self.im2col_scratch_elems(geom);
        let writer = DisjointWriter::new(out);
        let writer = &writer;
        for img in 0..n {
            im2col_into(
                &in_data[img * in_img..(img + 1) * in_img],
                geom,
                &mut scratch[..cols_len],
            );
            let cols: &[f32] = &scratch[..cols_len];
            parallel_for(cfg.threads, self.out_channels, cfg.schedule, |range| {
                // SAFETY: grain range covers whole output rows
                // [start*plane, end*plane) of this image — disjoint.
                let dst = unsafe {
                    writer.slice_mut(
                        img * out_img + range.start * plane,
                        img * out_img + range.end * plane,
                    )
                };
                for (local, o) in range.clone().enumerate() {
                    dst[local * plane..(local + 1) * plane].fill(bdata[o]);
                }
                // One GEMM over the claimed row block. `Packed` is routed
                // through `eval_dense_im2col_packed_into`, so this arm only
                // sees the row-splittable kernels (it also serves as the
                // degradation target when packed demotes to blocked).
                let algo = match cfg.gemm_algo {
                    GemmAlgorithm::Packed => GemmAlgorithm::Blocked,
                    other => other,
                };
                let wslice = &wmat.data()[range.start * k_dim..range.end * k_dim];
                gemm::gemm_into(
                    wslice,
                    cols,
                    dst,
                    range.end - range.start,
                    k_dim,
                    plane,
                    algo,
                );
                if cfg.fused_relu {
                    for d in dst.iter_mut() {
                        *d = d.max(0.0);
                    }
                }
            });
        }
    }

    /// Packed-GEMM im2col kernel: column panels are packed straight from
    /// the image (fused im2col→pack, the `[patch_len × out_positions]`
    /// matrix is never materialised) and multiplied against the
    /// plan-time packed weight panels in one whole-layer GEMM whose
    /// panel grid is distributed over the pool. `scratch` holds the
    /// packed-B region plus a packed-A region used only when the
    /// plan-time panels are absent or stale.
    #[allow(clippy::too_many_arguments)]
    fn eval_dense_im2col_packed_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let plane = geom.out_positions();
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let bdata = self.bias.value.data();
        let group = self.packed_group(geom, n);
        let plan = self.packed_batch_plan(geom, group);
        let c_elems = if group > 1 {
            self.out_channels * group * plane
        } else {
            0
        };
        let have_panels =
            matches!(&self.packed_weights, Some(panels) if panels.len() == plan.packed_a_elems());
        // The A-panel repack region is needed only when the plan-time
        // panels are absent or stale; the steady-state workspace the
        // liveness planner sizes (`forward_workspace_elems`) excludes
        // it, so slice it only on the cold path.
        let a_elems = if have_panels {
            0
        } else {
            plan.packed_a_elems()
        };
        let (b_buf, rest) = scratch[..plan.packed_b_elems() + c_elems + a_elems]
            .split_at_mut(plan.packed_b_elems());
        let (c_buf, a_buf) = rest.split_at_mut(c_elems);
        let packed_a: &[f32] = match &self.packed_weights {
            Some(panels) if panels.len() == plan.packed_a_elems() => panels.as_slice(),
            // No plan-time panels (plain `forward`, or a cache dropped by
            // weight surgery/fault injection): pack into scratch.
            _ => {
                gemm::pack_a_into(&plan, self.weight.value.data(), a_buf);
                a_buf
            }
        };
        let mut img = 0;
        while img < n {
            let g = group.min(n - img);
            let images = &in_data[img * in_img..(img + g) * in_img];
            if g == 1 {
                // Ungrouped: GEMM straight into the image's output planes,
                // no merged-C scatter.
                if geom.is_pointwise_identity() {
                    // Pointwise (1×1/s1/p0) convolution is a plain GEMM:
                    // the im2col matrix *is* the image, so skip the
                    // per-tap gather and pack the image rows straight
                    // into B panels.
                    gemm::pack_b_into(&self.packed_plan(geom), images, b_buf);
                } else {
                    pack_b_im2col_into(images, geom, b_buf);
                }
                let dst = &mut out[img * out_img..(img + 1) * out_img];
                for (o, chunk) in dst.chunks_exact_mut(plane).enumerate() {
                    chunk.fill(bdata[o]);
                }
                gemm::gemm_prepacked_epilogue(
                    &self.packed_plan(geom),
                    packed_a,
                    b_buf,
                    dst,
                    cfg.threads,
                    cfg.schedule,
                    cfg.epilogue(),
                );
                img += 1;
                continue;
            }
            // Batch-merged GEMM over this group's columns — the serving
            // layer's single-core batching win: micro-kernel lanes that a
            // small output plane would leave zero-padded are filled by
            // co-batched images, and the weight A-panels stream through
            // cache once per group instead of once per image. `kc` is
            // unchanged, so per-output accumulation order — and every
            // output bit — matches the ungrouped product.
            let merged = g * plane;
            let gplan = self.packed_batch_plan(geom, g);
            pack_b_im2col_batch_into(images, g, geom, b_buf);
            // Merged C is `[out_c × g·plane]`: bias-prefill each output
            // row, run the product with the fused epilogue, then scatter
            // each row's per-image segment into its NCHW plane
            // (contiguous copies, cheap next to the saved panel traffic).
            let c_buf = &mut c_buf[..self.out_channels * merged];
            for (o, row) in c_buf.chunks_exact_mut(merged).enumerate() {
                row.fill(bdata[o]);
            }
            gemm::gemm_prepacked_epilogue(
                &gplan,
                packed_a,
                b_buf,
                c_buf,
                cfg.threads,
                cfg.schedule,
                cfg.epilogue(),
            );
            for gi in 0..g {
                let dst = &mut out[(img + gi) * out_img..(img + gi + 1) * out_img];
                for (o, chunk) in dst.chunks_exact_mut(plane).enumerate() {
                    chunk.copy_from_slice(
                        &c_buf[o * merged + gi * plane..o * merged + (gi + 1) * plane],
                    );
                }
            }
            img += g;
        }
    }

    /// Ternary packed-GEMM im2col kernel, run **transposed**:
    /// `Outᵀ [positions × out_c] = Colᵀ · Wᵀ`. The im2col matrix
    /// `[patch_len × positions]` is exactly the Aᵀ operand, so it packs
    /// straight into MR-row A-panels; the weights stay 2-bit packed in
    /// the B codes and are decoded to `{+positive, −negative, 0}` inside
    /// the micro-kernel. The product lands in a `[positions × out_c]`
    /// buffer and is transpose-scattered into the NCHW plane.
    #[allow(clippy::too_many_arguments)]
    fn eval_ternary_im2col_into(
        &self,
        codes: &[u32],
        positive: f32,
        negative: f32,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let plane = geom.out_positions();
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let bdata = self.bias.value.data();
        let cols_len = self.im2col_scratch_elems(geom);
        let plan = self.ternary_plan(geom);
        let (cols, rest) = scratch[..cols_len + plan.packed_a_elems() + plane * self.out_channels]
            .split_at_mut(cols_len);
        let (a_buf, c_buf) = rest.split_at_mut(plan.packed_a_elems());
        for img in 0..n {
            im2col_into(&in_data[img * in_img..(img + 1) * in_img], geom, cols);
            gemm::pack_a_transposed_into(&plan, cols, a_buf);
            // Every Outᵀ row is one output position: prefill each with
            // the bias vector (the `+=` GEMM contract folds it in).
            for row in c_buf.chunks_exact_mut(self.out_channels) {
                row.copy_from_slice(bdata);
            }
            gemm::gemm_prepacked_ternary(
                &plan,
                a_buf,
                codes,
                positive,
                negative,
                c_buf,
                cfg.threads,
                cfg.schedule,
                cfg.epilogue(),
            );
            let dst = &mut out[img * out_img..(img + 1) * out_img];
            for (o, drow) in dst.chunks_exact_mut(plane).enumerate() {
                for (pos, d) in drow.iter_mut().enumerate() {
                    *d = c_buf[pos * self.out_channels + o];
                }
            }
        }
    }

    /// Routes a packed-engine run to the quantised kernel when `cfg`
    /// selects one *and* a valid snapshot is installed; anything else —
    /// plain `Packed`, `Int8Packed` (no int8 convolution kernel), or a
    /// missing/stale ternary snapshot — runs the f32 packed engine on
    /// the dense master weights. A dropped snapshot is a performance
    /// event, never a correctness event.
    #[allow(clippy::too_many_arguments)]
    fn eval_packed_dispatch_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        if let (
            GemmAlgorithm::TernaryPacked,
            Some(QuantPanels::Ternary {
                codes,
                positive,
                negative,
            }),
        ) = (cfg.gemm_algo, &self.quant_weights)
        {
            if self.format == WeightFormat::Ternary && codes.len() == self.ternary_code_words() {
                return self.eval_ternary_im2col_into(
                    codes, *positive, *negative, in_data, n, h, w, geom, out, scratch, cfg,
                );
            }
        }
        self.eval_dense_im2col_packed_into(in_data, n, h, w, geom, out, scratch, cfg)
    }

    /// CSR kernel over raw slices; `scratch` is only read by the im2col
    /// lowering (empty slice is fine for direct).
    #[allow(clippy::too_many_arguments)]
    fn eval_csr_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let csr = self
            .csr
            .as_ref()
            .expect("CSR snapshot missing; call set_format(WeightFormat::Csr)");
        let plane = geom.out_positions();
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let bdata = self.bias.value.data();
        let k = self.kernel;
        let cols_len = self.im2col_scratch_elems(geom);
        let writer = DisjointWriter::new(out);
        let writer = &writer;
        for img in 0..n {
            match cfg.conv_algo {
                // The transform-domain algorithms apply to dense
                // weights only; CSR falls back to the direct sparse
                // kernel.
                ConvAlgorithm::Direct
                | ConvAlgorithm::Winograd
                | ConvAlgorithm::WinogradF4
                | ConvAlgorithm::Fft => {
                    let x = &in_data[img * in_img..(img + 1) * in_img];
                    parallel_for(cfg.threads, self.out_channels, cfg.schedule, |range| {
                        for o in range {
                            // SAFETY: one output plane per grain.
                            let dst = unsafe {
                                writer.slice_mut(
                                    img * out_img + o * plane,
                                    img * out_img + (o + 1) * plane,
                                )
                            };
                            dst.fill(bdata[o]);
                            let (idx, val) = csr.row(o);
                            sparse_channel_conv(x, idx, val, dst, geom, h, w, k);
                            if cfg.fused_relu {
                                for d in dst.iter_mut() {
                                    *d = d.max(0.0);
                                }
                            }
                        }
                    });
                }
                ConvAlgorithm::Im2col => {
                    im2col_into(
                        &in_data[img * in_img..(img + 1) * in_img],
                        geom,
                        &mut scratch[..cols_len],
                    );
                    let cols: &[f32] = &scratch[..cols_len];
                    parallel_for(cfg.threads, self.out_channels, cfg.schedule, |range| {
                        // SAFETY: whole-row block per grain range.
                        let dst = unsafe {
                            writer.slice_mut(
                                img * out_img + range.start * plane,
                                img * out_img + range.end * plane,
                            )
                        };
                        for (local, o) in range.clone().enumerate() {
                            dst[local * plane..(local + 1) * plane].fill(bdata[o]);
                            let (idx, val) = csr.row(o);
                            let drow = &mut dst[local * plane..(local + 1) * plane];
                            for (&col, &v) in idx.iter().zip(val) {
                                let brow = &cols[col as usize * plane..(col as usize + 1) * plane];
                                for (d, &b) in drow.iter_mut().zip(brow) {
                                    *d += v * b;
                                }
                            }
                            if cfg.fused_relu {
                                for d in dst[local * plane..(local + 1) * plane].iter_mut() {
                                    *d = d.max(0.0);
                                }
                            }
                        }
                    });
                }
            }
        }
    }

    /// Whether a dense-weights Winograd execution would take the true
    /// Winograd transform (3×3, stride 1) rather than the direct
    /// fallback. The transform allocates internally and rounds
    /// differently, so the engine routes such layers through
    /// [`Layer::forward`] to stay bit-identical.
    fn takes_winograd_transform(&self, cfg: &ExecConfig) -> bool {
        self.format == WeightFormat::Dense
            && cfg.conv_algo == ConvAlgorithm::Winograd
            && self.kernel == 3
            && self.stride == 1
    }

    /// Whether an F(4×4, 3×3) execution takes the Winograd transform
    /// (3×3, stride 1, non-CSR weights) rather than the direct
    /// fallback. Unlike F(2×2), the F(4×4) kernel runs in
    /// caller-provided scratch, so it stays on the `forward_into` path
    /// and its workspace is visible to the liveness planner.
    fn takes_winograd4_transform(&self, cfg: &ExecConfig) -> bool {
        self.format != WeightFormat::Csr
            && cfg.conv_algo == ConvAlgorithm::WinogradF4
            && self.kernel == 3
            && self.stride == 1
    }

    /// Whether an FFT execution takes the frequency-domain kernel.
    /// FFT convolution handles any kernel/stride/padding over dense
    /// master weights; only CSR storage falls back to the sparse
    /// kernels.
    fn takes_fft(&self, cfg: &ExecConfig) -> bool {
        self.format != WeightFormat::Csr && cfg.conv_algo == ConvAlgorithm::Fft
    }

    /// F(4×4, 3×3) evaluation into caller buffers: the shared kernel
    /// for `forward` and `forward_into`, plus the fused-ReLU epilogue.
    #[allow(clippy::too_many_arguments)]
    fn eval_winograd4_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        winograd4_conv2d_into(
            in_data,
            n,
            self.in_channels,
            h,
            w,
            self.weight.value.data(),
            self.out_channels,
            Some(self.bias.value.data()),
            self.padding,
            out,
            scratch,
        )
        .expect("takes_winograd4_transform checked eligibility");
        if cfg.fused_relu {
            for v in out.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }

    /// FFT evaluation into caller buffers: the shared kernel for
    /// `forward` and `forward_into`, plus the fused-ReLU epilogue.
    #[allow(clippy::too_many_arguments)]
    fn eval_fft_into(
        &self,
        in_data: &[f32],
        n: usize,
        geom: &Conv2dGeometry,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        fft_conv2d_into(
            in_data,
            n,
            geom,
            self.weight.value.data(),
            self.out_channels,
            Some(self.bias.value.data()),
            out,
            scratch,
        )
        .expect("geometry and scratch sized by forward_scratch_elems");
        if cfg.fused_relu {
            for v in out.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

/// Accumulates one dense filter over one image into one output plane.
fn direct_channel_conv(
    x: &[f32],
    filter: &[f32],
    dst: &mut [f32],
    geom: &Conv2dGeometry,
    h: usize,
    w: usize,
    k: usize,
) {
    for c in 0..geom.in_channels {
        let x_plane = &x[c * h * w..(c + 1) * h * w];
        for kh in 0..k {
            for kw in 0..k {
                let wv = filter[(c * k + kh) * k + kw];
                if wv == 0.0 {
                    continue;
                }
                accumulate_tap(x_plane, wv, dst, geom, h, w, kh, kw);
            }
        }
    }
}

/// Accumulates the non-zero taps of one CSR filter row into one plane.
#[allow(clippy::too_many_arguments)]
fn sparse_channel_conv(
    x: &[f32],
    idx: &[u32],
    val: &[f32],
    dst: &mut [f32],
    geom: &Conv2dGeometry,
    h: usize,
    w: usize,
    k: usize,
) {
    let kk = k * k;
    for (&flat, &wv) in idx.iter().zip(val) {
        let flat = flat as usize;
        let c = flat / kk;
        let kh = (flat % kk) / k;
        let kw = flat % k;
        let x_plane = &x[c * h * w..(c + 1) * h * w];
        accumulate_tap(x_plane, wv, dst, geom, h, w, kh, kw);
    }
}

/// Adds `wv * shifted(x_plane)` into the output plane for kernel tap
/// `(kh, kw)`.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn accumulate_tap(
    x_plane: &[f32],
    wv: f32,
    dst: &mut [f32],
    geom: &Conv2dGeometry,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
) {
    for oh in 0..geom.out_h {
        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
        if ih < 0 || ih as usize >= h {
            continue;
        }
        let x_row = &x_plane[ih as usize * w..(ih as usize + 1) * w];
        let d_row = &mut dst[oh * geom.out_w..(oh + 1) * geom.out_w];
        for ow in 0..geom.out_w {
            let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
            if iw < 0 || iw as usize >= w {
                continue;
            }
            d_row[ow] += wv * x_row[iw as usize];
        }
    }
}

impl Layer for Conv2d {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!(
            "conv{k}x{k}({i}->{o})/s{s}",
            k = self.kernel,
            i = self.in_channels,
            o = self.out_channels,
            s = self.stride
        )
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        assert_eq!(
            in_c,
            self.in_channels,
            "{}: input channel mismatch",
            self.name()
        );
        let geom = self.geometry(h, w);
        if phase == Phase::Train {
            self.cached_input = Some(input.clone());
        }
        if self.takes_winograd_transform(cfg) {
            let mut out = winograd_conv2d(
                input,
                &self.weight.value,
                Some(self.bias.value.data()),
                self.padding,
            )
            .expect("takes_winograd_transform checked eligibility");
            if cfg.fused_relu {
                for v in out.data_mut().iter_mut() {
                    *v = v.max(0.0);
                }
            }
            return out;
        }
        let mut out = Tensor::zeros([n, self.out_channels, geom.out_h, geom.out_w]);
        let mut scratch = vec![0.0f32; self.forward_scratch_elems(&[n, in_c, h, w], cfg)];
        match self.format {
            WeightFormat::Csr => self.eval_csr_into(
                input.data(),
                n,
                h,
                w,
                &geom,
                out.data_mut(),
                &mut scratch,
                cfg,
            ),
            // Dense master weights drive every other format; quantised
            // formats route through the packed dispatcher, which falls
            // back to the f32 engine when no snapshot applies.
            _ => match cfg.conv_algo {
                ConvAlgorithm::Im2col if self.uses_packed_gemm(cfg) => self
                    .eval_packed_dispatch_into(
                        input.data(),
                        n,
                        h,
                        w,
                        &geom,
                        out.data_mut(),
                        &mut scratch,
                        cfg,
                    ),
                ConvAlgorithm::Im2col => self.eval_dense_im2col_into(
                    input.data(),
                    n,
                    h,
                    w,
                    &geom,
                    out.data_mut(),
                    &mut scratch,
                    cfg,
                ),
                ConvAlgorithm::WinogradF4 if self.takes_winograd4_transform(cfg) => self
                    .eval_winograd4_into(input.data(), n, h, w, out.data_mut(), &mut scratch, cfg),
                ConvAlgorithm::Fft if self.takes_fft(cfg) => {
                    self.eval_fft_into(input.data(), n, &geom, out.data_mut(), &mut scratch, cfg)
                }
                // Winograd variants on a non-3x3/stride-1 layer fall
                // back to the direct kernel.
                ConvAlgorithm::Direct
                | ConvAlgorithm::Winograd
                | ConvAlgorithm::WinogradF4
                | ConvAlgorithm::Fft => {
                    self.eval_dense_direct_into(input.data(), n, &geom, out.data_mut(), cfg)
                }
            },
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward without a Train-phase forward");
        let (n, _, h, w) = input.shape().nchw();
        let geom = self.geometry(h, w);
        let plane = geom.out_positions();
        let row = self.in_channels * self.kernel * self.kernel;
        let in_img = self.in_channels * h * w;
        let out_img = self.out_channels * plane;
        let wmat = self.weight_matrix();
        let wmat_t = ops::transpose(&wmat);
        let mut grad_input = Tensor::zeros(input.shape().dims().to_vec());

        for img in 0..n {
            let cols = im2col(&input.data()[img * in_img..(img + 1) * in_img], &geom);
            let dy = Tensor::from_vec(
                [self.out_channels, plane],
                grad_out.data()[img * out_img..(img + 1) * out_img].to_vec(),
            );
            // dW += dY · colsᵀ
            let cols_t = ops::transpose(&cols);
            let dw = cnn_stack_tensor::matmul(&dy, &cols_t);
            debug_assert_eq!(dw.len(), self.out_channels * row);
            self.weight.grad.axpy(
                1.0,
                &dw.reshape([
                    self.out_channels,
                    self.in_channels,
                    self.kernel,
                    self.kernel,
                ]),
            );
            // db += rowsum(dY)
            for o in 0..self.out_channels {
                let s: f32 = dy.data()[o * plane..(o + 1) * plane].iter().sum();
                self.bias.grad.data_mut()[o] += s;
            }
            // dX = col2im(Wᵀ · dY)
            let dcols = cnn_stack_tensor::matmul(&wmat_t, &dy);
            col2im(
                &dcols,
                &geom,
                &mut grad_input.data_mut()[img * in_img..(img + 1) * in_img],
            );
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // The caller may rewrite the weights (masked pruning does), which
        // would leave plan-time packed panels stale — drop them; the
        // next `prepare` or scratch-path run repacks. The quantised
        // snapshot goes too: stale codes would silently diverge from the
        // master weights, so the layer falls back to the dense f32
        // engine until `set_format` re-snapshots. The CSR snapshot is
        // left alone: its refresh contract is an explicit `set_format`.
        self.packed_weights = None;
        self.quant_weights = None;
        vec![&mut self.weight, &mut self.bias]
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let n = input_shape[0];
        let (h, w) = (input_shape[2], input_shape[3]);
        let geom = self.geometry(h, w);
        let positions = geom.out_positions();
        let row = self.in_channels * self.kernel * self.kernel;
        let weight_elems = self.out_channels * row;
        let weight_nnz = match (&self.csr, self.format) {
            (Some(csr), WeightFormat::Csr) => csr.nnz(),
            _ => self.weight.value.len() - self.weight.value.count_zeros(0.0),
        };
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Conv {
                geom,
                out_channels: self.out_channels,
            },
            macs: (n * self.out_channels * row * positions) as u64,
            weight_elems,
            weight_nnz,
            format: self.format,
            input_elems: input_shape.iter().product(),
            output_elems: n * self.out_channels * positions,
            output_shape: vec![n, self.out_channels, geom.out_h, geom.out_w],
            scratch_elems: self.in_channels * (h + 2 * self.padding) * (w + 2 * self.padding),
            parallel_grains: self.out_channels,
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, cfg: &ExecConfig) -> bool {
        // The true Winograd transform allocates internally and rounds
        // differently; the engine falls back to `forward` for it.
        !self.takes_winograd_transform(cfg)
    }

    fn forward_scratch_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        if self.takes_winograd4_transform(cfg) {
            return winograd4_scratch_elems(self.in_channels, self.out_channels);
        }
        if self.takes_fft(cfg) {
            let geom = self.geometry(input_shape[2], input_shape[3]);
            return fft_conv_scratch_elems(&geom, self.out_channels);
        }
        if cfg.conv_algo == ConvAlgorithm::Im2col {
            let geom = self.geometry(input_shape[2], input_shape[3]);
            if self.uses_packed_gemm(cfg) {
                // Packed-B panels (group-merged when the group is > 1), a
                // merged-C region for the grouped product, plus a
                // packed-A region so the `&self` run path can repack
                // weights even when the plan-time panels have been
                // dropped.
                let group = self.packed_group(&geom, input_shape[0]);
                let plan = self.packed_batch_plan(&geom, group);
                let c_elems = if group > 1 {
                    self.out_channels * group * geom.out_positions()
                } else {
                    0
                };
                let f32_elems = plan.packed_b_elems() + c_elems + plan.packed_a_elems();
                if cfg.gemm_algo == GemmAlgorithm::TernaryPacked {
                    // Quant dispatch is decided at run time, so cover
                    // both paths: the ternary kernel needs the im2col
                    // matrix, its transposed A-panels, and the
                    // `[positions × out_c]` Outᵀ buffer.
                    let tplan = self.ternary_plan(&geom);
                    let t_elems = self.im2col_scratch_elems(&geom)
                        + tplan.packed_a_elems()
                        + geom.out_positions() * self.out_channels;
                    f32_elems.max(t_elems)
                } else {
                    f32_elems
                }
            } else {
                self.im2col_scratch_elems(&geom)
            }
        } else {
            0
        }
    }

    fn forward_workspace_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        // The transform-domain kernels have no prepare-time caching, so
        // their steady-state workspace equals the conservative bound.
        if self.takes_winograd4_transform(cfg) || self.takes_fft(cfg) {
            return self.forward_scratch_elems(input_shape, cfg);
        }
        if cfg.conv_algo == ConvAlgorithm::Im2col {
            let geom = self.geometry(input_shape[2], input_shape[3]);
            if self.uses_packed_gemm(cfg) {
                // Steady state: `prepare()` has cached the weight
                // A-panels (or the quantised snapshot), so unlike
                // `forward_scratch_elems` the repack region is never
                // paid — for VGG-scale layers that region dominates
                // the conservative bound.
                let group = self.packed_group(&geom, input_shape[0]);
                let plan = self.packed_batch_plan(&geom, group);
                let c_elems = if group > 1 {
                    self.out_channels * group * geom.out_positions()
                } else {
                    0
                };
                let f32_elems = plan.packed_b_elems() + c_elems;
                if cfg.gemm_algo == GemmAlgorithm::TernaryPacked {
                    // Quant dispatch is decided at run time, so cover
                    // both the ternary kernel and the dense fallback.
                    let tplan = self.ternary_plan(&geom);
                    let t_elems = self.im2col_scratch_elems(&geom)
                        + tplan.packed_a_elems()
                        + geom.out_positions() * self.out_channels;
                    f32_elems.max(t_elems)
                } else {
                    f32_elems
                }
            } else {
                self.im2col_scratch_elems(&geom)
            }
        } else {
            0
        }
    }

    fn prepare(&mut self, cfg: &ExecConfig) {
        if self.uses_packed_gemm(cfg) {
            // An active quantised snapshot *is* the weight prepack: the
            // f32 panels would never be read, so don't build them.
            if self.quant_snapshot_active(cfg) {
                self.packed_weights = None;
                return;
            }
            let k_dim = self.in_channels * self.kernel * self.kernel;
            // A-panel layout depends only on (out_c, patch_len), not on
            // the output extent, so the panels serve every input shape.
            let plan = GemmPlan::new(self.out_channels, k_dim, 1);
            // A still-valid cache (own or adopted from a donor session)
            // is kept as-is: every weight mutation drops the handle, so
            // `Some` + matching length implies the panels are fresh.
            if matches!(&self.packed_weights, Some(p) if p.len() == plan.packed_a_elems()) {
                return;
            }
            let mut panels = vec![0.0f32; plan.packed_a_elems()];
            gemm::pack_a_into(&plan, self.weight.value.data(), &mut panels);
            // Fresh Vec, then Arc::new — never mutate through the Arc.
            self.packed_weights = Some(Arc::new(panels));
        } else {
            self.packed_weights = None;
        }
    }

    fn packed_panels(&self) -> Option<Arc<Vec<f32>>> {
        self.packed_weights.clone()
    }

    fn install_packed_panels(&mut self, panels: Arc<Vec<f32>>) -> bool {
        let k_dim = self.in_channels * self.kernel * self.kernel;
        let want = GemmPlan::new(self.out_channels, k_dim, 1).packed_a_elems();
        if panels.len() == want {
            self.packed_weights = Some(panels);
            true
        } else {
            false
        }
    }

    fn quant_panels(&self) -> Option<QuantPanels> {
        self.quant_weights.clone()
    }

    fn install_quant_panels(&mut self, panels: QuantPanels) -> bool {
        match &panels {
            QuantPanels::Ternary { codes, .. } if codes.len() == self.ternary_code_words() => {
                self.quant_weights = Some(panels);
                true
            }
            // No int8 convolution kernel — refuse the panels so the
            // layer never advertises a snapshot it cannot run.
            _ => false,
        }
    }

    fn gemm_plan(&self, input_shape: &[usize], cfg: &ExecConfig) -> Option<GemmPlan> {
        if self.uses_packed_gemm(cfg) {
            let geom = self.geometry(input_shape[2], input_shape[3]);
            Some(self.packed_batch_plan(&geom, self.packed_group(&geom, input_shape[0])))
        } else {
            None
        }
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let (n, in_c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        assert_eq!(
            in_c,
            self.in_channels,
            "{}: input channel mismatch",
            self.name()
        );
        let geom = self.geometry(h, w);
        match self.format {
            WeightFormat::Csr => self.eval_csr_into(input, n, h, w, &geom, out, scratch, cfg),
            _ => match cfg.conv_algo {
                ConvAlgorithm::Im2col if self.uses_packed_gemm(cfg) => {
                    self.eval_packed_dispatch_into(input, n, h, w, &geom, out, scratch, cfg)
                }
                ConvAlgorithm::Im2col => {
                    self.eval_dense_im2col_into(input, n, h, w, &geom, out, scratch, cfg)
                }
                ConvAlgorithm::WinogradF4 if self.takes_winograd4_transform(cfg) => {
                    self.eval_winograd4_into(input, n, h, w, out, scratch, cfg)
                }
                ConvAlgorithm::Fft if self.takes_fft(cfg) => {
                    self.eval_fft_into(input, n, &geom, out, scratch, cfg)
                }
                // The F(2x2) Winograd arm only sees non-eligible layers
                // here (`forward_into_supported` gates the rest) —
                // direct fallback, same as `forward`. Non-eligible
                // F(4x4) layers fall back the same way.
                ConvAlgorithm::Direct
                | ConvAlgorithm::Winograd
                | ConvAlgorithm::WinogradF4
                | ConvAlgorithm::Fft => self.eval_dense_direct_into(input, n, &geom, out, cfg),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn all_paths(conv: &mut Conv2d, x: &Tensor) -> Vec<Tensor> {
        let mut outs = Vec::new();
        for format in [WeightFormat::Dense, WeightFormat::Csr] {
            conv.set_format(format);
            for algo in [ConvAlgorithm::Direct, ConvAlgorithm::Im2col] {
                // Both GEMM engines: packed (panels + micro-kernel) and the
                // blocked fallback that the guard demotes to.
                for gemm_algo in [gemm::GemmAlgorithm::Packed, gemm::GemmAlgorithm::Blocked] {
                    for threads in [1, 3] {
                        let cfg = ExecConfig {
                            threads,
                            conv_algo: algo,
                            gemm_algo,
                            ..ExecConfig::serial()
                        };
                        outs.push(conv.forward(x, Phase::Eval, &cfg));
                    }
                }
            }
        }
        conv.set_format(WeightFormat::Dense);
        outs
    }

    #[test]
    fn output_shape() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        let y = conv.forward(
            &Tensor::zeros([2, 3, 16, 16]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[2, 8, 16, 16]);
        let mut strided = Conv2d::new(3, 8, 3, 2, 1, 0);
        let y = strided.forward(
            &Tensor::zeros([1, 3, 16, 16]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn every_format_algorithm_thread_combo_agrees() {
        let mut conv = Conv2d::new(3, 5, 3, 1, 1, 11);
        // Plant some zeros so CSR actually skips entries.
        conv.weight_mut().value.data_mut()[3] = 0.0;
        conv.weight_mut().value.data_mut()[40] = 0.0;
        let x = random([2, 3, 7, 7], 1);
        let outs = all_paths(&mut conv, &x);
        for (i, o) in outs.iter().enumerate().skip(1) {
            assert!(
                outs[0].allclose(o, 1e-4),
                "path {i} disagrees with reference"
            );
        }
    }

    #[test]
    fn prepared_panels_bit_match_cacheless_run() {
        let mut conv = Conv2d::new(3, 6, 3, 1, 1, 9);
        let x = random([2, 3, 8, 8], 11);
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        };
        let cacheless = conv.forward(&x, Phase::Eval, &cfg);
        conv.prepare(&cfg);
        assert!(conv.packed_weights.is_some());
        let shape = [2, 3, 8, 8];
        let mut out = vec![0.0f32; cacheless.len()];
        let mut scratch = vec![0.0f32; conv.forward_scratch_elems(&shape, &cfg)];
        conv.forward_into(x.data(), &shape, &mut out, &mut scratch, &cfg);
        // Same plan, same kernel, same panel layout -> bit-identical.
        assert_eq!(out.as_slice(), cacheless.data());
        // Touching the weights drops the cache.
        let _ = conv.weight_mut();
        assert!(conv.packed_weights.is_none());
    }

    #[test]
    fn batched_packed_gemm_bit_matches_per_image() {
        // The n > 1 packed path merges every image's columns into one
        // GEMM; `kc` is unchanged so it must be *bit*-identical to
        // running each image alone. Odd batches and planes that are not
        // NR-multiples make merged panels straddle image boundaries.
        for &(in_c, out_c, k, stride, pad, hw) in &[
            (3usize, 6usize, 3usize, 1usize, 1usize, 8usize), // plane 64
            (8, 4, 1, 1, 0, 5),                               // pointwise, plane 25
            (4, 5, 3, 2, 1, 6),                               // strided, plane 9
        ] {
            let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, 13);
            let cfg = ExecConfig {
                conv_algo: ConvAlgorithm::Im2col,
                ..ExecConfig::serial()
            };
            conv.prepare(&cfg);
            let n = 5;
            let x = random([n, in_c, hw, hw], 99);
            let shape = [n, in_c, hw, hw];
            let geom = conv.geometry(hw, hw);
            let out_img = out_c * geom.out_positions();
            let mut batched = vec![0.0f32; n * out_img];
            // NaN scratch: any read of an unwritten packing slot poisons
            // the output and fails the comparison below.
            let mut scratch = vec![f32::NAN; conv.forward_scratch_elems(&shape, &cfg)];
            conv.forward_into(x.data(), &shape, &mut batched, &mut scratch, &cfg);
            let single_shape = [1, in_c, hw, hw];
            let mut single = vec![0.0f32; out_img];
            let mut single_scratch =
                vec![f32::NAN; conv.forward_scratch_elems(&single_shape, &cfg)];
            for img in 0..n {
                single_scratch.fill(f32::NAN);
                conv.forward_into(
                    &x.data()[img * in_c * hw * hw..(img + 1) * in_c * hw * hw],
                    &single_shape,
                    &mut single,
                    &mut single_scratch,
                    &cfg,
                );
                assert_eq!(
                    batched[img * out_img..(img + 1) * out_img]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "image {img} of {in_c}->{out_c} k{k}/s{stride}/p{pad}"
                );
            }
        }
    }

    #[test]
    fn pointwise_conv_agrees_across_paths() {
        let mut conv = Conv2d::new(8, 4, 1, 1, 0, 5);
        let x = random([1, 8, 5, 5], 2);
        let outs = all_paths(&mut conv, &x);
        for o in &outs[1..] {
            assert!(outs[0].allclose(o, 1e-4));
        }
    }

    #[test]
    fn winograd_path_matches_direct() {
        let mut conv = Conv2d::new(3, 6, 3, 1, 1, 31);
        conv.bias.value.data_mut()[0] = 0.5;
        let x = random([2, 3, 8, 8], 17);
        let direct = conv.forward(&x, Phase::Eval, &ExecConfig::serial());
        let wino_cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Winograd,
            ..ExecConfig::serial()
        };
        let wino = conv.forward(&x, Phase::Eval, &wino_cfg);
        assert!(direct.allclose(&wino, 1e-3));
    }

    #[test]
    fn winograd_falls_back_for_unsupported_shapes() {
        // 1x1 kernel: Winograd config silently uses the direct kernel.
        let mut conv = Conv2d::new(4, 4, 1, 1, 0, 32);
        let x = random([1, 4, 5, 5], 18);
        let direct = conv.forward(&x, Phase::Eval, &ExecConfig::serial());
        let wino_cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Winograd,
            ..ExecConfig::serial()
        };
        let wino = conv.forward(&x, Phase::Eval, &wino_cfg);
        assert!(direct.allclose(&wino, 1e-6));
    }

    #[test]
    fn known_value_conv() {
        // 1 in, 1 out, 3x3 all-ones kernel, bias 1, on an all-ones 3x3
        // image with pad 1: centre output = 9 + 1, corner = 4 + 1.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        conv.weight_mut().value.fill(1.0);
        conv.bias.value.fill(1.0);
        let y = conv.forward(
            &Tensor::ones([1, 1, 3, 3]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y[[0, 0, 1, 1]], 10.0);
        assert_eq!(y[[0, 0, 0, 0]], 5.0);
    }

    #[test]
    fn backward_gradient_check_weights() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 7);
        let x = random([1, 2, 4, 4], 3);
        let cfg = ExecConfig::serial();
        // Loss = sum(output); dL/dy = ones.
        let y = conv.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        conv.backward(&ones);
        let analytic = conv.weight.grad.clone();
        let eps = 1e-3;
        for &i in &[0usize, 5, 17, 30, analytic.len() - 1] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, Phase::Eval, &cfg).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, Phase::Eval, &cfg).sum();
            conv.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic.data()[i]).abs() < 2e-2,
                "dW[{i}]: fd={fd}, analytic={}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn backward_gradient_check_input() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 9);
        let x = random([1, 2, 4, 4], 4);
        let cfg = ExecConfig::serial();
        let y = conv.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        let dx = conv.backward(&ones);
        let eps = 1e-3;
        for &i in &[0usize, 7, 19, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = conv.forward(&xp, Phase::Eval, &cfg).sum();
            let lm = conv.forward(&xm, Phase::Eval, &cfg).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 2e-2,
                "dX[{i}]: fd={fd}, analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn backward_bias_gradient_is_output_count() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 0);
        let x = random([2, 1, 4, 4], 5);
        let y = conv.forward(&x, Phase::Train, &ExecConfig::serial());
        let ones = Tensor::ones(y.shape().dims().to_vec());
        conv.backward(&ones);
        // dL/db_o = number of output positions summed = 2 images * 16.
        assert!((conv.bias.grad.data()[0] - 32.0).abs() < 1e-4);
    }

    #[test]
    fn remove_out_channel_drops_row() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 1);
        let before = conv.weight_matrix();
        conv.remove_out_channel(1);
        assert_eq!(conv.out_channels(), 2);
        let after = conv.weight_matrix();
        assert_eq!(after.data()[0..18], before.data()[0..18]);
        assert_eq!(after.data()[18..36], before.data()[36..54]);
    }

    #[test]
    fn remove_in_channel_drops_slice() {
        let mut conv = Conv2d::new(3, 2, 3, 1, 1, 2);
        let before = conv.weight.value.clone();
        conv.remove_in_channel(0);
        assert_eq!(conv.in_channels(), 2);
        // For each filter, channels 1..3 of the old weights survive.
        for o in 0..2 {
            for c in 0..2 {
                for t in 0..9 {
                    assert_eq!(
                        conv.weight.value.data()[(o * 2 + c) * 9 + t],
                        before.data()[(o * 3 + c + 1) * 9 + t]
                    );
                }
            }
        }
        // Forward still works at the new shape.
        let y = conv.forward(
            &Tensor::zeros([1, 2, 4, 4]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn descriptor_macs_formula() {
        let conv = Conv2d::new(3, 64, 3, 1, 1, 0);
        let d = conv.descriptor(&[1, 3, 32, 32]);
        assert_eq!(d.macs, 64 * 27 * 1024);
        assert_eq!(d.parallel_grains, 64);
        assert_eq!(d.weight_elems, 64 * 27);
        assert_eq!(d.output_elems, 64 * 1024);
    }

    #[test]
    fn descriptor_tracks_csr_nnz() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 3);
        conv.weight_mut().value.fill(0.0);
        conv.weight_mut().value.data_mut()[0] = 1.0;
        conv.set_format(WeightFormat::Csr);
        let d = conv.descriptor(&[1, 1, 4, 4]);
        assert_eq!(d.weight_nnz, 1);
        assert_eq!(d.format, WeightFormat::Csr);
        assert!(d.sparsity() > 0.9);
    }

    #[test]
    #[should_panic(expected = "backward without")]
    fn backward_requires_train_forward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        let _ = conv.backward(&Tensor::zeros([1, 1, 4, 4]));
    }
}
