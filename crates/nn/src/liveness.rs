//! Liveness-driven arena planning for compiled step sequences.
//!
//! The engine used to ping-pong activations between two fixed buffers,
//! each sized by the largest step, plus one conservative scratch region
//! sized by the hungriest kernel. That is simple but wasteful: on a
//! deep sequential net the large early-layer activations and the large
//! late-layer workspaces are never live at the same time, so their
//! bytes can be shared.
//!
//! This module computes the exact requirement instead. Over a compiled
//! step sequence:
//!
//! * the output activation of step *i* is written at *i* and consumed
//!   at *i + 1*, so it is live over the interval `[i, i + 1]` (the last
//!   step writes straight into the caller's output buffer and needs no
//!   arena slot);
//! * a step's workspace is live only over `[i, i]`;
//! * the network input lives in the caller's buffer and never enters
//!   the arena.
//!
//! Intervals that do not overlap in time may share bytes. The classic
//! formulation is interval-graph colouring with weighted nodes; we use
//! the standard greedy first-fit heuristic over intervals sorted by
//! size (largest first), which is exact on the clique bound for the
//! three-way overlap pattern these sequential plans produce and runs in
//! `O(n²)` on plans that are tens of steps long.
//!
//! [`ArenaLayout::colour`] produces the packed layout;
//! [`ArenaLayout::ping_pong`] reproduces the legacy two-buffer layout
//! byte for byte so the engine can keep it as a baseline strategy, and
//! [`MemoryFootprint`] summarises both for the planner, the budget
//! solver, and the observability gauges.

/// Memory extents of one compiled step, in `f32` elements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepExtent {
    /// Elements of the step's output activation.
    pub output_elems: usize,
    /// Steady-state workspace the kernel needs while the step runs,
    /// assuming `prepare()` has been honoured (packed panels cached).
    pub workspace_elems: usize,
    /// Conservative scratch bound the kernel may touch on a cold path
    /// (e.g. re-packing weights when no panel cache exists). Sizes the
    /// legacy ping-pong scratch region.
    pub scratch_elems: usize,
}

/// Arena offsets assigned to one step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepSlots {
    /// Offset of the step's output activation. Unused for the final
    /// step, whose output goes to the caller's buffer.
    pub dst_off: usize,
    /// Offset of the step's workspace region.
    pub ws_off: usize,
    /// Workspace elements reserved at `ws_off`.
    pub ws_elems: usize,
}

/// A concrete arena layout for one step sequence: where every
/// activation and workspace lives, and how big the arena must be.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArenaLayout {
    /// Per-step slot assignment, same order as the plan's steps.
    pub slots: Vec<StepSlots>,
    /// Total arena elements this layout needs.
    pub total_elems: usize,
    /// Counterfactual legacy footprint: two max-size activation
    /// buffers plus the largest conservative scratch region.
    pub naive_elems: usize,
}

/// One live interval awaiting placement.
struct Interval {
    start: usize,
    end: usize,
    elems: usize,
    /// Index into `slots`; activations patch `dst_off`, workspaces
    /// patch `ws_off`.
    step: usize,
    is_workspace: bool,
}

impl ArenaLayout {
    /// Greedy first-fit interval colouring over the step sequence.
    ///
    /// Intervals are placed largest-first; each takes the lowest
    /// offset at which it fits below or between every already-placed
    /// interval whose lifetime overlaps its own. Disjoint lifetimes
    /// share bytes, which is where the reuse comes from.
    pub fn colour(steps: &[StepExtent]) -> ArenaLayout {
        let n = steps.len();
        let mut intervals: Vec<Interval> = Vec::with_capacity(2 * n);
        for (i, s) in steps.iter().enumerate() {
            // The last step's output bypasses the arena entirely.
            if i + 1 < n && s.output_elems > 0 {
                intervals.push(Interval {
                    start: i,
                    end: i + 1,
                    elems: s.output_elems,
                    step: i,
                    is_workspace: false,
                });
            }
            if s.workspace_elems > 0 {
                intervals.push(Interval {
                    start: i,
                    end: i,
                    elems: s.workspace_elems,
                    step: i,
                    is_workspace: true,
                });
            }
        }
        // Largest first; ties broken by start step for determinism.
        intervals.sort_by(|a, b| b.elems.cmp(&a.elems).then(a.start.cmp(&b.start)));

        let mut slots = vec![StepSlots::default(); n];
        for (i, s) in steps.iter().enumerate() {
            slots[i].ws_elems = s.workspace_elems;
        }
        // (offset, len, start, end) of every placed interval.
        let mut placed: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(intervals.len());
        let mut total = 0usize;
        for iv in &intervals {
            let mut busy: Vec<(usize, usize)> = placed
                .iter()
                .filter(|p| p.2 <= iv.end && iv.start <= p.3)
                .map(|p| (p.0, p.1))
                .collect();
            busy.sort_unstable();
            let mut off = 0usize;
            for &(b_off, b_len) in &busy {
                if off + iv.elems <= b_off {
                    break;
                }
                off = off.max(b_off + b_len);
            }
            placed.push((off, iv.elems, iv.start, iv.end));
            total = total.max(off + iv.elems);
            if iv.is_workspace {
                slots[iv.step].ws_off = off;
            } else {
                slots[iv.step].dst_off = off;
            }
        }
        let naive = Self::naive_elems(steps);
        ArenaLayout {
            slots,
            total_elems: total,
            naive_elems: naive,
        }
    }

    /// The legacy layout, reproduced byte for byte: activations
    /// alternate between two buffers each sized by the largest step
    /// output, and one conservative scratch region sits after them.
    pub fn ping_pong(steps: &[StepExtent]) -> ArenaLayout {
        let buf = steps.iter().map(|s| s.output_elems).max().unwrap_or(0);
        let scratch = steps.iter().map(|s| s.scratch_elems).max().unwrap_or(0);
        let slots = steps
            .iter()
            .enumerate()
            .map(|(i, s)| StepSlots {
                dst_off: if i % 2 == 0 { 0 } else { buf },
                ws_off: 2 * buf,
                // The legacy engine handed every kernel the full
                // conservative region.
                ws_elems: s.scratch_elems.max(s.workspace_elems),
            })
            .collect();
        let total = 2 * buf + scratch;
        ArenaLayout {
            slots,
            total_elems: total,
            naive_elems: total,
        }
    }

    /// Elements the legacy ping-pong layout would reserve.
    fn naive_elems(steps: &[StepExtent]) -> usize {
        let buf = steps.iter().map(|s| s.output_elems).max().unwrap_or(0);
        let scratch = steps.iter().map(|s| s.scratch_elems).max().unwrap_or(0);
        2 * buf + scratch
    }

    /// Elements this layout saves over the legacy ping-pong layout.
    pub fn reuse_elems(&self) -> usize {
        self.naive_elems.saturating_sub(self.total_elems)
    }
}

/// Byte-level summary of a plan's arena requirement, as predicted at
/// compile time for the full batch executed sequentially. The budget
/// solver compares `peak_bytes` against `ExecConfig::plan_budget`, and
/// the observability layer exports both numbers as gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Peak arena bytes under the coloured layout.
    pub peak_bytes: usize,
    /// Counterfactual bytes under the legacy ping-pong layout.
    pub naive_bytes: usize,
}

impl MemoryFootprint {
    /// Footprint of a step sequence (4 bytes per `f32` element).
    pub fn of(steps: &[StepExtent]) -> MemoryFootprint {
        let layout = ArenaLayout::colour(steps);
        MemoryFootprint {
            peak_bytes: layout.total_elems * 4,
            naive_bytes: layout.naive_elems * 4,
        }
    }

    /// Bytes the coloured layout saves over ping-pong.
    pub fn reuse_bytes(&self) -> usize {
        self.naive_bytes.saturating_sub(self.peak_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(out: usize, ws: usize) -> StepExtent {
        StepExtent {
            output_elems: out,
            workspace_elems: ws,
            scratch_elems: ws,
        }
    }

    /// Every pair of intervals that overlap in time must occupy
    /// disjoint byte ranges.
    fn assert_disjoint(steps: &[StepExtent], layout: &ArenaLayout) {
        let n = steps.len();
        let mut live: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            if i + 1 < n && s.output_elems > 0 {
                live.push((i, i + 1, layout.slots[i].dst_off, s.output_elems));
            }
            if s.workspace_elems > 0 {
                live.push((i, i, layout.slots[i].ws_off, s.workspace_elems));
            }
        }
        for (a, ia) in live.iter().enumerate() {
            for ib in live.iter().skip(a + 1) {
                let time_overlap = ia.0 <= ib.1 && ib.0 <= ia.1;
                let byte_overlap = ia.2 < ib.2 + ib.3 && ib.2 < ia.2 + ia.3;
                assert!(
                    !(time_overlap && byte_overlap),
                    "overlapping lifetimes share bytes: {ia:?} vs {ib:?}"
                );
            }
        }
        for (_, _, off, len) in live {
            assert!(off + len <= layout.total_elems);
        }
    }

    #[test]
    fn single_step_needs_only_workspace() {
        let steps = [ext(100, 40)];
        let layout = ArenaLayout::colour(&steps);
        // Sole output goes to the caller's buffer.
        assert_eq!(layout.total_elems, 40);
        assert_disjoint(&steps, &layout);
    }

    #[test]
    fn disjoint_lifetimes_share_bytes() {
        // Two big activations far apart in time must overlap in space.
        let steps = [
            ext(1000, 0),
            ext(10, 0),
            ext(10, 0),
            ext(1000, 0),
            ext(5, 0),
        ];
        let layout = ArenaLayout::colour(&steps);
        assert!(layout.total_elems < 2 * 1000);
        assert!(layout.reuse_elems() > 0);
        assert_disjoint(&steps, &layout);
    }

    #[test]
    fn peak_matches_clique_bound_on_uniform_chain() {
        // Identical steps: at step i the previous output, this output
        // and this workspace are all live — the clique is 3k and the
        // greedy layout should hit it exactly.
        let steps = [ext(100, 100), ext(100, 100), ext(100, 100), ext(100, 100)];
        let layout = ArenaLayout::colour(&steps);
        assert_eq!(layout.total_elems, 300);
        assert_disjoint(&steps, &layout);
    }

    #[test]
    fn ping_pong_reproduces_legacy_sizing() {
        let steps = [ext(64, 8), ext(32, 128), ext(16, 0)];
        let layout = ArenaLayout::ping_pong(&steps);
        assert_eq!(layout.total_elems, 2 * 64 + 128);
        assert_eq!(layout.slots[0].dst_off, 0);
        assert_eq!(layout.slots[1].dst_off, 64);
        assert_eq!(layout.slots[2].dst_off, 0);
        assert!(layout.slots.iter().all(|s| s.ws_off == 128));
        assert_eq!(layout.reuse_elems(), 0);
    }

    #[test]
    fn footprint_reports_reuse() {
        let steps = [ext(1000, 200), ext(10, 0), ext(1000, 0)];
        let fp = MemoryFootprint::of(&steps);
        assert_eq!(fp.naive_bytes, (2 * 1000 + 200) * 4);
        assert!(fp.peak_bytes < fp.naive_bytes);
        assert_eq!(fp.reuse_bytes(), fp.naive_bytes - fp.peak_bytes);
    }

    #[test]
    fn colour_never_exceeds_naive() {
        // Pseudo-random extents; the coloured peak must never beat the
        // clique lower bound or exceed the ping-pong upper bound.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 500) as usize
        };
        for len in 1..12 {
            let steps: Vec<StepExtent> = (0..len).map(|_| ext(next() + 1, next())).collect();
            let layout = ArenaLayout::colour(&steps);
            assert!(layout.total_elems <= layout.naive_elems);
            assert_disjoint(&steps, &layout);
        }
    }
}
