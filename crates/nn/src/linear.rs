//! Fully connected (dense) layer.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{scan_ternary, ExecConfig, Layer, Param, Phase, QuantPanels, WeightFormat};
use cnn_stack_parallel::parallel_for;
use cnn_stack_parallel::DisjointWriter;
use cnn_stack_sparse::CsrMatrix;
use cnn_stack_tensor::init::{initialise, Init};
use cnn_stack_tensor::{gemm, ops, GemmAlgorithm, GemmPlan, Tensor};
use std::sync::Arc;

/// A fully connected layer `y = x · Wᵀ + b` over `[batch, in]` inputs.
///
/// Like [`crate::Conv2d`], the dense master weights can be snapshotted
/// into CSR for sparse inference. The parallel grain is the output
/// feature.
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{ExecConfig, Layer, Linear, Phase};
/// use cnn_stack_tensor::Tensor;
///
/// let mut fc = Linear::new(512, 10, 0);
/// let y = fc.forward(&Tensor::zeros([4, 512]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[4, 10]);
/// ```
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// `[out, in]` weight matrix.
    weight: Param,
    bias: Param,
    format: WeightFormat,
    csr: Option<CsrMatrix>,
    /// Plan-time packed GEMM B-panels of `Wᵀ` (NR-column panels packed
    /// straight from the `[out, in]` weights), built by
    /// [`Layer::prepare`] and reused by every `forward_into` run. Any
    /// weight mutation invalidates it. Shared across serving replicas
    /// via `Arc` (see [`Conv2d`](crate::Conv2d) for the immutability
    /// invariant: fresh `Vec` then `Arc::new`, never mutated through
    /// the handle).
    packed_weights: Option<Arc<Vec<f32>>>,
    /// Quantised weight snapshot (ternary codes or int8 panels), built
    /// eagerly by [`set_format`](Linear::set_format) for the quantised
    /// formats — mirroring the CSR snapshot — and dropped by any weight
    /// mutation. Shares the `Arc` immutability invariant of
    /// `packed_weights`.
    quant_weights: Option<QuantPanels>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "feature counts must be non-zero"
        );
        Linear {
            in_features,
            out_features,
            weight: Param::new(initialise(
                [out_features, in_features],
                Init::XavierUniform,
                seed,
            )),
            bias: Param::new(Tensor::zeros([out_features])),
            format: WeightFormat::Dense,
            csr: None,
            packed_weights: None,
            quant_weights: None,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight parameter (invalidates any CSR, packed-panel or
    /// quantised snapshot).
    pub fn weight_mut(&mut self) -> &mut Param {
        self.csr = None;
        self.packed_weights = None;
        self.quant_weights = None;
        &mut self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Current inference weight format.
    pub fn format(&self) -> WeightFormat {
        self.format
    }

    /// Selects the inference weight format. Like the CSR snapshot, the
    /// quantised snapshots are built eagerly here from the dense master:
    /// `Ternary` scans the weights and packs 2-bit codes only when they
    /// are *exactly* ternary (otherwise no snapshot is built and every
    /// run takes the dense fallback); `Int8` always snapshots, with the
    /// per-tensor scale `qw = 127 / max|W|`.
    pub fn set_format(&mut self, format: WeightFormat) {
        self.format = format;
        self.packed_weights = None;
        self.quant_weights = None;
        self.csr = match format {
            WeightFormat::Csr => Some(CsrMatrix::from_dense(&self.weight.value, 0.0)),
            _ => None,
        };
        match format {
            WeightFormat::Ternary => {
                if let Some((positive, negative)) = scan_ternary(self.weight.value.data()) {
                    let plan = self.packed_plan(1);
                    let mut codes = vec![0u32; plan.ternary_b_words()];
                    gemm::pack_b_ternary_transposed_into(
                        &plan,
                        self.weight.value.data(),
                        &mut codes,
                    );
                    // Fresh Vec, then Arc::new — never mutate through it.
                    self.quant_weights = Some(QuantPanels::Ternary {
                        codes: Arc::new(codes),
                        positive,
                        negative,
                    });
                }
            }
            WeightFormat::Int8 => {
                let scale = gemm::quantise_scale_i8(self.weight.value.data());
                let plan = self.packed_plan(1);
                let mut codes = vec![0i8; plan.packed_b_elems()];
                gemm::pack_b_transposed_i8_into(&plan, self.weight.value.data(), scale, &mut codes);
                self.quant_weights = Some(QuantPanels::Int8 {
                    codes: Arc::new(codes),
                    scale,
                });
            }
            _ => {}
        }
    }

    /// Whether `cfg` routes this layer through the packed GEMM engine —
    /// f32 or quantised. A quantised `gemm_algo` without a matching
    /// quant snapshot still lands here: the run then takes the f32
    /// packed path over the dense master (the bit-identical fallback the
    /// guard demotion also uses).
    pub(crate) fn uses_packed_gemm(&self, cfg: &ExecConfig) -> bool {
        self.format != WeightFormat::Csr
            && matches!(
                cfg.gemm_algo,
                GemmAlgorithm::Packed | GemmAlgorithm::TernaryPacked | GemmAlgorithm::Int8Packed
            )
    }

    /// Blocking plan of the packed product `X[batch×in] · Wᵀ[in×out]`.
    fn packed_plan(&self, batch: usize) -> GemmPlan {
        GemmPlan::new(batch, self.in_features, self.out_features)
    }

    /// Routes one packed-engine evaluation: the quantised kernel when
    /// `cfg` asks for it *and* a valid matching snapshot exists,
    /// otherwise the f32 packed kernel on the dense master. Keeping the
    /// fallback inside one router is what makes a missing/stale quant
    /// snapshot a performance event, never a correctness one.
    fn eval_packed_dispatch_into(
        &self,
        in_data: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let plan = self.packed_plan(batch);
        match (cfg.gemm_algo, &self.quant_weights) {
            (
                GemmAlgorithm::TernaryPacked,
                Some(QuantPanels::Ternary {
                    codes,
                    positive,
                    negative,
                }),
            ) if self.format == WeightFormat::Ternary && codes.len() == plan.ternary_b_words() => {
                let a_buf = &mut scratch[..plan.packed_a_elems()];
                gemm::pack_a_into(&plan, in_data, a_buf);
                self.prefill_bias(out);
                gemm::gemm_prepacked_ternary(
                    &plan,
                    a_buf,
                    codes,
                    *positive,
                    *negative,
                    out,
                    cfg.threads,
                    cfg.schedule,
                    cfg.epilogue(),
                );
            }
            (GemmAlgorithm::Int8Packed, Some(QuantPanels::Int8 { codes, scale }))
                if self.format == WeightFormat::Int8 && codes.len() == plan.packed_b_elems() =>
            {
                // Per-call activation quantisation: NaN activations map
                // to 0 and magnitudes saturate at ±127 — the documented
                // lossy contract of the int8 path.
                let qa = gemm::quantise_scale_i8(in_data);
                let elems = plan.packed_a_elems();
                let a_f32 = &mut scratch[..elems.div_ceil(4)];
                // SAFETY: an f32 slice is always valid byte storage —
                // same allocation, stricter alignment (4 → 1), length
                // `elems.div_ceil(4) · 4 ≥ elems` bytes, and the i8 view
                // is dropped before anyone reads the floats again.
                let a_buf = unsafe {
                    std::slice::from_raw_parts_mut(a_f32.as_mut_ptr() as *mut i8, a_f32.len() * 4)
                };
                gemm::pack_a_i8_into(&plan, in_data, qa, &mut a_buf[..elems]);
                self.prefill_bias(out);
                gemm::gemm_prepacked_int8(
                    &plan,
                    &a_buf[..elems],
                    codes,
                    1.0 / (qa * scale),
                    out,
                    cfg.threads,
                    cfg.schedule,
                    cfg.epilogue(),
                );
            }
            _ => self.eval_dense_packed_into(in_data, batch, out, scratch, cfg),
        }
    }

    /// Whether a valid quantised snapshot matches `cfg`'s kernel choice
    /// (the quant arms of [`eval_packed_dispatch_into`]'s match).
    fn quant_snapshot_active(&self, cfg: &ExecConfig) -> bool {
        let plan = self.packed_plan(1);
        match (cfg.gemm_algo, &self.quant_weights) {
            (GemmAlgorithm::TernaryPacked, Some(QuantPanels::Ternary { codes, .. })) => {
                self.format == WeightFormat::Ternary && codes.len() == plan.ternary_b_words()
            }
            (GemmAlgorithm::Int8Packed, Some(QuantPanels::Int8 { codes, .. })) => {
                self.format == WeightFormat::Int8 && codes.len() == plan.packed_b_elems()
            }
            _ => false,
        }
    }

    /// Copies the bias vector into every output row (the `+=` GEMM
    /// contract folds it into the product).
    fn prefill_bias(&self, out: &mut [f32]) {
        let bdata = self.bias.value.data();
        for row in out.chunks_exact_mut(self.out_features) {
            row.copy_from_slice(bdata);
        }
    }

    /// Packed-GEMM dense kernel: the activations are packed into MR-row
    /// A-panels per run (`scratch`), the `Wᵀ` B-panels come from the
    /// plan-time cache (or are packed into scratch when absent), and one
    /// whole-layer GEMM runs over the pool. Shared by
    /// [`Layer::forward`] and [`Layer::forward_into`], so the arena
    /// engine is bit-identical to the tensor path.
    fn eval_dense_packed_into(
        &self,
        in_data: &[f32],
        batch: usize,
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let plan = self.packed_plan(batch);
        let have_panels =
            matches!(&self.packed_weights, Some(panels) if panels.len() == plan.packed_b_elems());
        // The B-panel repack region is needed only when the plan-time
        // panels are absent or stale; the steady-state workspace the
        // liveness planner sizes (`forward_workspace_elems`) excludes
        // it, so slice it only on the cold path.
        let b_elems = if have_panels {
            0
        } else {
            plan.packed_b_elems()
        };
        let (a_buf, b_buf) =
            scratch[..plan.packed_a_elems() + b_elems].split_at_mut(plan.packed_a_elems());
        gemm::pack_a_into(&plan, in_data, a_buf);
        let packed_b: &[f32] = match &self.packed_weights {
            Some(panels) if panels.len() == plan.packed_b_elems() => panels.as_slice(),
            // No plan-time panels (plain `forward`, or a cache dropped by
            // weight surgery/fault injection): pack into scratch.
            _ => {
                gemm::pack_b_transposed_into(&plan, self.weight.value.data(), b_buf);
                b_buf
            }
        };
        self.prefill_bias(out);
        gemm::gemm_prepacked_epilogue(
            &plan,
            a_buf,
            packed_b,
            out,
            cfg.threads,
            cfg.schedule,
            cfg.epilogue(),
        );
    }

    /// The shared scalar inference kernel: `out = in · Wᵀ + b` over raw
    /// slices (CSR, and the non-packed dense kernels). Both
    /// [`Layer::forward`] and [`Layer::forward_into`] funnel through
    /// this, so the arena engine is bit-identical to the tensor path.
    fn eval_into(&self, in_data: &[f32], batch: usize, out: &mut [f32], cfg: &ExecConfig) {
        let feat = self.in_features;
        let bdata = self.bias.value.data();
        let out_f = self.out_features;
        let writer = DisjointWriter::new(out);
        let writer = &writer;
        match (self.format, &self.csr) {
            (WeightFormat::Csr, Some(csr)) => {
                parallel_for(cfg.threads, out_f, cfg.schedule, |range| {
                    for o in range {
                        let (idx, val) = csr.row(o);
                        for b in 0..batch {
                            let x = &in_data[b * feat..(b + 1) * feat];
                            let mut acc = bdata[o];
                            for (&c, &v) in idx.iter().zip(val) {
                                acc += v * x[c as usize];
                            }
                            if cfg.fused_relu {
                                acc = acc.max(0.0);
                            }
                            // SAFETY: element (b, o) is owned by grain o.
                            unsafe {
                                writer.slice_mut(b * out_f + o, b * out_f + o + 1)[0] = acc;
                            }
                        }
                    }
                });
            }
            _ => {
                let wdata = self.weight.value.data();
                parallel_for(cfg.threads, out_f, cfg.schedule, |range| {
                    for o in range {
                        let w_row = &wdata[o * feat..(o + 1) * feat];
                        for b in 0..batch {
                            let x = &in_data[b * feat..(b + 1) * feat];
                            let mut acc = bdata[o];
                            for (wv, xv) in w_row.iter().zip(x) {
                                acc += wv * xv;
                            }
                            if cfg.fused_relu {
                                acc = acc.max(0.0);
                            }
                            // SAFETY: element (b, o) is owned by grain o.
                            unsafe {
                                writer.slice_mut(b * out_f + o, b * out_f + o + 1)[0] = acc;
                            }
                        }
                    }
                });
            }
        }
    }

    /// Removes a contiguous block of input features (used when channel
    /// pruning deletes a channel feeding the flattened classifier input).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or would empty the layer.
    pub fn remove_in_features(&mut self, start: usize, len: usize) {
        assert!(
            start + len <= self.in_features,
            "feature range out of bounds"
        );
        assert!(len < self.in_features, "cannot remove every input feature");
        let old_in = self.in_features;
        let src = self.weight.value.data();
        let mut w = Vec::with_capacity(self.out_features * (old_in - len));
        for o in 0..self.out_features {
            let row = &src[o * old_in..(o + 1) * old_in];
            w.extend_from_slice(&row[..start]);
            w.extend_from_slice(&row[start + len..]);
        }
        self.in_features -= len;
        self.weight = Param::new(Tensor::from_vec([self.out_features, self.in_features], w));
        self.csr = None;
        self.packed_weights = None;
        self.quant_weights = None;
    }
}

impl Layer for Linear {
    fn min_input_rank(&self) -> usize {
        2
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!("linear({}->{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor {
        let (batch, feat) = input.shape().matrix();
        assert_eq!(feat, self.in_features, "{}: feature mismatch", self.name());
        if phase == Phase::Train {
            self.cached_input = Some(input.clone());
        }
        let mut out = Tensor::zeros([batch, self.out_features]);
        if self.uses_packed_gemm(cfg) {
            let mut scratch = vec![0.0f32; self.packed_plan(batch).scratch_elems()];
            self.eval_packed_dispatch_into(input.data(), batch, out.data_mut(), &mut scratch, cfg);
        } else {
            self.eval_into(input.data(), batch, out.data_mut(), cfg);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward without a Train-phase forward");
        let (batch, _) = input.shape().matrix();
        // dW += dYᵀ · X ; db += colsum(dY) ; dX = dY · W.
        let dy_t = ops::transpose(grad_out);
        let dw = cnn_stack_tensor::matmul(&dy_t, &input);
        self.weight.grad.axpy(1.0, &dw);
        for b in 0..batch {
            for o in 0..self.out_features {
                self.bias.grad.data_mut()[o] += grad_out.data()[b * self.out_features + o];
            }
        }
        cnn_stack_tensor::matmul(grad_out, &self.weight.value)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // The caller may rewrite the weights (masked pruning does), which
        // would leave plan-time packed panels stale — drop them; the
        // next `prepare` or scratch-path run repacks. The quantised
        // snapshot drops too (its codes would silently diverge from the
        // master; the run then falls back to the dense f32 path until a
        // `set_format` re-snapshot). The CSR snapshot is left alone: its
        // refresh contract is an explicit `set_format`.
        self.packed_weights = None;
        self.quant_weights = None;
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_scratch_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        if self.uses_packed_gemm(cfg) {
            // A-panels for the activations plus a B-panel region so the
            // `&self` run path can repack weights even when the plan-time
            // panels have been dropped.
            self.packed_plan(input_shape[0]).scratch_elems()
        } else {
            0
        }
    }

    fn forward_workspace_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        if self.uses_packed_gemm(cfg) {
            // Steady state: `prepare()` has cached the Wᵀ B-panels (or
            // the quantised snapshot), so only the activation A-panel
            // region is paid per call. The int8 arm's byte panels fit
            // in `packed_a_elems().div_ceil(4)` floats, and the ternary
            // arm packs the same A region — one bound covers all arms.
            self.packed_plan(input_shape[0]).packed_a_elems()
        } else {
            0
        }
    }

    fn prepare(&mut self, cfg: &ExecConfig) {
        if self.uses_packed_gemm(cfg) {
            // An active quantised snapshot *is* the weight prepack: the
            // f32 panels would never be read, so don't build them.
            if self.quant_snapshot_active(cfg) {
                self.packed_weights = None;
                return;
            }
            // B-panel layout depends only on (in, out), not on the batch.
            let plan = self.packed_plan(1);
            // Keep a still-valid cache (own or adopted) — `Some` +
            // matching length implies fresh, since mutation drops it.
            if matches!(&self.packed_weights, Some(p) if p.len() == plan.packed_b_elems()) {
                return;
            }
            let mut panels = vec![0.0f32; plan.packed_b_elems()];
            gemm::pack_b_transposed_into(&plan, self.weight.value.data(), &mut panels);
            // Fresh Vec, then Arc::new — never mutate through the Arc.
            self.packed_weights = Some(Arc::new(panels));
        } else {
            self.packed_weights = None;
        }
    }

    fn packed_panels(&self) -> Option<Arc<Vec<f32>>> {
        self.packed_weights.clone()
    }

    fn install_packed_panels(&mut self, panels: Arc<Vec<f32>>) -> bool {
        if panels.len() == self.packed_plan(1).packed_b_elems() {
            self.packed_weights = Some(panels);
            true
        } else {
            false
        }
    }

    fn quant_panels(&self) -> Option<QuantPanels> {
        self.quant_weights.clone()
    }

    fn install_quant_panels(&mut self, panels: QuantPanels) -> bool {
        let plan = self.packed_plan(1);
        let ok = match &panels {
            QuantPanels::Ternary { codes, .. } => codes.len() == plan.ternary_b_words(),
            QuantPanels::Int8 { codes, .. } => codes.len() == plan.packed_b_elems(),
        };
        if ok {
            self.quant_weights = Some(panels);
        }
        ok
    }

    fn gemm_plan(&self, input_shape: &[usize], cfg: &ExecConfig) -> Option<GemmPlan> {
        if self.uses_packed_gemm(cfg) {
            Some(self.packed_plan(input_shape[0]))
        } else {
            None
        }
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let batch = input_shape[0];
        assert_eq!(
            input_shape[1..].iter().product::<usize>(),
            self.in_features,
            "{}: feature mismatch",
            self.name()
        );
        if self.uses_packed_gemm(cfg) {
            self.eval_packed_dispatch_into(input, batch, out, scratch, cfg);
        } else {
            self.eval_into(input, batch, out, cfg);
        }
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let batch = input_shape[0];
        let weight_elems = self.in_features * self.out_features;
        let weight_nnz = match (&self.csr, self.format) {
            (Some(csr), WeightFormat::Csr) => csr.nnz(),
            _ => self.weight.value.len() - self.weight.value.count_zeros(0.0),
        };
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Linear {
                in_features: self.in_features,
                out_features: self.out_features,
            },
            macs: (batch * weight_elems) as u64,
            weight_elems,
            weight_nnz,
            format: self.format,
            input_elems: batch * self.in_features,
            output_elems: batch * self.out_features,
            output_shape: vec![batch, self.out_features],
            scratch_elems: 0,
            parallel_grains: self.out_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_matches_matmul() {
        let mut fc = Linear::new(6, 4, 1);
        let x = random([3, 6], 2);
        let y = fc.forward(&x, Phase::Eval, &ExecConfig::default());
        let want = cnn_stack_tensor::matmul(&x, &ops::transpose(&fc.weight.value));
        assert!(y.allclose(&want, 1e-5)); // bias is zero at init
    }

    #[test]
    fn packed_and_blocked_gemm_agree() {
        let mut fc = Linear::new(19, 7, 9);
        let x = random([4, 19], 10);
        let packed = fc.forward(&x, Phase::Eval, &ExecConfig::serial());
        let blocked_cfg = ExecConfig {
            gemm_algo: GemmAlgorithm::Blocked,
            ..ExecConfig::serial()
        };
        let blocked = fc.forward(&x, Phase::Eval, &blocked_cfg);
        assert!(packed.allclose(&blocked, 1e-5));
    }

    #[test]
    fn prepared_panels_bit_match_cacheless_run() {
        let mut fc = Linear::new(13, 5, 8);
        let x = random([3, 13], 9);
        let cfg = ExecConfig::serial();
        let cacheless = fc.forward(&x, Phase::Eval, &cfg);
        fc.prepare(&cfg);
        assert!(fc.packed_weights.is_some());
        let shape = [3, 13];
        let mut out = vec![0.0f32; cacheless.len()];
        let mut scratch = vec![0.0f32; fc.forward_scratch_elems(&shape, &cfg)];
        fc.forward_into(x.data(), &shape, &mut out, &mut scratch, &cfg);
        // Same plan, same kernel, same panel layout -> bit-identical.
        assert_eq!(out.as_slice(), cacheless.data());
        // Touching the weights drops the cache.
        let _ = fc.weight_mut();
        assert!(fc.packed_weights.is_none());
    }

    #[test]
    fn bias_is_added() {
        let mut fc = Linear::new(2, 2, 1);
        fc.weight_mut().value.fill(0.0);
        fc.bias.value.data_mut().copy_from_slice(&[1.5, -2.5]);
        let y = fc.forward(&Tensor::ones([1, 2]), Phase::Eval, &ExecConfig::default());
        assert_eq!(y.data(), &[1.5, -2.5]);
    }

    #[test]
    fn sparse_and_parallel_paths_agree() {
        let mut fc = Linear::new(16, 8, 3);
        // Plant zeros so CSR differs structurally.
        for i in (0..fc.weight.value.len()).step_by(3) {
            fc.weight_mut().value.data_mut()[i] = 0.0;
        }
        let x = random([5, 16], 4);
        let dense = fc.forward(&x, Phase::Eval, &ExecConfig::serial());
        let dense_par = fc.forward(&x, Phase::Eval, &ExecConfig::with_threads(4));
        fc.set_format(WeightFormat::Csr);
        let sparse = fc.forward(&x, Phase::Eval, &ExecConfig::serial());
        let sparse_par = fc.forward(&x, Phase::Eval, &ExecConfig::with_threads(3));
        assert!(dense.allclose(&dense_par, 1e-5));
        assert!(dense.allclose(&sparse, 1e-5));
        assert!(dense.allclose(&sparse_par, 1e-5));
    }

    #[test]
    fn gradient_check() {
        let mut fc = Linear::new(4, 3, 5);
        let x = random([2, 4], 6);
        let cfg = ExecConfig::serial();
        let y = fc.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        let dx = fc.backward(&ones);
        let eps = 1e-3;
        for &i in &[0usize, 5, 11] {
            let orig = fc.weight.value.data()[i];
            fc.weight.value.data_mut()[i] = orig + eps;
            let lp = fc.forward(&x, Phase::Eval, &cfg).sum();
            fc.weight.value.data_mut()[i] = orig - eps;
            let lm = fc.forward(&x, Phase::Eval, &cfg).sum();
            fc.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - fc.weight.grad.data()[i]).abs() < 1e-2, "dW[{i}]");
        }
        for &i in &[0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = fc.forward(&xp, Phase::Eval, &cfg).sum();
            let lm = fc.forward(&xm, Phase::Eval, &cfg).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 1e-2, "dX[{i}]");
        }
        // Bias gradient: batch size.
        assert!((fc.bias.grad.data()[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn remove_in_features_block() {
        let mut fc = Linear::new(6, 2, 7);
        let before = fc.weight.value.clone();
        fc.remove_in_features(2, 2);
        assert_eq!(fc.in_features(), 4);
        for o in 0..2 {
            assert_eq!(fc.weight.value.data()[o * 4], before.data()[o * 6]);
            assert_eq!(fc.weight.value.data()[o * 4 + 2], before.data()[o * 6 + 4]);
        }
    }

    #[test]
    fn descriptor_macs() {
        let fc = Linear::new(512, 10, 0);
        let d = fc.descriptor(&[8, 512]);
        assert_eq!(d.macs, 8 * 512 * 10);
        assert_eq!(d.parallel_grains, 10);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_input_width_rejected() {
        let mut fc = Linear::new(4, 2, 0);
        let _ = fc.forward(&Tensor::zeros([1, 5]), Phase::Eval, &ExecConfig::default());
    }
}
