//! Typed layer IR for the pass-based plan compiler.
//!
//! [`lower`] walks a [`Network`] at one input shape and produces one
//! [`IrOp`] per top-level layer: the shape-resolved facts a plan pass
//! needs (what kind of computation it is, its geometry, its *measured*
//! weight sparsity) plus the mutable decisions a pass makes (the op's
//! effective [`ExecConfig`] and how many following layers it absorbs).
//! The pass pipeline in [`crate::passes`] rewrites this op list and then
//! lowers it to [`crate::engine::PlanStep`]s.
//!
//! The IR is derived from [`Layer::descriptor`] plus `as_any` downcasts
//! for the facts descriptors do not carry (is this activation a ReLU?
//! is this batch norm an inference identity? how sparse are the weights
//! *really*?).

use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::descriptor::LayerKind;
use crate::error::Error;
use crate::layer::{ExecConfig, Layer, WeightFormat};
use crate::linear::Linear;
use crate::network::Network;
use crate::ReLU;
use cnn_stack_sparse::SparsityStats;
use cnn_stack_tensor::Conv2dGeometry;

/// What an [`IrOp`] computes, with the facts algorithm selection prices.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// Standard convolution (`groups == 1`).
    Conv {
        /// Shape-resolved spatial geometry.
        geom: Conv2dGeometry,
        /// Output channels.
        out_channels: usize,
        /// Current weight storage format.
        format: WeightFormat,
        /// Measured (exact-zero) weight sparsity in `[0, 1]`.
        sparsity: f64,
        /// Whether the weights are *exactly* ternary (at most one
        /// distinct magnitude per sign) — the value-preserving
        /// precondition for the packed ternary kernel.
        ternary: bool,
    },
    /// Depthwise convolution.
    DepthwiseConv {
        /// Shape-resolved per-channel geometry.
        geom: Conv2dGeometry,
        /// Channel count (input == output).
        channels: usize,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Current weight storage format.
        format: WeightFormat,
        /// Measured (exact-zero) weight sparsity in `[0, 1]`.
        sparsity: f64,
        /// Whether the weights are *exactly* ternary — see
        /// [`OpKind::Conv::ternary`].
        ternary: bool,
    },
    /// Batch normalisation over channels.
    BatchNorm {
        /// Channel count.
        channels: usize,
        /// Whether the layer is an *exact* inference identity (scale
        /// bit-equal to 1, shift bit-equal to 0, as left by
        /// [`crate::fold_batchnorm`]) so the fold-and-fuse pass may skip
        /// it. A freshly initialised batch norm is only a
        /// near-identity (`scale = 1/sqrt(1 + eps)`) and stays `false`.
        identity: bool,
    },
    /// The ReLU activation specifically — fusable into a preceding
    /// conv/linear kernel.
    Relu,
    /// Anything else (pooling, reshapes, composites, other activations);
    /// passes leave these alone.
    Other,
}

impl OpKind {
    /// Whether this op's kernel can absorb a trailing ReLU via
    /// [`ExecConfig::fused_relu`] (every Conv2d and Linear evaluation
    /// path honours the flag; depthwise does not implement it).
    pub fn fuses_relu(&self) -> bool {
        matches!(self, OpKind::Conv { .. } | OpKind::Linear { .. })
    }

    /// Whether this op produces a channel-major activation an identity
    /// batch norm could be absorbed into.
    pub fn absorbs_identity_bn(&self) -> bool {
        matches!(
            self,
            OpKind::Conv { .. } | OpKind::DepthwiseConv { .. } | OpKind::Linear { .. }
        )
    }
}

/// One plan-compiler op: a primary network layer plus the decisions the
/// passes have made about it so far.
#[derive(Clone, Debug)]
pub struct IrOp {
    /// Index of the primary network layer.
    pub layer: usize,
    /// Consecutive network layers this op covers (absorbed followers are
    /// skipped at execution).
    pub span: usize,
    /// Step name; fusion appends the absorbed layers.
    pub name: String,
    /// What the op computes.
    pub kind: OpKind,
    /// Activation shape entering the op.
    pub input_shape: Vec<usize>,
    /// Activation shape leaving the op (the last covered layer's output).
    pub output_shape: Vec<usize>,
    /// Dense multiply-accumulates across the covered layers.
    pub macs: u64,
    /// Effective execution configuration; starts at the base config,
    /// rewritten by fusion (`fused_relu`) and algorithm selection.
    pub cfg: ExecConfig,
}

/// Lowers a network at `input_shape` into one [`IrOp`] per top-level
/// layer, each with `span == 1` and `cfg == *cfg`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when a layer's minimum input rank
/// exceeds the incoming shape (same contract as plan compilation).
pub fn lower(net: &Network, input_shape: &[usize], cfg: &ExecConfig) -> Result<Vec<IrOp>, Error> {
    let mut shape = input_shape.to_vec();
    let mut ops = Vec::with_capacity(net.len());
    for (i, layer) in net.layers().iter().enumerate() {
        if shape.len() < layer.min_input_rank() {
            return Err(Error::InvalidConfig(format!(
                "layer {} needs a rank-{} input, got shape {shape:?}",
                layer.name(),
                layer.min_input_rank()
            )));
        }
        let d = layer.descriptor(&shape);
        let kind = match d.kind {
            LayerKind::Conv { geom, out_channels } => OpKind::Conv {
                geom,
                out_channels,
                format: d.format,
                sparsity: measured_sparsity(layer.as_ref()),
                ternary: exact_ternary(layer.as_ref()),
            },
            LayerKind::DepthwiseConv { geom, channels } => OpKind::DepthwiseConv { geom, channels },
            LayerKind::Linear {
                in_features,
                out_features,
            } => OpKind::Linear {
                in_features,
                out_features,
                format: d.format,
                sparsity: measured_sparsity(layer.as_ref()),
                ternary: exact_ternary(layer.as_ref()),
            },
            LayerKind::BatchNorm { channels } => OpKind::BatchNorm {
                channels,
                identity: layer
                    .as_any()
                    .downcast_ref::<BatchNorm2d>()
                    .is_some_and(|bn| bn.is_exact_inference_identity()),
            },
            LayerKind::Activation => {
                if layer.as_any().downcast_ref::<ReLU>().is_some() {
                    OpKind::Relu
                } else {
                    OpKind::Other
                }
            }
            LayerKind::Pool | LayerKind::Reshape | LayerKind::Composite => OpKind::Other,
        };
        ops.push(IrOp {
            layer: i,
            span: 1,
            name: d.name,
            kind,
            input_shape: shape.clone(),
            output_shape: d.output_shape.clone(),
            macs: d.macs,
            cfg: *cfg,
        });
        shape = d.output_shape;
    }
    Ok(ops)
}

/// Whether the layer's weights are exactly ternary (the packed ternary
/// kernel's value-preserving precondition); `false` for layers the
/// selector cannot quantise. Computed here because pass candidates see
/// only the op, never the network.
fn exact_ternary(layer: &dyn Layer) -> bool {
    if let Some(c) = layer.as_any().downcast_ref::<Conv2d>() {
        crate::layer::scan_ternary(c.weight().value.data()).is_some()
    } else if let Some(fc) = layer.as_any().downcast_ref::<Linear>() {
        crate::layer::scan_ternary(fc.weight().value.data()).is_some()
    } else {
        false
    }
}

/// Measured exact-zero sparsity of the layer's first (weight) parameter;
/// 0 for layers without parameters.
fn measured_sparsity(layer: &dyn Layer) -> f64 {
    // Downcast so composites are not mis-measured by their first child.
    if let Some(c) = layer.as_any().downcast_ref::<Conv2d>() {
        SparsityStats::measure(c.weight().value.data()).sparsity()
    } else if let Some(fc) = layer.as_any().downcast_ref::<Linear>() {
        SparsityStats::measure(fc.weight().value.data()).sparsity()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Network, ReLU};

    fn demo_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, 1)),
            Box::new(BatchNorm2d::new(4)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 4 * 4, 5, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn lowering_walks_shapes_and_kinds() {
        let net = demo_net();
        let ops = lower(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0].kind, OpKind::Conv { .. }));
        assert!(matches!(
            ops[1].kind,
            OpKind::BatchNorm {
                identity: false,
                ..
            }
        ));
        assert!(matches!(ops[2].kind, OpKind::Relu));
        assert!(matches!(ops[3].kind, OpKind::Other));
        assert!(matches!(ops[4].kind, OpKind::Other));
        assert!(matches!(ops[5].kind, OpKind::Linear { .. }));
        for op in &ops {
            assert_eq!(op.span, 1);
        }
        assert_eq!(ops[5].output_shape, vec![1, 5]);
        // Ops chain: each input shape is the previous output shape.
        for pair in ops.windows(2) {
            assert_eq!(pair[0].output_shape, pair[1].input_shape);
        }
    }

    #[test]
    fn identity_bn_is_flagged() {
        let mut net = demo_net();
        // Perturb the batch norm so folding does real work (a fresh
        // near-identity is skipped by `fold_batchnorm`).
        net.layers_mut()[1]
            .as_any_mut()
            .downcast_mut::<BatchNorm2d>()
            .unwrap()
            .gamma_mut()
            .value
            .data_mut()
            .fill(1.5);
        let folded = crate::fold_batchnorm(&mut net);
        assert_eq!(folded, 1);
        let ops = lower(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        assert!(matches!(
            ops[1].kind,
            OpKind::BatchNorm { identity: true, .. }
        ));
    }

    #[test]
    fn measured_sparsity_sees_pruned_zeros() {
        let mut net = demo_net();
        // Zero half of the conv weights in place (dense format keeps
        // nnz == elems at the descriptor level).
        {
            let conv = net.layers_mut()[0]
                .as_any_mut()
                .downcast_mut::<Conv2d>()
                .unwrap();
            let data = conv.weight_mut().value.data_mut();
            let half = data.len() / 2;
            for v in &mut data[..half] {
                *v = 0.0;
            }
        }
        let ops = lower(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        match ops[0].kind {
            OpKind::Conv { sparsity, .. } => assert!((sparsity - 0.5).abs() < 0.02),
            _ => panic!("expected conv op"),
        }
    }
}
