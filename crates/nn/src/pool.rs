//! Pooling and shape layers: max pooling, global average pooling, flatten.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{ExecConfig, Layer, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;

/// Non-overlapping max pooling (the paper's networks use 2×2/stride-2
/// after selected VGG layers).
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{ExecConfig, Layer, MaxPool2d, Phase};
/// use cnn_stack_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2);
/// let y = pool.forward(&Tensor::zeros([1, 4, 8, 8]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[1, 4, 4, 4]);
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    /// Linear index of the argmax per output element, for backward.
    cached_argmax: Option<Vec<usize>>,
    cached_input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a `window × window`, stride-`window` max pool.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        MaxPool2d {
            window,
            cached_argmax: None,
            cached_input_shape: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!("maxpool{w}x{w}", w = self.window)
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, _cfg: &ExecConfig) -> Tensor {
        let (n, c, h, w) = input.shape().nchw();
        assert!(
            h % self.window == 0 && w % self.window == 0,
            "{}: input {h}x{w} not divisible by window {}",
            self.name(),
            self.window
        );
        let oh = h / self.window;
        let ow = w / self.window;
        let mut out = Tensor::zeros([n, c, oh, ow]);
        let mut argmax = vec![0usize; out.len()];
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let in_base = (img * c + ch) * h * w;
                let out_base = (img * c + ch) * oh * ow;
                for py in 0..oh {
                    for px in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                let idx =
                                    in_base + (py * self.window + dy) * w + px * self.window + dx;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[out_base + py * ow + px] = best;
                        argmax[out_base + py * ow + px] = best_idx;
                    }
                }
            }
        }
        if phase == Phase::Train {
            self.cached_argmax = Some(argmax);
            self.cached_input_shape = Some(input.shape().dims().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .take()
            .expect("backward without a Train-phase forward");
        let shape = self.cached_input_shape.take().expect("missing shape cache");
        let mut grad_in = Tensor::zeros(shape);
        for (g, &src_idx) in grad_out.data().iter().zip(&argmax) {
            grad_in.data_mut()[src_idx] += g;
        }
        grad_in
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        assert!(
            h % self.window == 0 && w % self.window == 0,
            "{}: input {h}x{w} not divisible by window {}",
            self.name(),
            self.window
        );
        let oh = h / self.window;
        let ow = w / self.window;
        for img in 0..n {
            for ch in 0..c {
                let in_base = (img * c + ch) * h * w;
                let out_base = (img * c + ch) * oh * ow;
                for py in 0..oh {
                    for px in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                let idx =
                                    in_base + (py * self.window + dy) * w + px * self.window + dx;
                                if input[idx] > best {
                                    best = input[idx];
                                }
                            }
                        }
                        out[out_base + py * ow + px] = best;
                    }
                }
            }
        }
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Pool,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: elems / (self.window * self.window),
            output_shape: vec![
                input_shape[0],
                input_shape[1],
                input_shape[2] / self.window,
                input_shape[3] / self.window,
            ],
            scratch_elems: 0,
            parallel_grains: 1,
        }
    }
}

/// Global average pooling: collapses each channel plane to one value.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        GlobalAvgPool {
            cached_input_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        "globalavgpool".into()
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, _cfg: &ExecConfig) -> Tensor {
        let (n, c, h, w) = input.shape().nchw();
        let plane = h * w;
        let mut out = Tensor::zeros([n, c, 1, 1]);
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let s: f32 = input.data()[base..base + plane].iter().sum();
                out.data_mut()[img * c + ch] = s / plane as f32;
            }
        }
        if phase == Phase::Train {
            self.cached_input_shape = Some(input.shape().dims().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .take()
            .expect("backward without a Train-phase forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let mut grad_in = Tensor::zeros(shape.clone());
        for img in 0..n {
            for ch in 0..c {
                let g = grad_out.data()[img * c + ch] / plane as f32;
                let base = (img * c + ch) * plane;
                for v in &mut grad_in.data_mut()[base..base + plane] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let plane = h * w;
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let s: f32 = input[base..base + plane].iter().sum();
                out[img * c + ch] = s / plane as f32;
            }
        }
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Pool,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: input_shape[0] * input_shape[1],
            output_shape: vec![input_shape[0], input_shape[1], 1, 1],
            scratch_elems: 0,
            parallel_grains: 1,
        }
    }
}

/// Flattens `[n, c, h, w]` to `[n, c*h*w]` for the classifier head.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_input_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, _cfg: &ExecConfig) -> Tensor {
        let dims = input.shape().dims();
        let n = dims[0];
        let rest: usize = dims[1..].iter().product();
        if phase == Phase::Train {
            self.cached_input_shape = Some(dims.to_vec());
        }
        input.reshape([n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .take()
            .expect("backward without a Train-phase forward");
        grad_out.reshape(shape)
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        _input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        // Row-major flatten is a straight copy.
        out.copy_from_slice(input);
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Reshape,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: elems,
            output_shape: vec![input_shape[0], elems / input_shape[0]],
            scratch_elems: 0,
            parallel_grains: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, Phase::Eval, &ExecConfig::default());
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 2.0, 3.0]);
        let _ = pool.forward(&x, Phase::Train, &ExecConfig::default());
        let dx = pool.backward(&Tensor::from_vec([1, 1, 1, 1], vec![5.0]));
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn maxpool_rejects_ragged_input() {
        let mut pool = MaxPool2d::new(2);
        let _ = pool.forward(
            &Tensor::zeros([1, 1, 5, 5]),
            Phase::Eval,
            &ExecConfig::default(),
        );
    }

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            [1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let y = gap.forward(&x, Phase::Eval, &ExecConfig::default());
        assert_eq!(y.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_backward_spreads_evenly() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::ones([1, 1, 2, 2]);
        let _ = gap.forward(&x, Phase::Train, &ExecConfig::default());
        let dx = gap.backward(&Tensor::from_vec([1, 1, 1, 1], vec![8.0]));
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = flat.forward(&x, Phase::Train, &ExecConfig::default());
        assert_eq!(y.shape().dims(), &[2, 12]);
        let back = flat.backward(&y);
        assert_eq!(back.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn descriptors() {
        assert_eq!(MaxPool2d::new(2).descriptor(&[1, 4, 8, 8]).output_elems, 64);
        assert_eq!(
            GlobalAvgPool::new().descriptor(&[2, 16, 4, 4]).output_elems,
            32
        );
        assert_eq!(Flatten::new().descriptor(&[1, 2, 3, 3]).output_elems, 18);
    }
}
