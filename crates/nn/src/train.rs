//! SGD training with the paper's stepped learning-rate schedule (§IV-A).

use crate::layer::{ExecConfig, Phase};
use crate::network::Network;
use cnn_stack_tensor::{ops, Tensor};

/// Learning-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// The paper's schedule: "starting at 0.1 and decreasing by a factor
    /// of 10 every 50 epochs".
    Stepped {
        /// Initial learning rate.
        initial: f32,
        /// Multiplicative decay applied every `every` epochs.
        factor: f32,
        /// Epoch period between decays.
        every: usize,
    },
}

impl LrSchedule {
    /// The paper's training schedule: 0.1, ÷10 every 50 epochs.
    pub fn paper() -> Self {
        LrSchedule::Stepped {
            initial: 0.1,
            factor: 0.1,
            every: 50,
        }
    }

    /// Learning rate at a (0-based) epoch.
    pub fn at_epoch(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Stepped {
                initial,
                factor,
                every,
            } => initial * factor.powi((epoch / every) as i32),
        }
    }
}

/// Stochastic gradient descent with momentum, weight decay, and
/// mask-aware updates (pruned weights stay pruned during fine-tuning).
///
/// # Example
///
/// ```
/// use cnn_stack_nn::Sgd;
///
/// let sgd = Sgd::new(0.1).momentum(0.9).weight_decay(5e-4);
/// assert_eq!(sgd.lr(), 0.1);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets L2 weight decay (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for stepped schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one SGD step to every parameter of `net`, then re-applies
    /// pruning masks so masked weights cannot be revived.
    pub fn step(&mut self, net: &mut Network) {
        let params = net.params_mut();
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().dims().to_vec()))
                .collect();
        }
        for (param, vel) in params.into_iter().zip(&mut self.velocity) {
            // v = m*v + g + wd*w ; w -= lr * v.
            let n = param.value.len();
            for i in 0..n {
                let g = param.grad.data()[i] + self.weight_decay * param.value.data()[i];
                let v = self.momentum * vel.data()[i] + g;
                vel.data_mut()[i] = v;
                param.value.data_mut()[i] -= self.lr * v;
            }
            param.apply_mask();
        }
    }
}

/// High-level training configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Epoch count.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    /// The paper's hyper-parameters (SGD, stepped LR from 0.1).
    fn default() -> Self {
        TrainConfig {
            epochs: 150,
            batch_size: 128,
            schedule: LrSchedule::paper(),
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// Runs one optimisation step on a single mini-batch and returns the
/// cross-entropy loss.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn train_batch(
    net: &mut Network,
    sgd: &mut Sgd,
    images: &Tensor,
    labels: &[usize],
    cfg: &ExecConfig,
) -> f32 {
    net.zero_grad();
    let logits = net.forward(images, Phase::Train, cfg);
    let (loss, dlogits) = ops::cross_entropy_with_grad(&logits, labels);
    net.backward(&dlogits);
    sgd.step(net);
    loss
}

/// Evaluates top-1 accuracy of `net` on a labelled batch.
pub fn evaluate(net: &mut Network, images: &Tensor, labels: &[usize], cfg: &ExecConfig) -> f64 {
    let logits = net.forward(images, Phase::Eval, cfg);
    ops::top1_accuracy(&logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Flatten, Linear, ReLU};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, 3)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 6 * 6, 2, 4)),
        ])
        .unwrap()
    }

    fn batch(seed: u64) -> (Tensor, Vec<usize>) {
        // Class 0: bright left half; class 1: bright right half.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 10;
        let mut data = vec![0.0f32; n * 36];
        let mut labels = Vec::new();
        for img in 0..n {
            let class = img % 2;
            labels.push(class);
            for y in 0..6 {
                for x in 0..6 {
                    let bright = if class == 0 { x < 3 } else { x >= 3 };
                    data[img * 36 + y * 6 + x] =
                        if bright { 1.0 } else { 0.0 } + rng.gen_range(-0.1f32..0.1);
                }
            }
        }
        (Tensor::from_vec([n, 1, 6, 6], data), labels)
    }

    #[test]
    fn paper_schedule_steps_by_ten() {
        let s = LrSchedule::paper();
        assert!((s.at_epoch(0) - 0.1).abs() < 1e-9);
        assert!((s.at_epoch(49) - 0.1).abs() < 1e-9);
        assert!((s.at_epoch(50) - 0.01).abs() < 1e-9);
        assert!((s.at_epoch(100) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn constant_schedule() {
        assert_eq!(LrSchedule::Constant(0.05).at_epoch(123), 0.05);
    }

    #[test]
    fn sgd_descends_a_simple_net() {
        let mut n = net();
        let mut sgd = Sgd::new(0.05).momentum(0.9);
        let (x, labels) = batch(1);
        let cfg = ExecConfig::serial();
        let first = train_batch(&mut n, &mut sgd, &x, &labels, &cfg);
        let mut last = first;
        for _ in 0..25 {
            last = train_batch(&mut n, &mut sgd, &x, &labels, &cfg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert!(evaluate(&mut n, &x, &labels, &cfg) > 0.9);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut n = net();
        // Zero gradient step with pure decay.
        let mut sgd = Sgd::new(0.1).weight_decay(0.5);
        let before: f32 = n.params_mut()[0].value.norm_sq();
        n.zero_grad();
        sgd.step(&mut n);
        let after: f32 = n.params_mut()[0].value.norm_sq();
        assert!(after < before);
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let mut n = net();
        // Mask half of the conv weights.
        if let Some(conv) = n
            .layer_mut(0)
            .unwrap()
            .as_any_mut()
            .downcast_mut::<Conv2d>()
        {
            let len = conv.weight().value.len();
            let mask = Tensor::from_fn([4, 1, 3, 3], |i| if i % 2 == 0 { 0.0 } else { 1.0 });
            assert_eq!(mask.len(), len);
            conv.weight_mut().set_mask(mask);
        }
        let mut sgd = Sgd::new(0.05).momentum(0.9);
        let (x, labels) = batch(2);
        let cfg = ExecConfig::serial();
        for _ in 0..10 {
            train_batch(&mut n, &mut sgd, &x, &labels, &cfg);
        }
        if let Some(conv) = n
            .layer_mut(0)
            .unwrap()
            .as_any_mut()
            .downcast_mut::<Conv2d>()
        {
            for (i, v) in conv.weight().value.data().iter().enumerate() {
                if i % 2 == 0 {
                    assert_eq!(*v, 0.0, "masked weight {i} revived");
                }
            }
        }
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let mut n = net();
        let mut plain = Sgd::new(0.01);
        let mut with_m = Sgd::new(0.01).momentum(0.9);
        // Apply two identical unit-gradient steps to cloned paths; the
        // momentum variant must move farther on the second step.
        let w0 = n.params_mut()[0].value.data()[0];
        for p in n.params_mut() {
            p.grad.fill(1.0);
        }
        plain.step(&mut n);
        for p in n.params_mut() {
            p.grad.fill(1.0);
        }
        plain.step(&mut n);
        let plain_dist = (n.params_mut()[0].value.data()[0] - w0).abs();

        let mut n2 = net();
        let w0b = n2.params_mut()[0].value.data()[0];
        for p in n2.params_mut() {
            p.grad.fill(1.0);
        }
        with_m.step(&mut n2);
        for p in n2.params_mut() {
            p.grad.fill(1.0);
        }
        with_m.step(&mut n2);
        let mom_dist = (n2.params_mut()[0].value.data()[0] - w0b).abs();
        assert!(mom_dist > plain_dist);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = TrainConfig::default();
        assert_eq!(c.schedule, LrSchedule::paper());
        assert_eq!(c.epochs, 150);
    }
}
