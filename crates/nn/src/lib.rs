//! CNN inference and training engine.
//!
//! This crate implements the paper's "Neural Network Models" execution
//! substrate: every layer type needed by VGG-16, ResNet-18 and MobileNet
//! (§IV-A), with
//!
//! * three interchangeable convolution algorithms — direct, im2col+GEMM
//!   and CSR sparse-direct — matching the paper's "Data Formats and
//!   Algorithms" layer;
//! * OpenMP-style multi-threaded execution of the convolution outer loop
//!   (via `cnn-stack-parallel`) with a barrier per layer, as §IV-D
//!   describes;
//! * full backpropagation and SGD with the paper's stepped learning-rate
//!   schedule, so the prune → fine-tune pipelines run for real;
//! * per-layer descriptors (MACs, weight bytes, parallel grains) that
//!   drive the `cnn-stack-hwsim` platform timing model;
//! * runtime memory accounting following §V-D ("network parameters ...
//!   input and output buffers and intermediate allocation for padding").
//!
//! # Example
//!
//! ```
//! use cnn_stack_nn::{Conv2d, ExecConfig, Network, Phase, ReLU};
//! use cnn_stack_tensor::Tensor;
//!
//! let mut net = Network::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1, 1, 0)),
//!     Box::new(ReLU::new()),
//! ])
//! .unwrap();
//! let x = Tensor::zeros([1, 3, 32, 32]);
//! let y = net.forward(&x, Phase::Eval, &ExecConfig::default());
//! assert_eq!(y.shape().dims(), &[1, 8, 32, 32]);
//! ```
//!
//! For repeated inference, compile the network once into an
//! [`engine::InferencePlan`] and execute it through an
//! [`engine::InferenceSession`]: a [`liveness`] pass colours every
//! activation and workspace interval into one arena sized at compile
//! time (dead buffers are reused in place), so steady-state forward
//! passes allocate nothing. [`layer::ExecConfig::plan_budget`] asks
//! the plan compiler for the fastest plan whose arena fits a byte
//! budget.

pub mod activations;
pub mod batchnorm;
pub mod conv;
pub mod depthwise;
pub mod descriptor;
pub mod engine;
pub mod error;
pub mod fold;
pub mod guard;
pub mod ir;
pub mod layer;
pub mod linear;
pub mod liveness;
pub mod memory;
pub mod network;
pub mod passes;

pub mod pool;
pub mod residual;
pub mod serialize;
pub mod train;

pub use activations::ReLU;
pub use batchnorm::BatchNorm2d;
pub use cnn_stack_obs::ObsLevel;
pub use conv::Conv2d;
pub use depthwise::DepthwiseConv2d;
pub use descriptor::{LayerDescriptor, LayerKind};
pub use engine::{InferencePlan, InferenceSession, PlanStep, SessionProfile};
pub use error::{Error, PlanError};
pub use fold::{fold_batchnorm, strip_identity_batchnorms};
#[cfg(feature = "fault-inject")]
pub use guard::Fault;
pub use guard::{
    BudgetBreachRecord, DemotionAction, DemotionReason, DemotionRecord, FaultPlan, GuardConfig,
    GuardReport, GuardViolation, HealthReport, NonFiniteKind, ServeBatchFault,
};
pub use ir::{IrOp, OpKind};
pub use layer::{
    ArenaStrategy, ConvAlgorithm, ExecConfig, ExecConfigBuilder, Layer, Param, Phase, QuantPanels,
    WeightFormat,
};
pub use linear::Linear;
pub use liveness::{ArenaLayout, MemoryFootprint, StepExtent, StepSlots};
pub use memory::{network_memory, MemoryBreakdown};
pub use network::{
    adopt_packed_panels, adopt_quant_panels, export_packed_panels, export_quant_panels, Network,
};
pub use passes::{
    AlgoChoice, Autotune, FoldAndFuse, ForceThroughput, PassContext, PlanCompiler, PlanPass,
    SelectAlgorithms,
};
pub use pool::{Flatten, GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
pub use serialize::{load_params, save_params, LoadParamsError};
pub use train::{LrSchedule, Sgd, TrainConfig};
