//! The pass-based plan compiler.
//!
//! [`InferencePlan::compile`] maps every layer to one step under one
//! global [`ExecConfig`] — the paper's "pick a configuration for the
//! whole network" baseline. This module replaces that construction with
//! a compilation pipeline: the network is lowered to a typed op list
//! ([`crate::ir`]), a sequence of [`PlanPass`]es rewrites it, and the
//! result is lowered to [`PlanStep`](crate::engine::PlanStep)s with
//! per-step spans and per-step configurations.
//!
//! The three shipped passes implement the paper's across-stack levers:
//!
//! * [`FoldAndFuse`] — folds batch norms into their producing
//!   convolutions ([`crate::fold_batchnorm`]), then absorbs the exact
//!   identity batch norms and trailing ReLUs into the producing step, so
//!   `conv → BN → ReLU` executes as **one kernel** (the ReLU runs in the
//!   packed GEMM write-back epilogue — no extra sweep over the output).
//! * [`SelectAlgorithms`] — a per-layer cost model (FLOPs, im2col
//!   footprint, *measured* weight sparsity) choosing direct /
//!   im2col+packed / Winograd / CSR per layer. The global
//!   `conv_algo`/`gemm_algo` knobs remain available as overrides: a
//!   non-default base value wins over the model.
//! * [`Autotune`] — opt-in empirical refinement: micro-benchmarks the
//!   top-2 cost-model candidates per layer shape and persists winners to
//!   a tuning cache keyed by shape and thread count, reused across
//!   sessions (`CNN_STACK_TUNE_CACHE`, then `~/.cache/cnn-stack/`).
//!
//! Compilation mutates the network (folding rewrites weights, selection
//! may switch weight formats) — it is a deployment-time transformation,
//! like calling [`crate::fold_batchnorm`] by hand. Pass order matters:
//! fusion first (it re-lowers after folding), selection second (it keeps
//! fusion's `fused_relu` flags), autotune last.
//!
//! # Example
//!
//! ```
//! use cnn_stack_nn::{
//!     BatchNorm2d, Conv2d, ExecConfig, Flatten, InferencePlan, InferenceSession, Linear,
//!     MaxPool2d, Network, PlanCompiler, ReLU,
//! };
//! use cnn_stack_tensor::Tensor;
//!
//! let mut net = Network::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1, 1, 1)),
//!     Box::new(BatchNorm2d::new(8)),
//!     Box::new(ReLU::new()),
//!     Box::new(MaxPool2d::new(2)),
//!     Box::new(Flatten::new()),
//!     Box::new(Linear::new(8 * 4 * 4, 10, 2)),
//! ])
//! .unwrap();
//! let cfg = ExecConfig::serial();
//! let plan = PlanCompiler::standard()
//!     .run(&mut net, &[1, 3, 8, 8], &cfg)
//!     .unwrap();
//! // conv+bn+relu collapsed into one step; 6 layers, 4 steps.
//! assert_eq!(plan.steps().len(), 4);
//! assert_eq!(plan.steps()[0].span, 3);
//! let mut session = InferenceSession::new(&mut net, plan).unwrap();
//! let y = session.run(&Tensor::zeros([1, 3, 8, 8])).unwrap();
//! assert_eq!(y.shape().dims(), &[1, 10]);
//! ```

use crate::engine::{compile_step, InferencePlan, PlanStep};
use crate::error::{Error, PlanError};
use crate::fold;
use crate::ir::{self, IrOp, OpKind};
use crate::layer::{ArenaStrategy, ConvAlgorithm, ExecConfig, Phase, WeightFormat};
use crate::liveness::{MemoryFootprint, StepExtent};
use crate::network::Network;
use cnn_stack_tensor::{GemmAlgorithm, Tensor};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Mutable compilation state handed to each [`PlanPass`]: the network,
/// the base configuration, and the op list being rewritten.
pub struct PassContext<'a> {
    net: &'a mut Network,
    input_shape: Vec<usize>,
    base_cfg: ExecConfig,
    /// The op list; passes rewrite it in place.
    pub ops: Vec<IrOp>,
}

impl PassContext<'_> {
    /// The network under compilation.
    pub fn net(&mut self) -> &mut Network {
        self.net
    }

    /// The compilation input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The base (global) configuration compilation started from.
    pub fn base_cfg(&self) -> &ExecConfig {
        &self.base_cfg
    }

    /// Re-lowers the network into a fresh op list, discarding all spans
    /// and per-op configuration decisions made so far. Passes that
    /// mutate network weights (e.g. batch-norm folding) call this before
    /// making structural decisions.
    pub fn relower(&mut self) -> Result<(), Error> {
        self.ops = ir::lower(self.net, &self.input_shape, &self.base_cfg)?;
        Ok(())
    }
}

/// One rewrite of the op list; see the [module docs](self) for the
/// shipped passes and their ordering contract.
pub trait PlanPass {
    /// Pass name, for diagnostics.
    fn name(&self) -> &'static str;
    /// Rewrites `ctx.ops` (and possibly the network).
    fn run(&self, ctx: &mut PassContext) -> Result<(), Error>;
}

/// An ordered pass pipeline that compiles a network into an
/// [`InferencePlan`]; see the [module docs](self).
#[derive(Default)]
pub struct PlanCompiler {
    passes: Vec<Box<dyn PlanPass>>,
}

impl PlanCompiler {
    /// An empty pipeline — [`run`](Self::run) then matches
    /// [`InferencePlan::compile`] step for step.
    pub fn new() -> Self {
        PlanCompiler { passes: Vec::new() }
    }

    /// The default deployment pipeline: [`FoldAndFuse`] then
    /// [`SelectAlgorithms`].
    pub fn standard() -> Self {
        Self::new()
            .with_pass(FoldAndFuse)
            .with_pass(SelectAlgorithms::new())
    }

    /// [`standard`](Self::standard) plus the opt-in [`Autotune`] pass
    /// with its default cache location.
    pub fn autotuned() -> Self {
        Self::standard().with_pass(Autotune::new())
    }

    /// The brownout pipeline: [`FoldAndFuse`] then [`ForceThroughput`].
    /// This is what the serving layer compiles its *degraded* session
    /// ladder with — when the circuit breaker trips under overload,
    /// workers swap onto plans that trade fidelity levers (cost-model
    /// CSR wins, Winograd, paranoid guard scans — the guard level is the
    /// caller's knob) for the flattest, most predictable throughput
    /// path: im2col + packed GEMM with the fused-ReLU epilogue
    /// everywhere.
    pub fn degraded() -> Self {
        Self::new()
            .with_pass(FoldAndFuse)
            .with_pass(ForceThroughput)
    }

    /// Appends a pass to the pipeline.
    pub fn with_pass(mut self, pass: impl PlanPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs the pipeline: lower, apply every pass in order, solve the
    /// memory budget if one is set, lower the final op list to plan
    /// steps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on a zero thread count, an
    /// empty/zero-extent input shape, or a layer/shape rank mismatch —
    /// the same contract as [`InferencePlan::compile`]. With
    /// `cfg.plan_budget` set, returns
    /// [`PlanError::BudgetInfeasible`] (as [`Error::Plan`]) when even
    /// the smallest-workspace algorithm selection cannot fit the
    /// budget; the error carries the smallest feasible budget.
    pub fn run(
        &self,
        net: &mut Network,
        input_shape: &[usize],
        cfg: &ExecConfig,
    ) -> Result<InferencePlan, Error> {
        if cfg.threads == 0 {
            return Err(Error::InvalidConfig(
                "at least one thread required".to_string(),
            ));
        }
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(Error::InvalidConfig(format!(
                "input shape {input_shape:?} must be non-empty with non-zero extents"
            )));
        }
        let mut ctx = PassContext {
            ops: ir::lower(net, input_shape, cfg)?,
            net,
            input_shape: input_shape.to_vec(),
            base_cfg: *cfg,
        };
        for pass in &self.passes {
            pass.run(&mut ctx)?;
        }
        if let Some(budget) = cfg.plan_budget {
            fit_budget(&mut ctx, budget)?;
        }
        let mut steps: Vec<PlanStep> = Vec::with_capacity(ctx.ops.len());
        for op in &ctx.ops {
            let layer = ctx.net.layers()[op.layer].as_ref();
            let mut step = compile_step(layer, op.layer, &op.input_shape, &op.cfg)?;
            step.span = op.span;
            step.name = op.name.clone();
            step.macs = op.macs;
            steps.push(step);
        }
        let plan = InferencePlan::from_parts(input_shape.to_vec(), *cfg, steps);
        // Admission: after best-effort solving (or a standdown on user
        // overrides) the plan either fits or nothing reachable does —
        // the solved plan's peak *is* the smallest feasible budget.
        if let Some(budget) = cfg.plan_budget {
            let peak = plan.strategy_peak_bytes();
            if peak > budget {
                return Err(Error::Plan(PlanError::BudgetInfeasible {
                    budget_bytes: budget,
                    min_feasible_bytes: peak,
                }));
            }
        }
        Ok(plan)
    }
}

impl InferencePlan {
    /// Compiles `net` through `compiler`'s pass pipeline — the pass-based
    /// successor of [`compile`](InferencePlan::compile). Mutates the
    /// network (folding, weight-format switches); see the
    /// [`passes`](self) module docs.
    pub fn build(
        net: &mut Network,
        input_shape: &[usize],
        cfg: &ExecConfig,
        compiler: &PlanCompiler,
    ) -> Result<InferencePlan, Error> {
        compiler.run(net, input_shape, cfg)
    }
}

// ---------------------------------------------------------------------
// Pass 1: fold-and-fuse
// ---------------------------------------------------------------------

/// Folds batch norms into their producers, then absorbs exact-identity
/// batch norms and trailing ReLUs into the producing conv/linear step;
/// see the [module docs](self).
pub struct FoldAndFuse;

impl PlanPass for FoldAndFuse {
    fn name(&self) -> &'static str {
        "fold-and-fuse"
    }

    fn run(&self, ctx: &mut PassContext) -> Result<(), Error> {
        // The exact variant also folds near-identity batch norms
        // (`scale = 1/sqrt(1 + eps)`), which must execute if kept but
        // become absorbable exact identities once folded.
        fold::fold_batchnorm_exact(ctx.net);
        // Folding rewrote weights and turned batch norms into exact
        // identities — re-derive the op facts before fusing.
        ctx.relower()?;
        let ops = std::mem::take(&mut ctx.ops);
        let mut fused: Vec<IrOp> = Vec::with_capacity(ops.len());
        let mut iter = ops.into_iter().peekable();
        while let Some(mut op) = iter.next() {
            // conv/dw/linear + exact-identity BN → skip the BN.
            if op.kind.absorbs_identity_bn()
                && matches!(
                    iter.peek().map(|n| &n.kind),
                    Some(OpKind::BatchNorm { identity: true, .. })
                )
            {
                let bn = iter.next().expect("peeked");
                op.span += bn.span;
                op.macs += bn.macs;
                op.output_shape = bn.output_shape;
                op.name.push_str(" + bn");
            }
            // conv/linear + ReLU → one kernel via the write-back epilogue.
            if op.kind.fuses_relu() && matches!(iter.peek().map(|n| &n.kind), Some(OpKind::Relu)) {
                let relu = iter.next().expect("peeked");
                op.span += relu.span;
                op.macs += relu.macs;
                op.output_shape = relu.output_shape;
                op.cfg.fused_relu = true;
                op.name.push_str(" + relu");
            }
            fused.push(op);
        }
        ctx.ops = fused;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Pass 2: algorithm selection
// ---------------------------------------------------------------------

/// A per-layer execution strategy the cost model can pick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Direct 7-loop dense convolution.
    DirectConv,
    /// im2col lowering into the packed GEMM engine.
    Im2colPacked,
    /// F(2×2, 3×3) Winograd (3×3 stride-1 dense convolutions only).
    Winograd,
    /// F(4×4, 3×3) Winograd (3×3 stride-1 dense convolutions only):
    /// 4× fewer multiplies than direct at a tiny fixed workspace, so
    /// it is the budget solver's fastest small-footprint refuge when
    /// the packed engine's im2col workspace does not fit.
    WinogradF4,
    /// Real 2-D FFT convolution (dense weights, any kernel/stride).
    /// Only proposed for kernels strictly larger than 3×3 — the plane
    /// transforms never amortise at CNN-typical 3×3/1×1 shapes.
    FftConv,
    /// CSR sparse-direct convolution.
    CsrConv,
    /// Packed GEMM linear layer.
    PackedLinear,
    /// Scalar row-loop linear layer.
    ScalarLinear,
    /// CSR sparse linear layer.
    CsrLinear,
    /// im2col lowering into the packed **ternary** GEMM engine (2-bit
    /// weight codes, transposed product). Value-preserving, so proposed
    /// whenever the weights are exactly ternary.
    TernaryConv,
    /// Packed ternary GEMM linear layer. Value-preserving, proposed
    /// whenever the weights are exactly ternary.
    TernaryLinear,
    /// Packed int8 GEMM linear layer. **Lossy** (activations are
    /// re-quantised per call), so only proposed for layers already
    /// placed in [`WeightFormat::Int8`] by the caller.
    Int8Linear,
}

impl AlgoChoice {
    /// Stable tag used in the tuning cache.
    fn tag(self) -> &'static str {
        match self {
            AlgoChoice::DirectConv => "direct",
            AlgoChoice::Im2colPacked => "im2col-packed",
            AlgoChoice::Winograd => "winograd",
            AlgoChoice::WinogradF4 => "winograd-f4",
            AlgoChoice::FftConv => "fft",
            AlgoChoice::CsrConv => "csr",
            AlgoChoice::PackedLinear => "gemm-packed",
            AlgoChoice::ScalarLinear => "gemm-scalar",
            AlgoChoice::CsrLinear => "gemm-csr",
            AlgoChoice::TernaryConv => "im2col-ternary",
            AlgoChoice::TernaryLinear => "gemm-ternary",
            AlgoChoice::Int8Linear => "gemm-int8",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "direct" => AlgoChoice::DirectConv,
            "im2col-packed" => AlgoChoice::Im2colPacked,
            "winograd" => AlgoChoice::Winograd,
            "winograd-f4" => AlgoChoice::WinogradF4,
            "fft" => AlgoChoice::FftConv,
            "csr" => AlgoChoice::CsrConv,
            "gemm-packed" => AlgoChoice::PackedLinear,
            "gemm-scalar" => AlgoChoice::ScalarLinear,
            "gemm-csr" => AlgoChoice::CsrLinear,
            "im2col-ternary" => AlgoChoice::TernaryConv,
            "gemm-ternary" => AlgoChoice::TernaryLinear,
            "gemm-int8" => AlgoChoice::Int8Linear,
            _ => return None,
        })
    }
}

// Cost-model throughput anchors, measured on this crate's own kernels
// (BENCH_gemm.json, 512³ single-thread): the packed micro-kernel engine
// sustains ~54 GFLOP/s where the scalar blocked/naive kernels sustain
// ~1.8. CSR pays per-nonzero index chasing (~1.2 GFLOP/s dense-equivalent
// on its stored nonzeros), which reproduces the paper's §V finding that
// sparse formats only win at extreme sparsity: against the packed engine
// the crossover density is ≈ 1.2/54 ≈ 2%. The Winograd number prices the
// current naive, allocating transform — the 2.25× MAC reduction does not
// survive it, so the model never picks it unasked.
const PACKED_GFLOPS: f64 = 54.0;
const SCALAR_GFLOPS: f64 = 1.8;
const SPARSE_GFLOPS: f64 = 1.2;
const WINOGRAD_GFLOPS: f64 = 0.9;
// The quantised micro-kernels run the same FMA ladder as the f32 kernel
// with a per-step decode prologue (2-bit shift/permute select, or i8 →
// f32 widening); the anchors price that overhead. Their wins come from
// the traffic terms below (2-bit/1-byte weight streams) and, for the
// transposed ternary convolution, from moving a tiny output plane off
// the NR-padded column dimension — both modelled explicitly.
const TERNARY_GFLOPS: f64 = 48.0;
const INT8_GFLOPS: f64 = 50.0;
// F(4×4, 3×3) executes 4× fewer multiplies per output than direct and
// runs them as tile-blocked frequency-wise GEMMs (BENCH_conv.json:
// ~5 GFLOP/s on the multiply count across the VGG shapes), so its
// anchor sits well above the per-tile scalar F(2×2) loop while staying
// far below the packed im2col engine.
const WINOGRAD4_GFLOPS: f64 = 4.0;
// The radix-2 split-complex FFT kernel's sustained rate over plane
// transforms + frequency-domain MACs (BENCH_conv.json, large-kernel
// sweep). Scalar, so ~30× below the packed GEMM engine — FFT wins only
// where it removes ~two orders of magnitude of arithmetic and im2col
// pack traffic, i.e. large kernels over large maps.
const FFT_GFLOPS: f64 = 1.5;
/// Streaming bandwidth charged for building/packing the im2col matrix
/// and for weight-panel traffic.
const PACK_BYTES_PER_SEC: f64 = 4.0e9;

/// FLOPs the packed tile grid actually executes for an `[m × k]·[k × n]`
/// product: ragged edges run full `MR × NR` micro-kernels on zero-padded
/// lanes, so tiny dimensions pay their round-up. This is what makes the
/// transposed ternary convolution win on late VGG layers — a 2×2 output
/// plane pads 4 → 16 columns under f32 but only 4 → 6 rows transposed.
fn tile_padded_flops(m: usize, k: usize, n: usize) -> f64 {
    let m_pad = m.div_ceil(cnn_stack_tensor::MR) * cnn_stack_tensor::MR;
    let n_pad = n.div_ceil(cnn_stack_tensor::NR) * cnn_stack_tensor::NR;
    2.0 * m_pad as f64 * k as f64 * n_pad as f64
}

/// Predicted seconds for one single-thread forward of `op` under
/// `choice`. Relative accuracy is all that matters: every path
/// parallelises over the same outer loop, so thread count scales all
/// candidates alike.
fn predicted_seconds(op: &IrOp, choice: AlgoChoice) -> f64 {
    let flops = 2.0 * op.macs as f64;
    let batch = op.input_shape.first().copied().unwrap_or(1).max(1);
    match choice {
        AlgoChoice::DirectConv | AlgoChoice::ScalarLinear => flops / (SCALAR_GFLOPS * 1e9),
        AlgoChoice::Im2colPacked => {
            let OpKind::Conv {
                geom, out_channels, ..
            } = &op.kind
            else {
                return flops / (PACKED_GFLOPS * 1e9);
            };
            let plane = geom.out_positions();
            let k = geom.patch_len();
            // Mirror the engine's small-plane batching: groups of images
            // merge their columns until one column grain is filled, so
            // the NR round-up is paid once per group, not per image.
            let group = ((4 * cnn_stack_tensor::NR) / plane.max(1)).clamp(1, batch);
            let groups = batch as f64 / group as f64;
            let eff = groups * tile_padded_flops(*out_channels, k, group * plane);
            let weight_traffic = groups * (out_channels * k * 4) as f64;
            let footprint = (k * plane * 4) as f64 * batch as f64;
            // Pointwise stride-1 convolutions skip the im2col
            // indirection entirely (the image is the column matrix) —
            // only the panel repack remains.
            let pack = if geom.is_pointwise_identity() {
                footprint * 0.5
            } else {
                footprint
            };
            eff / (PACKED_GFLOPS * 1e9) + (pack + weight_traffic) / PACK_BYTES_PER_SEC
        }
        AlgoChoice::TernaryConv => {
            let OpKind::Conv {
                geom, out_channels, ..
            } = &op.kind
            else {
                return f64::INFINITY;
            };
            let plane = geom.out_positions();
            let k = geom.patch_len();
            // Transposed product Outᵀ = Colᵀ·Wᵀ, per image: the plane is
            // the MR-padded row dimension, the weights stream as 2-bit
            // codes (16× less panel traffic than f32).
            let eff = batch as f64 * tile_padded_flops(plane, k, *out_channels);
            let weight_traffic = batch as f64 * (out_channels * k) as f64 / 4.0;
            let footprint = (k * plane * 4) as f64 * batch as f64;
            eff / (TERNARY_GFLOPS * 1e9) + (footprint + weight_traffic) / PACK_BYTES_PER_SEC
        }
        AlgoChoice::PackedLinear | AlgoChoice::TernaryLinear | AlgoChoice::Int8Linear => {
            let OpKind::Linear {
                in_features,
                out_features,
                ..
            } = &op.kind
            else {
                return f64::INFINITY;
            };
            let eff = tile_padded_flops(batch, *in_features, *out_features);
            // At serving batch sizes the product is bound by streaming
            // the weight panels; the quantised formats' narrower panels
            // are exactly where they win.
            let elems = (in_features * out_features) as f64;
            let (gflops, weight_traffic) = match choice {
                AlgoChoice::PackedLinear => (PACKED_GFLOPS, elems * 4.0),
                AlgoChoice::TernaryLinear => (TERNARY_GFLOPS, elems / 4.0),
                _ => (INT8_GFLOPS, elems),
            };
            eff / (gflops * 1e9) + weight_traffic / PACK_BYTES_PER_SEC
        }
        AlgoChoice::Winograd => flops / 2.25 / (WINOGRAD_GFLOPS * 1e9),
        AlgoChoice::WinogradF4 => flops / 4.0 / (WINOGRAD4_GFLOPS * 1e9),
        AlgoChoice::FftConv => {
            let OpKind::Conv {
                geom, out_channels, ..
            } = &op.kind
            else {
                return f64::INFINITY;
            };
            let (ph, pw) = cnn_stack_tensor::fft_plane_dims(geom);
            let ps = (ph * pw) as f64;
            let in_c = geom.in_channels as f64;
            let oc = *out_channels as f64;
            // One radix-2 plane transform ≈ 5·ps·log₂(ps) flops;
            // conjugate-pair packing halves the transform count.
            // Filter spectra are computed once per call, so they
            // amortise over the batch; input/inverse transforms and
            // the 8-flop complex MAC per (o, c, frequency) do not.
            let plane_flops = 5.0 * ps * ps.log2().max(1.0);
            let filter_planes = (oc * in_c / 2.0).ceil();
            let image_planes = (in_c / 2.0).ceil() + (oc / 2.0).ceil();
            let transforms = filter_planes + batch as f64 * image_planes;
            let pointwise = batch as f64 * oc * in_c * ps * 8.0;
            (transforms * plane_flops + pointwise) / (FFT_GFLOPS * 1e9)
        }
        AlgoChoice::CsrConv | AlgoChoice::CsrLinear => {
            let density = match &op.kind {
                OpKind::Conv { sparsity, .. } | OpKind::Linear { sparsity, .. } => 1.0 - sparsity,
                _ => 1.0,
            };
            flops * density / (SPARSE_GFLOPS * 1e9)
        }
    }
}

/// Valid candidates for `op`, cheapest predicted first; empty for ops
/// the selector does not touch.
fn candidates(op: &IrOp) -> Vec<(AlgoChoice, f64)> {
    let mut c: Vec<AlgoChoice> = match &op.kind {
        OpKind::Conv { geom, ternary, .. } => {
            let mut v = vec![
                AlgoChoice::DirectConv,
                AlgoChoice::Im2colPacked,
                AlgoChoice::CsrConv,
            ];
            if geom.k_h == 3 && geom.k_w == 3 && geom.stride == 1 {
                v.push(AlgoChoice::Winograd);
                v.push(AlgoChoice::WinogradF4);
            }
            // FFT never amortises its plane transforms at 3×3 and
            // below; proposing it there would only churn the autotuner.
            if geom.k_h * geom.k_w > 9 {
                v.push(AlgoChoice::FftConv);
            }
            // Value-preserving, so auto-selectable: the packed ternary
            // kernel decodes the codes to the exact weight values.
            if *ternary {
                v.push(AlgoChoice::TernaryConv);
            }
            v
        }
        OpKind::Linear {
            format, ternary, ..
        } => {
            let mut v = vec![
                AlgoChoice::PackedLinear,
                AlgoChoice::ScalarLinear,
                AlgoChoice::CsrLinear,
            ];
            if *ternary {
                v.push(AlgoChoice::TernaryLinear);
            }
            // Int8 is lossy (per-call activation quantisation): only a
            // candidate when the caller already opted the layer in.
            if *format == WeightFormat::Int8 {
                v.push(AlgoChoice::Int8Linear);
            }
            v
        }
        _ => Vec::new(),
    };
    c.sort_by(|a, b| predicted_seconds(op, *a).total_cmp(&predicted_seconds(op, *b)));
    c.into_iter()
        .map(|ch| (ch, predicted_seconds(op, ch)))
        .collect()
}

/// Applies `choice` to the op's config and, when the choice implies a
/// weight-format switch, to the layer itself.
fn apply_choice(net: &mut Network, op: &mut IrOp, choice: AlgoChoice) {
    let layers = net.layers_mut();
    match choice {
        AlgoChoice::DirectConv => {
            op.cfg.conv_algo = ConvAlgorithm::Direct;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::Im2colPacked => {
            op.cfg.conv_algo = ConvAlgorithm::Im2col;
            op.cfg.gemm_algo = GemmAlgorithm::Packed;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::Winograd => {
            op.cfg.conv_algo = ConvAlgorithm::Winograd;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::WinogradF4 => {
            op.cfg.conv_algo = ConvAlgorithm::WinogradF4;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::FftConv => {
            op.cfg.conv_algo = ConvAlgorithm::Fft;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::CsrConv => {
            op.cfg.conv_algo = ConvAlgorithm::Direct;
            set_layer_format(layers, op.layer, WeightFormat::Csr);
        }
        AlgoChoice::PackedLinear => {
            op.cfg.gemm_algo = GemmAlgorithm::Packed;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::ScalarLinear => {
            op.cfg.gemm_algo = GemmAlgorithm::Blocked;
            set_layer_format(layers, op.layer, WeightFormat::Dense);
        }
        AlgoChoice::CsrLinear => {
            set_layer_format(layers, op.layer, WeightFormat::Csr);
        }
        AlgoChoice::TernaryConv => {
            op.cfg.conv_algo = ConvAlgorithm::Im2col;
            op.cfg.gemm_algo = GemmAlgorithm::TernaryPacked;
            set_layer_format(layers, op.layer, WeightFormat::Ternary);
        }
        AlgoChoice::TernaryLinear => {
            op.cfg.gemm_algo = GemmAlgorithm::TernaryPacked;
            set_layer_format(layers, op.layer, WeightFormat::Ternary);
        }
        AlgoChoice::Int8Linear => {
            op.cfg.gemm_algo = GemmAlgorithm::Int8Packed;
            set_layer_format(layers, op.layer, WeightFormat::Int8);
        }
    }
    // Keep the IR's format fact in sync for later passes.
    if let OpKind::Conv { format, .. } | OpKind::Linear { format, .. } = &mut op.kind {
        *format = match choice {
            AlgoChoice::CsrConv | AlgoChoice::CsrLinear => WeightFormat::Csr,
            AlgoChoice::TernaryConv | AlgoChoice::TernaryLinear => WeightFormat::Ternary,
            AlgoChoice::Int8Linear => WeightFormat::Int8,
            _ => WeightFormat::Dense,
        };
    }
    // Tag the step name with the winning algorithm so plan reports show
    // per-layer choices. Replace any tag from an earlier pass (autotune
    // re-applies on top of cost-model selection).
    if op.name.ends_with(']') {
        if let Some(pos) = op.name.rfind(" [") {
            op.name.truncate(pos);
        }
    }
    let _ = write!(op.name, " [{}]", choice.tag());
}

fn set_layer_format(layers: &mut [Box<dyn crate::layer::Layer>], idx: usize, format: WeightFormat) {
    // Quantised formats always re-run `set_format`, even when the label
    // already matches: an earlier pass (BN folding) may have rewritten
    // the weights through `weight_mut`, which drops the code snapshot —
    // without a fresh pack the step would silently run the f32
    // fallback. Re-packing is a compile-time cost only. Dense/CSR keep
    // the skip (CSR snapshots are rebuilt by `weight_mut` callers via
    // `set_format`, and re-snapshotting dense is a no-op).
    let refresh = matches!(format, WeightFormat::Ternary | WeightFormat::Int8);
    let layer = layers[idx].as_any_mut();
    if let Some(c) = layer.downcast_mut::<crate::Conv2d>() {
        if refresh || c.format() != format {
            c.set_format(format);
        }
    } else if let Some(fc) = layer.downcast_mut::<crate::Linear>() {
        if refresh || fc.format() != format {
            fc.set_format(format);
        }
    }
}

/// Chooses an execution strategy per conv/linear op from the cost model;
/// see the [module docs](self). A non-default `conv_algo` or `gemm_algo`
/// in the base config is treated as a user override and left untouched
/// (use [`SelectAlgorithms::forced`] to select regardless).
pub struct SelectAlgorithms {
    honor_overrides: bool,
}

impl SelectAlgorithms {
    /// Selector that honours non-default base knobs as overrides.
    pub fn new() -> Self {
        SelectAlgorithms {
            honor_overrides: true,
        }
    }

    /// Selector that always applies the cost model, ignoring the base
    /// `conv_algo`/`gemm_algo`.
    pub fn forced() -> Self {
        SelectAlgorithms {
            honor_overrides: false,
        }
    }
}

impl Default for SelectAlgorithms {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanPass for SelectAlgorithms {
    fn name(&self) -> &'static str {
        "select-algorithms"
    }

    fn run(&self, ctx: &mut PassContext) -> Result<(), Error> {
        let defaults = ExecConfig::serial();
        if self.honor_overrides
            && (ctx.base_cfg.conv_algo != defaults.conv_algo
                || ctx.base_cfg.gemm_algo != defaults.gemm_algo)
        {
            return Ok(());
        }
        let mut ops = std::mem::take(&mut ctx.ops);
        for op in &mut ops {
            if let Some(&(best, _)) = candidates(op).first() {
                apply_choice(ctx.net, op, best);
            }
        }
        ctx.ops = ops;
        Ok(())
    }
}

/// Degradation pass for brownout serving: forces the throughput-biased
/// im2col+packed configuration on every conv and linear op, ignoring
/// the cost model, measured sparsity, and any base-config override.
/// Sparse layers are densified and Winograd candidates are ignored —
/// under brownout the objective is the highest *predictable* batch
/// throughput, not the fastest plan for this particular weight tensor.
pub struct ForceThroughput;

impl PlanPass for ForceThroughput {
    fn name(&self) -> &'static str {
        "force-throughput"
    }

    fn run(&self, ctx: &mut PassContext) -> Result<(), Error> {
        let mut ops = std::mem::take(&mut ctx.ops);
        for op in &mut ops {
            match &op.kind {
                OpKind::Conv { .. } => apply_choice(ctx.net, op, AlgoChoice::Im2colPacked),
                OpKind::Linear { .. } => apply_choice(ctx.net, op, AlgoChoice::PackedLinear),
                _ => {}
            }
        }
        ctx.ops = ops;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Budget solver: fastest plan under N bytes
// ---------------------------------------------------------------------

/// One algorithm option for one op during budget solving. `choice` is
/// `None` for ops the selector does not touch (their extent is fixed);
/// `Some` entries can be (re-)applied via [`apply_choice`].
struct BudgetCand {
    choice: Option<AlgoChoice>,
    secs: f64,
    extent: StepExtent,
}

/// Peak arena bytes of a step-extent sequence under `arena` — the same
/// number `InferencePlan::strategy_peak_bytes` reports for the compiled
/// plan, so solver decisions and the admission check agree.
fn arena_peak_bytes(extents: &[StepExtent], arena: ArenaStrategy) -> usize {
    let fp = MemoryFootprint::of(extents);
    match arena {
        ArenaStrategy::Coloured => fp.peak_bytes,
        ArenaStrategy::PingPong => fp.naive_bytes,
    }
}

/// Memory extent of one op compiled under its current per-op config —
/// a real `compile_step` probe, so the workspace numbers are the
/// kernels' own, not a cost-model estimate.
fn op_extent(net: &Network, op: &IrOp) -> Result<StepExtent, Error> {
    let step = compile_step(
        net.layers()[op.layer].as_ref(),
        op.layer,
        &op.input_shape,
        &op.cfg,
    )?;
    Ok(StepExtent {
        output_elems: step.output_elems,
        workspace_elems: step.workspace_elems,
        scratch_elems: step.scratch_elems,
    })
}

/// Whether `choice` describes the op's *current* configuration, so the
/// solver can start from the pass pipeline's selection (including an
/// autotuned winner) rather than resetting every op to the cost model's
/// predicted-fastest.
fn matches_current(op: &IrOp, choice: AlgoChoice) -> bool {
    let format = match &op.kind {
        OpKind::Conv { format, .. } | OpKind::Linear { format, .. } => *format,
        _ => return false,
    };
    let cfg = &op.cfg;
    match choice {
        AlgoChoice::DirectConv => {
            cfg.conv_algo == ConvAlgorithm::Direct && format == WeightFormat::Dense
        }
        AlgoChoice::Im2colPacked => {
            cfg.conv_algo == ConvAlgorithm::Im2col
                && cfg.gemm_algo == GemmAlgorithm::Packed
                && format == WeightFormat::Dense
        }
        AlgoChoice::Winograd => cfg.conv_algo == ConvAlgorithm::Winograd,
        AlgoChoice::WinogradF4 => cfg.conv_algo == ConvAlgorithm::WinogradF4,
        AlgoChoice::FftConv => cfg.conv_algo == ConvAlgorithm::Fft,
        AlgoChoice::CsrConv | AlgoChoice::CsrLinear => format == WeightFormat::Csr,
        AlgoChoice::TernaryConv | AlgoChoice::TernaryLinear => format == WeightFormat::Ternary,
        AlgoChoice::Int8Linear => format == WeightFormat::Int8,
        AlgoChoice::PackedLinear => {
            cfg.gemm_algo == GemmAlgorithm::Packed && format == WeightFormat::Dense
        }
        AlgoChoice::ScalarLinear => {
            cfg.gemm_algo == GemmAlgorithm::Blocked && format == WeightFormat::Dense
        }
    }
}

/// Solves "fastest plan under the budget" over the pipeline's op list.
///
/// The solver first checks the liveness-derived peak of the current
/// selection; when it already fits, nothing changes (an autotuned
/// winner stays an autotuned winner). When over budget, it probes every
/// conv/linear candidate's true workspace via [`compile_step`] and then
/// greedily demotes: each round it evaluates, for every op, a move to
/// that op's fastest strictly-smaller-workspace algorithm (im2col +
/// packed falls back towards Winograd/direct, packed linear towards
/// blocked), recomputes the coloured peak each move would produce, and
/// applies the move with the lowest resulting peak, breaking ties
/// towards the smallest predicted slowdown. When every op sits at its
/// smallest workspace and the plan still exceeds the budget, the floor
/// selection is left applied and the caller's admission check reports
/// [`PlanError::BudgetInfeasible`] with that floor as the smallest
/// feasible budget.
///
/// A non-default `conv_algo`/`gemm_algo` in the base config is a user
/// override and the solver stands down, exactly like
/// [`SelectAlgorithms`]: the admission check then reports infeasibility
/// rather than silently rewriting the user's plan.
fn fit_budget(ctx: &mut PassContext, budget_bytes: usize) -> Result<(), Error> {
    let defaults = ExecConfig::serial();
    if ctx.base_cfg.conv_algo != defaults.conv_algo || ctx.base_cfg.gemm_algo != defaults.gemm_algo
    {
        return Ok(());
    }
    let arena = ctx.base_cfg.arena;
    let current: Vec<StepExtent> = ctx
        .ops
        .iter()
        .map(|op| op_extent(ctx.net, op))
        .collect::<Result<_, _>>()?;
    if arena_peak_bytes(&current, arena) <= budget_bytes {
        return Ok(());
    }

    let mut ops = std::mem::take(&mut ctx.ops);
    let mut tables: Vec<Vec<BudgetCand>> = Vec::with_capacity(ops.len());
    let mut selected: Vec<usize> = Vec::with_capacity(ops.len());
    for (op, cur) in ops.iter_mut().zip(&current) {
        let cands = candidates(op);
        if cands.is_empty() {
            tables.push(vec![BudgetCand {
                choice: None,
                secs: 0.0,
                extent: *cur,
            }]);
            selected.push(0);
            continue;
        }
        // Record which candidate the pipeline currently has applied
        // *before* probing overwrites the op's config.
        let init = cands
            .iter()
            .position(|&(c, _)| matches_current(op, c))
            .unwrap_or(0);
        let mut table = Vec::with_capacity(cands.len());
        for (choice, secs) in cands {
            apply_choice(ctx.net, op, choice);
            table.push(BudgetCand {
                choice: Some(choice),
                secs,
                extent: op_extent(ctx.net, op)?,
            });
        }
        tables.push(table);
        selected.push(init);
    }

    loop {
        let extents: Vec<StepExtent> = tables
            .iter()
            .zip(&selected)
            .map(|(t, &j)| t[j].extent)
            .collect();
        if arena_peak_bytes(&extents, arena) <= budget_bytes {
            break;
        }
        let mut best: Option<(usize, usize, usize, f64)> = None;
        for (i, table) in tables.iter().enumerate() {
            let cur = &table[selected[i]];
            // Candidates are sorted fastest-first, so `position` finds
            // the fastest algorithm that actually shrinks this op.
            let Some(j) = table
                .iter()
                .position(|c| c.extent.workspace_elems < cur.extent.workspace_elems)
            else {
                continue;
            };
            let mut trial = extents.clone();
            trial[i] = table[j].extent;
            let new_peak = arena_peak_bytes(&trial, arena);
            let dsecs = table[j].secs - cur.secs;
            let better = match best {
                None => true,
                Some((_, _, bp, bd)) => new_peak < bp || (new_peak == bp && dsecs < bd),
            };
            if better {
                best = Some((i, j, new_peak, dsecs));
            }
        }
        let Some((i, j, _, _)) = best else {
            // Every op already sits at its smallest workspace; the
            // caller's admission check reports the floor.
            break;
        };
        selected[i] = j;
    }

    // Leave the network and op list in the solved state (probing left
    // them on each op's last-probed candidate).
    for (op, (table, &j)) in ops.iter_mut().zip(tables.iter().zip(&selected)) {
        if let Some(choice) = table[j].choice {
            apply_choice(ctx.net, op, choice);
        }
    }
    ctx.ops = ops;
    Ok(())
}

// ---------------------------------------------------------------------
// Pass 3: empirical autotune
// ---------------------------------------------------------------------

/// Opt-in empirical refinement of the cost model: micro-benchmarks the
/// top-2 predicted candidates per conv/linear op and applies the
/// measured winner, persisting it to a tuning cache so later
/// compilations of the same shape skip the measurement.
///
/// Cache resolution order: an explicit [`with_cache_path`]
/// (Autotune::with_cache_path) argument, the `CNN_STACK_TUNE_CACHE`
/// environment variable, then `~/.cache/cnn-stack/tune.tsv`. Entries are
/// keyed by op kind, GEMM dimensions, batch, measured-sparsity bucket,
/// and thread count. Cache I/O is best-effort: an unreadable or
/// unwritable cache degrades to measuring every compilation.
pub struct Autotune {
    cache_path: Option<PathBuf>,
    samples: u32,
}

impl Autotune {
    /// Autotuner with the default cache resolution.
    pub fn new() -> Self {
        Autotune {
            cache_path: None,
            samples: 3,
        }
    }

    /// Autotuner writing to an explicit cache file (tests point this at
    /// a temp dir for determinism).
    pub fn with_cache_path(path: impl Into<PathBuf>) -> Self {
        Autotune {
            cache_path: Some(path.into()),
            samples: 3,
        }
    }

    fn resolve_cache_path(&self) -> Option<PathBuf> {
        if let Some(p) = &self.cache_path {
            return Some(p.clone());
        }
        if let Ok(p) = std::env::var("CNN_STACK_TUNE_CACHE") {
            if !p.is_empty() {
                return Some(PathBuf::from(p));
            }
        }
        std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".cache/cnn-stack/tune.tsv"))
    }

    /// Best-of-`samples` wall-clock seconds for one forward of the op's
    /// primary layer under `cfg`, after a warm-up run (which also packs
    /// any plan-time panels via `prepare`).
    fn measure(net: &mut Network, op: &IrOp, cfg: &ExecConfig, samples: u32) -> f64 {
        let layer = &mut net.layers_mut()[op.layer];
        layer.visit_mut(&mut |l| l.prepare(cfg));
        let x = Tensor::from_fn(op.input_shape.clone(), |i| ((i % 23) as f32 - 11.0) * 0.05);
        let _ = layer.forward(&x, Phase::Eval, cfg);
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let t = Instant::now();
            let _ = layer.forward(&x, Phase::Eval, cfg);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    }
}

impl Default for Autotune {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable cache key for an op at one shape and thread count.
fn tune_key(op: &IrOp, threads: usize) -> Option<String> {
    let batch = op.input_shape.first().copied().unwrap_or(1);
    match &op.kind {
        OpKind::Conv {
            geom,
            out_channels,
            sparsity,
            ..
        } => Some(format!(
            "conv:m{}k{}n{}:b{batch}:sp{:.2}:t{threads}",
            out_channels,
            geom.patch_len(),
            geom.out_positions(),
            sparsity,
        )),
        OpKind::Linear {
            in_features,
            out_features,
            sparsity,
            ..
        } => Some(format!(
            "linear:m{batch}k{in_features}n{out_features}:sp{:.2}:t{threads}",
            sparsity,
        )),
        _ => None,
    }
}

fn load_cache(path: &Path) -> Vec<(String, AlgoChoice)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let (key, tag) = line.split_once('\t')?;
            Some((key.to_string(), AlgoChoice::from_tag(tag)?))
        })
        .collect()
}

fn store_cache(path: &Path, entries: &[(String, AlgoChoice)]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = String::new();
    for (key, choice) in entries {
        text.push_str(key);
        text.push('\t');
        text.push_str(choice.tag());
        text.push('\n');
    }
    let _ = std::fs::write(path, text);
}

impl PlanPass for Autotune {
    fn name(&self) -> &'static str {
        "autotune"
    }

    fn run(&self, ctx: &mut PassContext) -> Result<(), Error> {
        let cache_path = self.resolve_cache_path();
        let mut cache = cache_path.as_deref().map(load_cache).unwrap_or_default();
        let mut dirty = false;
        let threads = ctx.base_cfg.threads;
        let mut ops = std::mem::take(&mut ctx.ops);
        for op in &mut ops {
            let Some(key) = tune_key(op, threads) else {
                continue;
            };
            if let Some((_, cached)) = cache.iter().find(|(k, _)| *k == key) {
                apply_choice(ctx.net, op, *cached);
                continue;
            }
            let mut top: Vec<AlgoChoice> =
                candidates(op).into_iter().take(2).map(|(c, _)| c).collect();
            if top.len() < 2 {
                continue; // nothing to compare; keep the selector's pick
            }
            // Light budget filter: a candidate whose own step residency
            // (input + output + workspace are simultaneously live)
            // exceeds the budget can never appear in a feasible plan,
            // so don't spend samples measuring it. A budget-influenced
            // winner must not enter the budget-agnostic tuning cache.
            let mut cacheable = true;
            if let Some(budget) = ctx.base_cfg.plan_budget {
                let input_elems: usize = op.input_shape.iter().product();
                let mut keep = Vec::with_capacity(top.len());
                for &choice in &top {
                    apply_choice(ctx.net, op, choice);
                    let ext = op_extent(ctx.net, op)?;
                    let resident = 4 * (input_elems + ext.output_elems + ext.workspace_elems);
                    if resident <= budget {
                        keep.push(choice);
                    }
                }
                cacheable = keep.len() == top.len();
                top = keep;
                if top.is_empty() {
                    continue; // nothing fits here; the budget solver repairs later
                }
                if top.len() == 1 {
                    apply_choice(ctx.net, op, top[0]);
                    continue;
                }
            }
            let mut winner = top[0];
            let mut best = f64::INFINITY;
            for &choice in &top {
                apply_choice(ctx.net, op, choice);
                let t = Self::measure(ctx.net, op, &op.cfg, self.samples);
                if t < best {
                    best = t;
                    winner = choice;
                }
            }
            apply_choice(ctx.net, op, winner);
            if cacheable {
                cache.push((key, winner));
                dirty = true;
            }
        }
        ctx.ops = ops;
        if dirty {
            if let Some(path) = &cache_path {
                store_cache(path, &cache);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Conv2d, Flatten, InferenceSession, Linear, MaxPool2d, Network, ReLU};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn fusable_net(seed: u64) -> Network {
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(3, 6, 3, 1, 1, seed)),
            Box::new(BatchNorm2d::new(6)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(6 * 4 * 4, 5, seed + 1)),
            Box::new(ReLU::new()),
        ])
        .unwrap();
        // Give the batch norm non-trivial statistics so folding does
        // real work.
        let bn = net.layers_mut()[1]
            .as_any_mut()
            .downcast_mut::<BatchNorm2d>()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 7);
        for g in bn.gamma_mut().value.data_mut() {
            *g = rng.gen_range(0.5..1.5);
        }
        net
    }

    #[test]
    fn empty_pipeline_matches_compile() {
        let mut net = fusable_net(11);
        let cfg = ExecConfig::serial();
        let direct = InferencePlan::compile(&net, &[2, 3, 8, 8], &cfg).unwrap();
        let built = PlanCompiler::new()
            .run(&mut net, &[2, 3, 8, 8], &cfg)
            .unwrap();
        assert_eq!(built.steps().len(), direct.steps().len());
        for (a, b) in built.steps().iter().zip(direct.steps()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.span, 1);
            assert_eq!(a.output_shape, b.output_shape);
        }
    }

    #[test]
    fn fold_and_fuse_collapses_conv_bn_relu() {
        let mut net = fusable_net(3);
        let cfg = ExecConfig::serial();
        let plan = PlanCompiler::new()
            .with_pass(FoldAndFuse)
            .run(&mut net, &[2, 3, 8, 8], &cfg)
            .unwrap();
        // 7 layers → 4 steps: [conv+bn+relu][pool][flatten][linear+relu].
        assert_eq!(plan.steps().len(), 4);
        assert_eq!(plan.steps()[0].span, 3);
        assert!(plan.steps()[0].cfg.fused_relu);
        assert_eq!(plan.steps()[3].span, 2);
        assert!(plan.steps()[3].cfg.fused_relu);
        let covered: usize = plan.steps().iter().map(|s| s.span).sum();
        assert_eq!(covered, 7);
    }

    #[test]
    fn fused_plan_matches_unfused_execution() {
        let x = random([2, 3, 8, 8], 42);
        let cfg = ExecConfig::serial();
        // Reference: unfused network, uniform plan (folding is applied
        // to both networks first so the weights are identical).
        let mut reference = fusable_net(3);
        crate::fold_batchnorm(&mut reference);
        let ref_plan = InferencePlan::compile(&reference, &[2, 3, 8, 8], &cfg).unwrap();
        let mut ref_session = InferenceSession::new(&mut reference, ref_plan).unwrap();
        let want = ref_session.run(&x).unwrap();

        let mut net = fusable_net(3);
        let plan = PlanCompiler::new()
            .with_pass(FoldAndFuse)
            .run(&mut net, &[2, 3, 8, 8], &cfg)
            .unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let got = session.run(&x).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        for (g, w) in got.data().iter().zip(want.data()) {
            assert_eq!(g, w, "fused and unfused outputs must agree exactly");
        }
    }

    #[test]
    fn near_identity_batchnorm_is_not_absorbed() {
        // A fresh (unfolded, never-folded) batch norm scales by
        // 1/sqrt(1+eps) — skipping it would change outputs, so the
        // fuser must keep it when folding cannot run (e.g. after a
        // non-conv producer).
        let mut net = Network::new(vec![
            Box::new(MaxPool2d::new(2)),
            Box::new(BatchNorm2d::new(3)),
        ])
        .unwrap();
        let cfg = ExecConfig::serial();
        let plan = PlanCompiler::new()
            .with_pass(FoldAndFuse)
            .run(&mut net, &[1, 3, 8, 8], &cfg)
            .unwrap();
        assert_eq!(plan.steps().len(), 2);
    }

    #[test]
    fn selection_picks_packed_for_dense_and_csr_for_extreme_sparsity() {
        // out_c of 16 keeps the dense layer on the packed engine: below
        // ~12 output channels the F(4×4) candidate's multiply saving
        // outweighs the pack-bandwidth term and wins the stem instead.
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(3, 16, 3, 1, 1, 2)),
            Box::new(Conv2d::new(16, 16, 3, 1, 1, 3)),
        ])
        .unwrap();
        // Prune the second conv to ~99% sparsity: CSR beats packed
        // only beyond the ≈98% crossover.
        {
            let conv = net.layers_mut()[1]
                .as_any_mut()
                .downcast_mut::<Conv2d>()
                .unwrap();
            let data = conv.weight_mut().value.data_mut();
            let keep = data.len() / 100;
            for v in data.iter_mut().skip(keep) {
                *v = 0.0;
            }
        }
        let cfg = ExecConfig::serial();
        let plan = PlanCompiler::standard()
            .run(&mut net, &[1, 3, 16, 16], &cfg)
            .unwrap();
        assert_eq!(plan.steps()[0].cfg.conv_algo, ConvAlgorithm::Im2col);
        assert_eq!(plan.steps()[0].cfg.gemm_algo, GemmAlgorithm::Packed);
        // The sparse layer went CSR + direct.
        assert_eq!(plan.steps()[1].cfg.conv_algo, ConvAlgorithm::Direct);
        let sparse_layer = net.layers_mut()[1]
            .as_any_mut()
            .downcast_mut::<Conv2d>()
            .unwrap();
        assert_eq!(sparse_layer.format(), WeightFormat::Csr);
    }

    #[test]
    fn selection_honours_global_override() {
        let mut net = Network::new(vec![Box::new(Conv2d::new(3, 8, 3, 1, 1, 2))]).unwrap();
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            gemm_algo: GemmAlgorithm::Blocked,
            ..ExecConfig::serial()
        };
        let plan = PlanCompiler::standard()
            .run(&mut net, &[1, 3, 8, 8], &cfg)
            .unwrap();
        // Non-default base knobs are a user override: kept verbatim.
        assert_eq!(plan.steps()[0].cfg.conv_algo, ConvAlgorithm::Im2col);
        assert_eq!(plan.steps()[0].cfg.gemm_algo, GemmAlgorithm::Blocked);
    }

    #[test]
    fn selected_plan_executes_and_matches_reference() {
        let x = random([2, 3, 8, 8], 9);
        let cfg = ExecConfig::serial();
        let mut reference = fusable_net(5);
        let want = reference.forward(&x, Phase::Eval, &cfg);

        let mut net = fusable_net(5);
        let plan = PlanCompiler::standard()
            .run(&mut net, &[2, 3, 8, 8], &cfg)
            .unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let got = session.run(&x).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        for (g, w) in got.data().iter().zip(want.data()) {
            let err = (g - w).abs();
            // Folding changes the arithmetic (BN absorbed into the
            // weights), so exact equality is not expected — agreement
            // to folding tolerance is.
            assert!(err <= 1e-4 * w.abs().max(1.0), "got {g}, want {w}");
        }
    }

    #[test]
    fn autotune_persists_and_reuses_cache() {
        let dir = std::env::temp_dir().join(format!("cnn-stack-tune-test-{}", std::process::id()));
        let path = dir.join("tune.tsv");
        let _ = std::fs::remove_file(&path);
        let cfg = ExecConfig::serial();

        let mut net = fusable_net(13);
        let plan_a = PlanCompiler::standard()
            .with_pass(Autotune::with_cache_path(path.clone()))
            .run(&mut net, &[1, 3, 8, 8], &cfg)
            .unwrap();
        let text = std::fs::read_to_string(&path).expect("cache written");
        assert!(text.lines().count() >= 2, "conv and linear entries: {text}");

        // Second compilation replays the cache: identical selections,
        // no re-measurement dependence.
        let mut net_b = fusable_net(13);
        let plan_b = PlanCompiler::standard()
            .with_pass(Autotune::with_cache_path(path.clone()))
            .run(&mut net_b, &[1, 3, 8, 8], &cfg)
            .unwrap();
        for (a, b) in plan_a.steps().iter().zip(plan_b.steps()) {
            assert_eq!(a.cfg.conv_algo, b.cfg.conv_algo, "step {}", a.name);
            assert_eq!(a.cfg.gemm_algo, b.cfg.gemm_algo, "step {}", a.name);
        }
        let text_b = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, text_b, "cache hit must not rewrite the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_round_trips_tags() {
        for choice in [
            AlgoChoice::DirectConv,
            AlgoChoice::Im2colPacked,
            AlgoChoice::Winograd,
            AlgoChoice::CsrConv,
            AlgoChoice::PackedLinear,
            AlgoChoice::ScalarLinear,
            AlgoChoice::CsrLinear,
            AlgoChoice::TernaryConv,
            AlgoChoice::TernaryLinear,
            AlgoChoice::Int8Linear,
        ] {
            assert_eq!(AlgoChoice::from_tag(choice.tag()), Some(choice));
        }
        assert_eq!(AlgoChoice::from_tag("nonsense"), None);
    }

    fn budget_net(seed: u64) -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 16, 3, 1, 1, seed)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(16 * 6 * 6, 10, seed + 1)),
        ])
        .unwrap()
    }

    #[test]
    fn loose_budget_keeps_pipeline_selection() {
        let shape = [2usize, 3, 12, 12];
        let mut free_net = budget_net(31);
        let free = PlanCompiler::standard()
            .run(&mut free_net, &shape, &ExecConfig::serial())
            .unwrap();
        let mut capped_net = budget_net(31);
        let cfg = ExecConfig::builder().plan_budget(1 << 30).build().unwrap();
        let capped = PlanCompiler::standard()
            .run(&mut capped_net, &shape, &cfg)
            .unwrap();
        for (a, b) in free.steps().iter().zip(capped.steps()) {
            assert_eq!(a.cfg.conv_algo, b.cfg.conv_algo, "step {}", a.name);
            assert_eq!(a.cfg.gemm_algo, b.cfg.gemm_algo, "step {}", a.name);
        }
    }

    #[test]
    fn tight_budget_demotes_to_smaller_workspace() {
        let shape = [2usize, 3, 12, 12];
        let mut free_net = budget_net(32);
        let free = PlanCompiler::standard()
            .run(&mut free_net, &shape, &ExecConfig::serial())
            .unwrap();
        let free_peak = free.footprint().peak_bytes;
        assert!(free_peak > 0);
        // Ask for just under the unconstrained peak: the solver must
        // demote at least one step onto a smaller-workspace algorithm.
        let budget = free_peak - 4;
        let mut capped_net = budget_net(32);
        let cfg = ExecConfig::builder().plan_budget(budget).build().unwrap();
        let capped = PlanCompiler::standard()
            .run(&mut capped_net, &shape, &cfg)
            .unwrap();
        assert!(capped.footprint().peak_bytes <= budget);
        assert!(
            free.steps()
                .iter()
                .zip(capped.steps())
                .any(|(a, b)| a.cfg.conv_algo != b.cfg.conv_algo
                    || a.cfg.gemm_algo != b.cfg.gemm_algo),
            "a demotion must have happened"
        );
        // The demoted plan still computes the right function.
        let x = random(shape, 77);
        let mut free_sess = InferenceSession::new(&mut free_net, free).unwrap();
        let mut capped_sess = InferenceSession::new(&mut capped_net, capped).unwrap();
        let ya = free_sess.run(&x).unwrap();
        let yb = capped_sess.run(&x).unwrap();
        for (a, b) in ya.data().iter().zip(yb.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn infeasible_budget_reports_achievable_floor() {
        let shape = [2usize, 3, 12, 12];
        let mut net = budget_net(33);
        let cfg = ExecConfig::builder().plan_budget(64).build().unwrap();
        let err = PlanCompiler::standard()
            .run(&mut net, &shape, &cfg)
            .unwrap_err();
        let Error::Plan(PlanError::BudgetInfeasible {
            budget_bytes,
            min_feasible_bytes,
        }) = err
        else {
            panic!("expected BudgetInfeasible, got {err:?}");
        };
        assert_eq!(budget_bytes, 64);
        assert!(min_feasible_bytes > 64);
        // The reported floor is itself achievable.
        let mut net2 = budget_net(33);
        let cfg2 = ExecConfig::builder()
            .plan_budget(min_feasible_bytes)
            .build()
            .unwrap();
        let plan = PlanCompiler::standard()
            .run(&mut net2, &shape, &cfg2)
            .unwrap();
        assert!(plan.footprint().peak_bytes <= min_feasible_bytes);
    }

    #[test]
    fn user_override_stands_down_solver() {
        // An explicit conv_algo override must not be rewritten to fit;
        // the compiler reports infeasibility instead.
        let shape = [2usize, 3, 12, 12];
        let mut net = budget_net(34);
        let cfg = ExecConfig::builder()
            .conv_algo(ConvAlgorithm::Im2col)
            .plan_budget(64)
            .build()
            .unwrap();
        let err = PlanCompiler::standard()
            .run(&mut net, &shape, &cfg)
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Plan(PlanError::BudgetInfeasible { .. })
        ));
    }
}
