//! Error type for fallible `cnn-stack-nn` public APIs.
//!
//! The original API panicked on misuse (empty networks, out-of-range
//! layer indices, shape mismatches). Those invariants are now surfaced
//! as [`Error`] values from `Result`-returning constructors and
//! accessors, so callers embedding the stack (benchmark drivers, the
//! experiment runner) can report bad configurations instead of
//! aborting. Thin `expect`-based shims remain where tests and examples
//! want the old behaviour.

use crate::guard::GuardReport;
use crate::serialize::LoadParamsError;
use cnn_stack_parallel::PoolError;

/// Memory-planning failures (see [`crate::liveness`] and the budget
/// solver in [`crate::passes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// No combination of per-layer algorithm choices fits the requested
    /// peak-arena budget. `min_feasible_bytes` is the smallest budget
    /// that would have succeeded (the liveness-coloured peak with every
    /// layer on its smallest-workspace algorithm), so callers can
    /// retry with a workable envelope.
    BudgetInfeasible {
        /// The budget that was requested, in bytes.
        budget_bytes: usize,
        /// The smallest peak-arena budget any plan can meet, in bytes.
        min_feasible_bytes: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BudgetInfeasible {
                budget_bytes,
                min_feasible_bytes,
            } => write!(
                f,
                "memory budget of {budget_bytes} bytes is infeasible: the smallest-workspace plan still peaks at {min_feasible_bytes} bytes"
            ),
        }
    }
}

/// Errors produced by network construction, indexing, and execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A network was constructed with no layers.
    EmptyNetwork,
    /// A layer index was out of range for the network.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The number of layers in the network.
        len: usize,
    },
    /// A tensor shape did not match what the operation required.
    ShapeMismatch {
        /// The shape the operation expected.
        expected: Vec<usize>,
        /// The shape it was given.
        actual: Vec<usize>,
    },
    /// A backward pass was requested before any forward pass cached
    /// its activations.
    NoForwardCached,
    /// A configuration value was rejected by a validating builder.
    InvalidConfig(String),
    /// Deserialising stored parameters failed.
    Load(LoadParamsError),
    /// A runtime guard tripped and no safer algorithm was available to
    /// demote to (see [`crate::GuardConfig`]).
    GuardTripped(GuardReport),
    /// A kernel panicked; the panic was contained but the step had no
    /// safer algorithm to demote to.
    KernelPanicked {
        /// Index of the panicking top-level layer.
        layer: usize,
        /// Its name, as recorded in the plan.
        name: String,
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The worker pool failed persistently (retries exhausted).
    Pool(PoolError),
    /// Memory planning failed (e.g. an infeasible peak-arena budget).
    Plan(PlanError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyNetwork => write!(f, "a network needs at least one layer"),
            Error::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "layer index {index} out of range for network of {len} layers"
                )
            }
            Error::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            Error::NoForwardCached => {
                write!(
                    f,
                    "no cached forward activations; run a training-phase forward first"
                )
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Load(e) => write!(f, "parameter load failed: {e}"),
            Error::GuardTripped(report) => write!(f, "{report}"),
            Error::KernelPanicked {
                layer,
                name,
                message,
            } => write!(
                f,
                "kernel panicked in layer {layer} ({name}): {message} (contained; no safer algorithm available)"
            ),
            Error::Pool(e) => write!(f, "worker pool failed: {e}"),
            Error::Plan(e) => write!(f, "memory planning failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<LoadParamsError> for Error {
    fn from(e: LoadParamsError) -> Self {
        Error::Load(e)
    }
}

impl From<PoolError> for Error {
    fn from(e: PoolError) -> Self {
        Error::Pool(e)
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = Error::IndexOutOfRange { index: 7, len: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = Error::ShapeMismatch {
            expected: vec![1, 3, 32, 32],
            actual: vec![1, 1, 32, 32],
        };
        assert!(e.to_string().contains("[1, 3, 32, 32]"));
        assert_eq!(
            Error::EmptyNetwork.to_string(),
            "a network needs at least one layer"
        );
    }

    #[test]
    fn load_error_converts() {
        let e: Error = LoadParamsError::BadMagic.into();
        assert!(matches!(e, Error::Load(LoadParamsError::BadMagic)));
    }
}
