//! Depthwise convolution — the defining operation of MobileNet.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{ExecConfig, Layer, Param, Phase, WeightFormat};
use cnn_stack_parallel::parallel_for;
use cnn_stack_parallel::DisjointWriter;
use cnn_stack_tensor::init::{initialise, Init};
use cnn_stack_tensor::{Conv2dGeometry, Tensor};

/// A depthwise 2-D convolution: one `k × k` filter per channel, no
/// cross-channel mixing (MobileNet pairs it with a 1×1 pointwise
/// [`crate::Conv2d`], §IV-A).
///
/// Depthwise layers have very low arithmetic intensity (`k²` MACs per
/// output element versus `in_c · k²` for standard convolution), which is
/// the root of the paper's observation that MobileNet "is the least
/// suitable for parallelisation" (§V-D).
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{DepthwiseConv2d, ExecConfig, Layer, Phase};
/// use cnn_stack_tensor::Tensor;
///
/// let mut dw = DepthwiseConv2d::new(8, 3, 1, 1, 0);
/// let y = dw.forward(&Tensor::zeros([1, 8, 16, 16]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[1, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct DepthwiseConv2d {
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[channels, 1, k, k]` filters.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(channels: usize, kernel: usize, stride: usize, padding: usize, seed: u64) -> Self {
        assert!(
            channels > 0 && kernel > 0 && stride > 0,
            "extents must be non-zero"
        );
        DepthwiseConv2d {
            channels,
            kernel,
            stride,
            padding,
            weight: Param::new(initialise(
                [channels, 1, kernel, kernel],
                Init::KaimingNormal,
                seed,
            )),
            bias: Param::new(Tensor::zeros([channels])),
            cached_input: None,
        }
    }

    /// Channel count (input == output).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// Removes channel `c` (filter + bias). Channel-pruning surgery.
    ///
    /// # Panics
    ///
    /// Panics if out of range or only one channel remains.
    pub fn remove_channel(&mut self, c: usize) {
        assert!(c < self.channels, "channel {c} out of range");
        assert!(self.channels > 1, "cannot remove the last channel");
        let kk = self.kernel * self.kernel;
        let mut w = self.weight.value.data().to_vec();
        w.drain(c * kk..(c + 1) * kk);
        let mut b = self.bias.value.data().to_vec();
        b.remove(c);
        self.channels -= 1;
        self.weight = Param::new(Tensor::from_vec(
            [self.channels, 1, self.kernel, self.kernel],
            w,
        ));
        self.bias = Param::new(Tensor::from_vec([self.channels], b));
    }

    fn geometry(&self, h: usize, w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(1, h, w, self.kernel, self.kernel, self.stride, self.padding)
    }

    /// The shared inference kernel over raw slices. Both
    /// [`Layer::forward`] and [`Layer::forward_into`] funnel through
    /// this, so the arena engine is bit-identical to the tensor path.
    #[allow(clippy::needless_range_loop)]
    fn eval_into(
        &self,
        in_data: &[f32],
        n: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let geom = self.geometry(h, w);
        let plane_in = h * w;
        let plane_out = geom.out_h * geom.out_w;
        let k = self.kernel;
        let kk = k * k;
        let wdata = self.weight.value.data();
        let bdata = self.bias.value.data();
        let writer = DisjointWriter::new(out);
        let writer = &writer;
        for img in 0..n {
            parallel_for(cfg.threads, self.channels, cfg.schedule, |range| {
                for c in range {
                    // SAFETY: one output plane per grain.
                    let dst = unsafe {
                        writer.slice_mut(
                            (img * self.channels + c) * plane_out,
                            (img * self.channels + c + 1) * plane_out,
                        )
                    };
                    dst.fill(bdata[c]);
                    let x_plane = &in_data[(img * self.channels + c) * plane_in
                        ..(img * self.channels + c + 1) * plane_in];
                    let filter = &wdata[c * kk..(c + 1) * kk];
                    for kh in 0..k {
                        for kw in 0..k {
                            // No zero-tap skip: `0.0 * NaN` must stay NaN
                            // (same policy as the GEMM kernels), and
                            // pruned depthwise weights are exactly zero.
                            let wv = filter[kh * k + kw];
                            for oh in 0..geom.out_h {
                                let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                                if ih < 0 || ih as usize >= h {
                                    continue;
                                }
                                let x_row = &x_plane[ih as usize * w..(ih as usize + 1) * w];
                                let d_row = &mut dst[oh * geom.out_w..(oh + 1) * geom.out_w];
                                for ow in 0..geom.out_w {
                                    let iw =
                                        (ow * geom.stride + kw) as isize - geom.padding as isize;
                                    if iw < 0 || iw as usize >= w {
                                        continue;
                                    }
                                    d_row[ow] += wv * x_row[iw as usize];
                                }
                            }
                        }
                    }
                }
            });
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!(
            "dwconv{k}x{k}(c={c})/s{s}",
            k = self.kernel,
            c = self.channels,
            s = self.stride
        )
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        assert_eq!(in_c, self.channels, "{}: channel mismatch", self.name());
        let geom = self.geometry(h, w);
        if phase == Phase::Train {
            self.cached_input = Some(input.clone());
        }
        let mut out = Tensor::zeros([n, self.channels, geom.out_h, geom.out_w]);
        self.eval_into(input.data(), n, h, w, out.data_mut(), cfg);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward without a Train-phase forward");
        let (n, _, h, w) = input.shape().nchw();
        let geom = self.geometry(h, w);
        let plane_in = h * w;
        let plane_out = geom.out_h * geom.out_w;
        let k = self.kernel;
        let kk = k * k;
        let mut grad_input = Tensor::zeros(input.shape().dims().to_vec());
        let wdata = self.weight.value.data().to_vec();
        for img in 0..n {
            for c in 0..self.channels {
                let base_in = (img * self.channels + c) * plane_in;
                let base_out = (img * self.channels + c) * plane_out;
                let x_plane = &input.data()[base_in..base_in + plane_in];
                let dy = &grad_out.data()[base_out..base_out + plane_out];
                // Bias gradient.
                self.bias.grad.data_mut()[c] += dy.iter().sum::<f32>();
                for kh in 0..k {
                    for kw in 0..k {
                        let mut dw = 0.0;
                        for oh in 0..geom.out_h {
                            let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                            if ih < 0 || ih as usize >= h {
                                continue;
                            }
                            for ow in 0..geom.out_w {
                                let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                                if iw < 0 || iw as usize >= w {
                                    continue;
                                }
                                let g = dy[oh * geom.out_w + ow];
                                dw += g * x_plane[ih as usize * w + iw as usize];
                                grad_input.data_mut()[base_in + ih as usize * w + iw as usize] +=
                                    g * wdata[c * kk + kh * k + kw];
                            }
                        }
                        self.weight.grad.data_mut()[c * kk + kh * k + kw] += dw;
                    }
                }
            }
        }
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let (n, in_c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        assert_eq!(in_c, self.channels, "{}: channel mismatch", self.name());
        self.eval_into(input, n, h, w, out, cfg);
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let n = input_shape[0];
        let (h, w) = (input_shape[2], input_shape[3]);
        let geom = self.geometry(h, w);
        let positions = geom.out_positions();
        let kk = self.kernel * self.kernel;
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::DepthwiseConv {
                geom,
                channels: self.channels,
            },
            macs: (n * self.channels * kk * positions) as u64,
            weight_elems: self.channels * kk,
            weight_nnz: self.weight.value.len() - self.weight.value.count_zeros(0.0),
            format: WeightFormat::Dense,
            input_elems: input_shape.iter().product(),
            output_elems: n * self.channels * positions,
            output_shape: vec![n, self.channels, geom.out_h, geom.out_w],
            scratch_elems: (h + 2 * self.padding) * (w + 2 * self.padding),
            parallel_grains: self.channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn shape_and_stride() {
        let mut dw = DepthwiseConv2d::new(4, 3, 2, 1, 0);
        let y = dw.forward(
            &Tensor::zeros([1, 4, 8, 8]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn matches_grouped_standard_conv() {
        // A depthwise conv equals a standard conv whose cross-channel taps
        // are zero.
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, 13);
        let mut full = crate::Conv2d::new(3, 3, 3, 1, 1, 99);
        full.weight_mut().value.fill(0.0);
        for c in 0..3 {
            for t in 0..9 {
                let v = dw.weight.value.data()[c * 9 + t];
                // full weight layout: [o][c][kh][kw]; diagonal o == c.
                full.weight_mut().value.data_mut()[(c * 3 + c) * 9 + t] = v;
            }
        }
        let x = random([2, 3, 6, 6], 7);
        let a = dw.forward(&x, Phase::Eval, &ExecConfig::default());
        let b = full.forward(&x, Phase::Eval, &ExecConfig::default());
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn threads_agree_with_serial() {
        let mut dw = DepthwiseConv2d::new(6, 3, 1, 1, 3);
        let x = random([1, 6, 8, 8], 8);
        let serial = dw.forward(&x, Phase::Eval, &ExecConfig::serial());
        let par = dw.forward(&x, Phase::Eval, &ExecConfig::with_threads(4));
        assert!(serial.allclose(&par, 1e-5));
    }

    #[test]
    fn gradient_check() {
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, 21);
        let x = random([1, 2, 4, 4], 9);
        let cfg = ExecConfig::serial();
        let y = dw.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        let dx = dw.backward(&ones);
        let eps = 1e-3;
        // Weight gradient.
        for &i in &[0usize, 8, 12, 17] {
            let orig = dw.weight.value.data()[i];
            dw.weight.value.data_mut()[i] = orig + eps;
            let lp = dw.forward(&x, Phase::Eval, &cfg).sum();
            dw.weight.value.data_mut()[i] = orig - eps;
            let lm = dw.forward(&x, Phase::Eval, &cfg).sum();
            dw.weight.value.data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dw.weight.grad.data()[i]).abs() < 2e-2, "dW[{i}]");
        }
        // Input gradient.
        for &i in &[0usize, 10, 25, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = dw.forward(&xp, Phase::Eval, &cfg).sum();
            let lm = dw.forward(&xm, Phase::Eval, &cfg).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 2e-2, "dX[{i}]");
        }
    }

    #[test]
    fn remove_channel_surgery() {
        let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, 1);
        let before = dw.weight.value.clone();
        dw.remove_channel(0);
        assert_eq!(dw.channels(), 2);
        assert_eq!(dw.weight.value.data()[0], before.data()[9]);
        let y = dw.forward(
            &Tensor::zeros([1, 2, 4, 4]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn descriptor_low_arithmetic_intensity() {
        let dw = DepthwiseConv2d::new(32, 3, 1, 1, 0);
        let pw = crate::Conv2d::new(32, 64, 1, 1, 0, 0);
        let d_dw = dw.descriptor(&[1, 32, 16, 16]);
        let d_pw = pw.descriptor(&[1, 32, 16, 16]);
        // The 1x1 pointwise dominates MACs even though the depthwise has
        // the same spatial extent — MobileNet's signature imbalance.
        assert!(d_pw.macs > d_dw.macs * 3);
    }
}
