//! Binary serialisation of network parameters.
//!
//! The paper publishes its trained network implementations "for the
//! community to scrutinise and expand" (§IV-F); a usable artifact
//! therefore needs trained weights to survive a process. The format is
//! deliberately simple and versioned: a magic/version header, a tensor
//! count, then per tensor its rank, dimensions and little-endian f32
//! payload, followed by an optional mask section (pruning masks are part
//! of a compressed model's identity).
//!
//! Parameters are matched to a network **by position**: the destination
//! network must have the same architecture (same layer sequence and
//! shapes) as the source.

use crate::layer::Param;
use crate::network::Network;
use std::fmt;

const MAGIC: &[u8; 8] = b"CNNSTK01";

/// Error deserialising a parameter blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadParamsError {
    /// The blob does not start with the format magic.
    BadMagic,
    /// The blob ended mid-structure.
    Truncated,
    /// A structural header holds an impossible value (zero/oversized
    /// rank, a dimension product overflowing `usize`, or a payload
    /// length that cannot be addressed).
    CorruptHeader {
        /// Byte offset of the offending header field.
        offset: usize,
    },
    /// Tensor count differs from the destination network's.
    ParamCountMismatch {
        /// Tensors in the blob.
        stored: usize,
        /// Parameters in the destination network.
        expected: usize,
    },
    /// A tensor's shape differs from the destination parameter's.
    ShapeMismatch {
        /// Parameter index.
        index: usize,
    },
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadParamsError::BadMagic => f.write_str("not a cnn-stack parameter blob"),
            LoadParamsError::Truncated => f.write_str("parameter blob is truncated"),
            LoadParamsError::CorruptHeader { offset } => {
                write!(f, "corrupt structural header at byte offset {offset}")
            }
            LoadParamsError::ParamCountMismatch { stored, expected } => write!(
                f,
                "blob holds {stored} tensors but the network has {expected} parameters"
            ),
            LoadParamsError::ShapeMismatch { index } => {
                write!(f, "tensor {index} has a different shape in the blob")
            }
        }
    }
}

impl std::error::Error for LoadParamsError {}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn push_tensor(out: &mut Vec<u8>, t: &cnn_stack_tensor::Tensor) {
    push_usize(out, t.shape().rank());
    for &d in t.shape().dims() {
        push_usize(out, d);
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LoadParamsError> {
        // Checked: a corrupt length header can make `pos + n` overflow,
        // which must read as truncation, not a panic.
        let end = self.pos.checked_add(n).ok_or(LoadParamsError::Truncated)?;
        if end > self.bytes.len() {
            return Err(LoadParamsError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn read_usize(&mut self) -> Result<usize, LoadParamsError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| LoadParamsError::Truncated)?;
        Ok(u64::from_le_bytes(b) as usize)
    }

    fn read_tensor(&mut self) -> Result<cnn_stack_tensor::Tensor, LoadParamsError> {
        let rank_offset = self.pos;
        let rank = self.read_usize()?;
        if rank == 0 || rank > 8 {
            return Err(LoadParamsError::CorruptHeader {
                offset: rank_offset,
            });
        }
        let dims_offset = self.pos;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.read_usize()?);
        }
        // A corrupted dimension header can claim astronomically large
        // extents; checked arithmetic turns those into errors instead of
        // multiply-overflow panics (or absurd allocations).
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(LoadParamsError::CorruptHeader {
                offset: dims_offset,
            })?;
        let byte_len = len.checked_mul(4).ok_or(LoadParamsError::CorruptHeader {
            offset: dims_offset,
        })?;
        let raw = self.take(byte_len)?;
        let mut data = Vec::with_capacity(len);
        for c in raw.chunks_exact(4) {
            let b: [u8; 4] = c.try_into().map_err(|_| LoadParamsError::Truncated)?;
            data.push(f32::from_le_bytes(b));
        }
        Ok(cnn_stack_tensor::Tensor::from_vec(dims, data))
    }
}

/// Serialises every parameter (values and pruning masks) of `net`.
pub fn save_params(net: &mut Network) -> Vec<u8> {
    let params = net.params_mut();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_usize(&mut out, params.len());
    for p in &params {
        push_tensor(&mut out, &p.value);
    }
    // Mask section: a presence byte per parameter, then present masks.
    for p in &params {
        out.push(u8::from(p.mask.is_some()));
    }
    for p in &params {
        if let Some(mask) = &p.mask {
            push_tensor(&mut out, mask);
        }
    }
    out
}

/// Restores parameters saved by [`save_params`] into `net`.
///
/// Parameters land in the dense master copies; if the destination
/// network had CSR snapshots installed
/// ([`Conv2d::set_format`](crate::Conv2d::set_format)), re-apply the
/// format after loading.
///
/// # Errors
///
/// Returns a [`LoadParamsError`] if the blob is malformed or does not
/// match the network's architecture; on error the network is left
/// unmodified.
pub fn load_params(net: &mut Network, bytes: &[u8]) -> Result<(), LoadParamsError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(LoadParamsError::BadMagic);
    }
    let count = r.read_usize()?;
    let expected = net.params_mut().len();
    if count != expected {
        return Err(LoadParamsError::ParamCountMismatch {
            stored: count,
            expected,
        });
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.read_tensor()?);
    }
    let mut has_mask = Vec::with_capacity(count);
    for _ in 0..count {
        has_mask.push(r.take(1)?[0] != 0);
    }
    let mut masks = Vec::with_capacity(count);
    for &present in &has_mask {
        masks.push(if present {
            Some(r.read_tensor()?)
        } else {
            None
        });
    }
    // Validate shapes before touching the network.
    {
        let params = net.params_mut();
        for (i, (p, v)) in params.iter().zip(&values).enumerate() {
            if p.value.shape() != v.shape() {
                return Err(LoadParamsError::ShapeMismatch { index: i });
            }
        }
    }
    for ((p, value), mask) in net.params_mut().into_iter().zip(values).zip(masks) {
        *p = Param::new(value);
        if let Some(m) = mask {
            p.set_mask(m);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, ExecConfig, Flatten, Linear, Phase, ReLU};
    use cnn_stack_tensor::Tensor;

    fn net(seed: u64) -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, seed)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 16, 3, seed + 1)),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut src = net(1);
        let mut dst = net(2);
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32 * 0.1);
        let want = src.forward(&x, Phase::Eval, &ExecConfig::default());
        let before = dst.forward(&x, Phase::Eval, &ExecConfig::default());
        assert!(!want.allclose(&before, 1e-6), "nets must start different");

        let blob = save_params(&mut src);
        load_params(&mut dst, &blob).expect("compatible architectures");
        let after = dst.forward(&x, Phase::Eval, &ExecConfig::default());
        assert!(want.allclose(&after, 0.0));
    }

    #[test]
    fn masks_survive_roundtrip() {
        let mut src = net(3);
        cnn_stack_compress_free_masks(&mut src);
        let blob = save_params(&mut src);
        let mut dst = net(4);
        load_params(&mut dst, &blob).expect("load");
        let mut params = dst.params_mut();
        assert!(params[0].mask.is_some());
        // Mask still pins zeros after an update.
        params[0].value.fill(5.0);
        params[0].apply_mask();
        assert!(params[0].value.count_zeros(0.0) > 0);
    }

    /// Installs a simple mask on the first parameter (standing in for a
    /// pruning pass without a compress-crate dependency).
    fn cnn_stack_compress_free_masks(net: &mut Network) {
        let params = net.params_mut();
        let shape = params[0].value.shape().dims().to_vec();
        let mask = Tensor::from_fn(shape, |i| if i % 2 == 0 { 0.0 } else { 1.0 });
        net.params_mut()[0].set_mask(mask);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut n = net(5);
        assert_eq!(
            load_params(&mut n, b"NOTAMAGICBLOB"),
            Err(LoadParamsError::BadMagic)
        );
    }

    #[test]
    fn truncated_blob_rejected() {
        let mut src = net(6);
        let blob = save_params(&mut src);
        let mut dst = net(7);
        assert_eq!(
            load_params(&mut dst, &blob[..blob.len() / 2]),
            Err(LoadParamsError::Truncated)
        );
        // Every possible truncation point errors cleanly — none panics
        // or is accepted (a shorter prefix can never be a valid blob).
        for cut in 0..blob.len() {
            assert!(
                load_params(&mut dst, &blob[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn zero_length_blob_rejected() {
        let mut dst = net(11);
        assert_eq!(load_params(&mut dst, b""), Err(LoadParamsError::Truncated));
    }

    #[test]
    fn corrupted_length_header_rejected() {
        let mut src = net(12);
        let blob = save_params(&mut src);
        let mut dst = net(13);

        // The first tensor's rank field sits right after the magic (8
        // bytes) and the tensor count (8 bytes). Overwrite it with an
        // impossible rank: must error, not panic.
        let mut bad_rank = blob.clone();
        bad_rank[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            load_params(&mut dst, &bad_rank),
            Err(LoadParamsError::CorruptHeader { offset: 16 })
        );
        let mut zero_rank = blob.clone();
        zero_rank[16..24].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            load_params(&mut dst, &zero_rank),
            Err(LoadParamsError::CorruptHeader { offset: 16 })
        );

        // Corrupt the first dimension instead: a huge extent must be
        // rejected by the checked size computation (`4 * 2^62` overflows
        // usize) rather than overflowing or trying to allocate.
        let mut bad_dim = blob.clone();
        bad_dim[24..32].copy_from_slice(&(1u64 << 62).to_le_bytes());
        assert_eq!(
            load_params(&mut dst, &bad_dim),
            Err(LoadParamsError::CorruptHeader { offset: 24 })
        );

        // A merely-too-large (but non-overflowing) dimension reads as
        // truncation: the payload it promises is not there.
        let mut long_dim = blob.clone();
        long_dim[24..32].copy_from_slice(&(1u64 << 20).to_le_bytes());
        assert_eq!(
            load_params(&mut dst, &long_dim),
            Err(LoadParamsError::Truncated)
        );

        // The untouched original still loads, so the corruptions above
        // are what tripped the checks.
        load_params(&mut dst, &blob).expect("pristine blob loads");
    }

    #[test]
    fn architecture_mismatch_rejected() {
        let mut src = net(8);
        let blob = save_params(&mut src);
        let mut other = Network::new(vec![Box::new(Linear::new(4, 2, 0))]).unwrap();
        assert!(matches!(
            load_params(&mut other, &blob),
            Err(LoadParamsError::ParamCountMismatch { .. })
        ));
        let mut wrong_shape = Network::new(vec![
            Box::new(Conv2d::new(1, 8, 3, 1, 1, 9)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(8 * 16, 3, 10)),
        ])
        .unwrap();
        assert!(matches!(
            load_params(&mut wrong_shape, &blob),
            Err(LoadParamsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn error_messages_are_lowercase_and_descriptive() {
        let e = LoadParamsError::ParamCountMismatch {
            stored: 3,
            expected: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('5'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
