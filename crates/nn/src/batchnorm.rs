//! Batch normalisation over channels (Ioffe & Szegedy), used by ResNet-18
//! and MobileNet (§IV-A).

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{ExecConfig, Layer, Param, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;

/// 2-D batch normalisation: per-channel statistics over `(N, H, W)`.
///
/// Training mode uses batch statistics and maintains exponential running
/// averages; evaluation mode applies the running averages, which is what
/// every inference benchmark in the paper measures.
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{BatchNorm2d, ExecConfig, Layer, Phase};
/// use cnn_stack_tensor::Tensor;
///
/// let mut bn = BatchNorm2d::new(8);
/// let y = bn.forward(&Tensor::zeros([2, 8, 4, 4]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    /// Scale γ.
    gamma: Param,
    /// Shift β.
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    /// Caches for backward: normalised activations and 1/std per channel.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Option<Vec<f32>>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0, running stats (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be non-zero");
        BatchNorm2d {
            channels,
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cached_xhat: None,
            cached_inv_std: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The scale parameter γ (per channel). Channel pruning à la
    /// Ye et al. inspects these magnitudes.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Mutable scale parameter.
    pub fn gamma_mut(&mut self) -> &mut Param {
        &mut self.gamma
    }

    /// The shift parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Running mean per channel (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance per channel (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Resets the layer to an exact inference-time identity
    /// (γ = 1, β = 0, running mean 0, running variance `1 − eps`), used
    /// after its transform has been folded into the preceding
    /// convolution.
    pub fn reset_to_identity(&mut self) {
        self.gamma = Param::new(Tensor::ones([self.channels]));
        self.beta = Param::new(Tensor::zeros([self.channels]));
        self.running_mean = vec![0.0; self.channels];
        self.running_var = vec![1.0 - self.eps; self.channels];
    }

    /// Whether the layer currently applies the identity at inference
    /// time (within floating-point tolerance).
    pub fn is_inference_identity(&self) -> bool {
        let scale_ok = self
            .gamma
            .value
            .data()
            .iter()
            .zip(&self.running_var)
            .all(|(&g, &v)| (g / (v + self.eps).sqrt() - 1.0).abs() < 1e-5);
        let shift_ok = self
            .beta
            .value
            .data()
            .iter()
            .zip(&self.running_mean)
            .all(|(&b, &m)| (b - m).abs() < 1e-6);
        scale_ok && shift_ok
    }

    /// Whether the inference transform is *exactly* `y = x * 1.0 + 0.0`
    /// for every channel — the bar for the fold-and-fuse plan pass to
    /// skip the layer entirely (bit-preserving up to the sign of
    /// negative zero). The tolerance-based
    /// [`is_inference_identity`](Self::is_inference_identity) is not
    /// sufficient: skipping a *near*-identity (e.g. a freshly
    /// initialised layer, whose scale is `1/sqrt(1 + eps)`) would
    /// perturb outputs.
    pub fn is_exact_inference_identity(&self) -> bool {
        (0..self.channels).all(|ch| {
            let (scale, shift) = self.eval_scale_shift(ch);
            scale == 1.0 && shift == 0.0
        })
    }

    /// Inference-mode scale/shift for channel `ch`, folded from the
    /// running statistics: `y = x * scale + shift`.
    fn eval_scale_shift(&self, ch: usize) -> (f32, f32) {
        let inv_std = 1.0 / (self.running_var[ch] + self.eps).sqrt();
        let mean = self.running_mean[ch];
        let scale = self.gamma.value.data()[ch] * inv_std;
        let shift = self.beta.value.data()[ch] - mean * scale;
        (scale, shift)
    }

    /// Applies the inference-mode transform in place over a `[n, c, h, w]`
    /// activation slice with `plane = h * w`. Shared by
    /// [`Layer::forward_into`] and the residual block's fused path; kept
    /// loop-for-loop identical to the `Phase::Eval` branch of
    /// [`Layer::forward`] so both produce bit-equal results.
    pub(crate) fn eval_inplace(&self, data: &mut [f32], n: usize, plane: usize) {
        let c = self.channels;
        for ch in 0..c {
            let (scale, shift) = self.eval_scale_shift(ch);
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for v in &mut data[base..base + plane] {
                    *v = *v * scale + shift;
                }
            }
        }
    }

    /// Removes channel `c` from all per-channel state. Channel-pruning
    /// surgery.
    ///
    /// # Panics
    ///
    /// Panics if out of range or only one channel remains.
    pub fn remove_channel(&mut self, c: usize) {
        assert!(c < self.channels, "channel {c} out of range");
        assert!(self.channels > 1, "cannot remove the last channel");
        let mut g = self.gamma.value.data().to_vec();
        let mut b = self.beta.value.data().to_vec();
        g.remove(c);
        b.remove(c);
        self.running_mean.remove(c);
        self.running_var.remove(c);
        self.channels -= 1;
        self.gamma = Param::new(Tensor::from_vec([self.channels], g));
        self.beta = Param::new(Tensor::from_vec([self.channels], b));
    }
}

impl Layer for BatchNorm2d {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!("batchnorm(c={})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, _cfg: &ExecConfig) -> Tensor {
        let (n, c, h, w) = input.shape().nchw();
        assert_eq!(c, self.channels, "{}: channel mismatch", self.name());
        let plane = h * w;
        let per_channel = n * plane;
        let mut out = input.clone();
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();

        match phase {
            Phase::Train => {
                let mut xhat = Tensor::zeros(input.shape().dims().to_vec());
                let mut inv_stds = vec![0.0f32; c];
                for ch in 0..c {
                    // Batch mean/var over (N, H, W).
                    let mut mean = 0.0f64;
                    for img in 0..n {
                        let base = (img * c + ch) * plane;
                        for v in &input.data()[base..base + plane] {
                            mean += *v as f64;
                        }
                    }
                    let mean = (mean / per_channel as f64) as f32;
                    let mut var = 0.0f64;
                    for img in 0..n {
                        let base = (img * c + ch) * plane;
                        for v in &input.data()[base..base + plane] {
                            var += ((*v - mean) as f64).powi(2);
                        }
                    }
                    let var = (var / per_channel as f64) as f32;
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ch] = inv_std;
                    for img in 0..n {
                        let base = (img * c + ch) * plane;
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mean) * inv_std;
                            xhat.data_mut()[i] = xh;
                            out.data_mut()[i] = gamma[ch] * xh + beta[ch];
                        }
                    }
                }
                self.cached_xhat = Some(xhat);
                self.cached_inv_std = Some(inv_stds);
            }
            Phase::Eval => {
                self.eval_inplace(out.data_mut(), n, plane);
            }
        }
        out
    }

    #[allow(clippy::needless_range_loop)]
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .take()
            .expect("backward without a Train-phase forward");
        let inv_stds = self.cached_inv_std.take().expect("missing inv_std cache");
        let (n, c, h, w) = grad_out.shape().nchw();
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut grad_in = Tensor::zeros(grad_out.shape().dims().to_vec());
        for ch in 0..c {
            let gamma = self.gamma.value.data()[ch];
            // Accumulate dgamma, dbeta and the two reduction terms.
            let mut dgamma = 0.0;
            let mut dbeta = 0.0;
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    dgamma += grad_out.data()[i] * xhat.data()[i];
                    dbeta += grad_out.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;
            // dX = (gamma/std) * (dY - mean(dY) - xhat * mean(dY*xhat)).
            let k = gamma * inv_stds[ch];
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    grad_in.data_mut()[i] =
                        k * (grad_out.data()[i] - dbeta / m - xhat.data()[i] * dgamma / m);
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        let (n, c, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        assert_eq!(c, self.channels, "{}: channel mismatch", self.name());
        out.copy_from_slice(input);
        self.eval_inplace(out, n, h * w);
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::BatchNorm {
                channels: self.channels,
            },
            // One multiply + one add per element, counted as one MAC.
            macs: elems as u64,
            weight_elems: 2 * self.channels,
            weight_nnz: 2 * self.channels,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: elems,
            output_shape: input_shape.to_vec(),
            scratch_elems: 0,
            parallel_grains: self.channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn train_output_is_normalised() {
        let mut bn = BatchNorm2d::new(3);
        let x = random([4, 3, 5, 5], 1);
        let y = bn.forward(&x, Phase::Train, &ExecConfig::default());
        // Per channel: mean ~0, var ~1 (gamma=1, beta=0).
        for ch in 0..3 {
            let mut vals = Vec::new();
            for img in 0..4 {
                let base = (img * 3 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ch} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        // Fresh layer: running mean 0, var 1 → eval is identity.
        let x = random([1, 2, 3, 3], 2);
        let y = bn.forward(&x, Phase::Eval, &ExecConfig::default());
        assert!(y.allclose(&x, 1e-4));
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Feed the same shifted batch many times: running mean → 3.
        let x = Tensor::full([8, 1, 4, 4], 3.0);
        for _ in 0..200 {
            let _ = bn.forward(&x, Phase::Train, &ExecConfig::default());
        }
        assert!((bn.running_mean[0] - 3.0).abs() < 1e-3);
        assert!(bn.running_var[0].abs() < 1e-3);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
        bn.beta.value.data_mut().copy_from_slice(&[0.1, -0.2]);
        let x = random([2, 2, 3, 3], 3);
        let cfg = ExecConfig::default();
        // Scalar loss: weighted sum so gradients are non-uniform.
        let weights = random([2, 2, 3, 3], 4);
        let y = bn.forward(&x, Phase::Train, &cfg);
        let loss0: f32 = (&y * &weights).sum();
        let _ = loss0;
        let dx = bn.backward(&weights);
        let eps = 1e-2;
        for &i in &[0usize, 9, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut bn_p = BatchNorm2d::new(2);
            bn_p.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
            bn_p.beta.value.data_mut().copy_from_slice(&[0.1, -0.2]);
            let lp: f32 = (&bn_p.forward(&xp, Phase::Train, &cfg) * &weights).sum();
            let lm: f32 = (&bn_p.forward(&xm, Phase::Train, &cfg) * &weights).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 3e-2,
                "dX[{i}]: fd={fd} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm2d::new(1);
        let x = random([2, 1, 2, 2], 5);
        let y = bn.forward(&x, Phase::Train, &ExecConfig::default());
        let ones = Tensor::ones(y.shape().dims().to_vec());
        bn.backward(&ones);
        // dbeta = sum(dY) = 8; dgamma = sum(xhat) ≈ 0 for ones upstream.
        assert!((bn.beta.grad.data()[0] - 8.0).abs() < 1e-4);
        assert!(bn.gamma.grad.data()[0].abs() < 1e-3);
    }

    #[test]
    fn remove_channel_surgery() {
        let mut bn = BatchNorm2d::new(3);
        bn.gamma.value.data_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
        bn.remove_channel(1);
        assert_eq!(bn.channels(), 2);
        assert_eq!(bn.gamma.value.data(), &[1.0, 3.0]);
        let y = bn.forward(
            &Tensor::zeros([1, 2, 2, 2]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
    }

    #[test]
    fn descriptor() {
        let bn = BatchNorm2d::new(16);
        let d = bn.descriptor(&[1, 16, 8, 8]);
        assert_eq!(d.macs, 16 * 64);
        assert_eq!(d.weight_elems, 32);
    }
}
