//! Elementwise activation layers.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{ExecConfig, Layer, Param, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{ExecConfig, Layer, Phase, ReLU};
/// use cnn_stack_tensor::Tensor;
///
/// let mut relu = ReLU::new();
/// let x = Tensor::from_vec([1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
/// let y = relu.forward(&x.reshape([1, 1, 2, 2]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
/// ```
#[derive(Debug, Default)]
pub struct ReLU {
    /// Cached pass-through mask (1 where input > 0).
    cached_mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU { cached_mask: None }
    }
}

impl Layer for ReLU {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        "relu".into()
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, _cfg: &ExecConfig) -> Tensor {
        if phase == Phase::Train {
            self.cached_mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .cached_mask
            .take()
            .expect("backward without a Train-phase forward");
        assert_eq!(mask.len(), grad_out.len(), "gradient shape mismatch");
        let mut grad = grad_out.clone();
        for (g, &pass) in grad.data_mut().iter_mut().zip(&mask) {
            if !pass {
                *g = 0.0;
            }
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        true
    }

    fn forward_into(
        &self,
        input: &[f32],
        _input_shape: &[usize],
        out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        for (o, &v) in out.iter_mut().zip(input) {
            *o = v.max(0.0);
        }
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Activation,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: elems,
            output_shape: input_shape.to_vec(),
            scratch_elems: 0,
            parallel_grains: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_negative_values() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-5.0, -0.1, 0.0, 7.0]);
        let y = relu.forward(&x, Phase::Eval, &ExecConfig::default());
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let _ = relu.forward(&x, Phase::Train, &ExecConfig::default());
        let g = Tensor::from_vec([1, 1, 1, 4], vec![10.0, 10.0, 10.0, 10.0]);
        let dx = relu.backward(&g);
        assert_eq!(dx.data(), &[0.0, 10.0, 0.0, 10.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // Subgradient convention: d relu(0) = 0.
        let mut relu = ReLU::new();
        let x = Tensor::zeros([1, 1, 1, 2]);
        let _ = relu.forward(&x, Phase::Train, &ExecConfig::default());
        let dx = relu.backward(&Tensor::ones([1, 1, 1, 2]));
        assert_eq!(dx.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "backward without")]
    fn backward_needs_forward() {
        let mut relu = ReLU::new();
        let _ = relu.backward(&Tensor::ones([1]));
    }

    #[test]
    fn descriptor_stateless() {
        let d = ReLU::new().descriptor(&[2, 3, 4, 4]);
        assert_eq!(d.weight_elems, 0);
        assert_eq!(d.input_elems, 96);
    }
}
