//! Static per-layer descriptors consumed by the memory accountant and the
//! `cnn-stack-hwsim` platform timing model.

use crate::layer::WeightFormat;
use cnn_stack_tensor::Conv2dGeometry;

/// What kind of computation a layer performs; carries the geometry the
/// timing model needs to price it.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerKind {
    /// Standard convolution (`groups == 1`).
    Conv {
        /// Spatial geometry.
        geom: Conv2dGeometry,
        /// Output channels.
        out_channels: usize,
    },
    /// Depthwise convolution (one filter per channel).
    DepthwiseConv {
        /// Spatial geometry (per channel).
        geom: Conv2dGeometry,
        /// Channel count (input == output).
        channels: usize,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Batch normalisation over channels.
    BatchNorm {
        /// Channel count.
        channels: usize,
    },
    /// Elementwise activation.
    Activation,
    /// Spatial pooling.
    Pool,
    /// Shape-only transformation (flatten, reshape).
    Reshape,
    /// Composite of sub-layers (e.g. a residual block); descriptors of the
    /// children are reported separately.
    Composite,
}

/// A static description of one layer's work at a given input shape.
///
/// `macs` counts multiply-accumulates in the *dense* formulation;
/// `weight_nnz` is the stored non-zero count, so the ratio exposes the
/// "expected speedup" of Fig. 1 while the timing model prices the *actual*
/// cost.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerDescriptor {
    /// Human-readable layer name.
    pub name: String,
    /// Kind and geometry.
    pub kind: LayerKind,
    /// Dense multiply-accumulate count for one input batch.
    pub macs: u64,
    /// Dense weight element count (0 for stateless layers).
    pub weight_elems: usize,
    /// Stored (non-zero) weight count; equals `weight_elems` when dense.
    pub weight_nnz: usize,
    /// Storage format of the weights.
    pub format: WeightFormat,
    /// Elements in the input activation tensor.
    pub input_elems: usize,
    /// Elements in the output activation tensor.
    pub output_elems: usize,
    /// Full output shape, for walking shapes through a network.
    pub output_shape: Vec<usize>,
    /// Extra elements of scratch the chosen algorithm allocates
    /// (the im2col matrix, padded-input copies, …).
    pub scratch_elems: usize,
    /// Units of outer-loop parallelism the layer exposes (output channels
    /// for convolutions, output rows for linear layers, 1 for layers the
    /// paper does not parallelise).
    pub parallel_grains: usize,
}

impl LayerDescriptor {
    /// Effective (non-zero) MACs after sparsity: `macs * nnz/elems`.
    /// This is the "expected" cost of Fig. 1's dashed line.
    pub fn effective_macs(&self) -> u64 {
        if self.weight_elems == 0 {
            return self.macs;
        }
        (self.macs as f64 * self.weight_nnz as f64 / self.weight_elems as f64).round() as u64
    }

    /// Weight sparsity in `[0, 1]` (0 for stateless layers).
    pub fn sparsity(&self) -> f64 {
        if self.weight_elems == 0 {
            0.0
        } else {
            1.0 - self.weight_nnz as f64 / self.weight_elems as f64
        }
    }

    /// Bytes of weight storage under the descriptor's format, using the
    /// same accounting as `cnn-stack-sparse::memory`.
    pub fn weight_bytes(&self) -> usize {
        match self.format {
            WeightFormat::Dense => self.weight_elems * 4,
            WeightFormat::Csr => {
                // CSR rows = parallel grains for conv/linear layers (one
                // row per output channel/feature).
                let rows = self.parallel_grains.max(1);
                self.weight_nnz * 8 + (rows + 1) * 8
            }
            // 2-bit codes (4 per byte) plus the two per-layer scales.
            WeightFormat::Ternary => self.weight_elems.div_ceil(4) + 8,
            // One byte per element plus the per-tensor scale.
            WeightFormat::Int8 => self.weight_elems + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_desc(nnz: usize) -> LayerDescriptor {
        LayerDescriptor {
            name: "conv".into(),
            kind: LayerKind::Conv {
                geom: Conv2dGeometry::new(3, 32, 32, 3, 3, 1, 1),
                out_channels: 64,
            },
            macs: 64 * 27 * 1024,
            weight_elems: 64 * 27,
            weight_nnz: nnz,
            format: WeightFormat::Dense,
            input_elems: 3 * 1024,
            output_elems: 64 * 1024,
            output_shape: vec![1, 64, 32, 32],
            scratch_elems: 0,
            parallel_grains: 64,
        }
    }

    #[test]
    fn effective_macs_scales_with_nnz() {
        let full = conv_desc(64 * 27);
        assert_eq!(full.effective_macs(), full.macs);
        let half = conv_desc(64 * 27 / 2);
        assert_eq!(half.effective_macs(), full.macs / 2);
    }

    #[test]
    fn sparsity_computation() {
        let d = conv_desc(64 * 27 / 4);
        assert!((d.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn weight_bytes_dense_vs_csr() {
        let mut d = conv_desc(64 * 27 / 2);
        assert_eq!(d.weight_bytes(), 64 * 27 * 4);
        d.format = WeightFormat::Csr;
        assert_eq!(d.weight_bytes(), (64 * 27 / 2) * 8 + 65 * 8);
        // At 50% sparsity, CSR costs more than dense — the paper's §V-D
        // punchline.
        assert!(d.weight_bytes() > 64 * 27 * 4);
    }

    #[test]
    fn stateless_layer_effective_macs() {
        let d = LayerDescriptor {
            name: "relu".into(),
            kind: LayerKind::Activation,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: 100,
            output_elems: 100,
            output_shape: vec![100],
            scratch_elems: 0,
            parallel_grains: 1,
        };
        assert_eq!(d.effective_macs(), 0);
        assert_eq!(d.sparsity(), 0.0);
        assert_eq!(d.weight_bytes(), 0);
    }
}
