//! The arena-backed inference engine.
//!
//! [`Network::forward`] allocates a fresh activation tensor per layer,
//! which is exactly the per-inference heap traffic the paper's embedded
//! targets cannot afford (§IV-B measures whole-network memory footprints
//! for this reason). This module compiles a network once into an
//! [`InferencePlan`] — every layer's output shape, its scratch
//! requirement, and whether its allocation-free kernel applies — and then
//! executes it through an [`InferenceSession`] that ping-pongs activations
//! between two pre-sized arena buffers, so steady-state inference performs
//! **zero** per-layer heap allocations.
//!
//! When every layer supports the arena path and the configuration asks
//! for more than one thread, the session switches to data-parallel batch
//! execution: the batch dimension is split into chunks, each chunk runs
//! the whole layer pipeline on its own arena pair with one thread, and a
//! persistent [`ThreadPool`] drives the chunks concurrently. Because each
//! output element is computed by exactly the same loop nest either way,
//! the result is bit-identical to the sequential path.
//!
//! # Example
//!
//! ```
//! use cnn_stack_nn::{
//!     Conv2d, ExecConfig, Flatten, InferencePlan, InferenceSession, Linear, Network, Phase, ReLU,
//! };
//! use cnn_stack_tensor::Tensor;
//!
//! let mut net = Network::new(vec![
//!     Box::new(Conv2d::new(3, 4, 3, 1, 1, 0)),
//!     Box::new(ReLU::new()),
//!     Box::new(Flatten::new()),
//!     Box::new(Linear::new(4 * 8 * 8, 10, 1)),
//! ])
//! .unwrap();
//! let cfg = ExecConfig::serial();
//! let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &cfg).unwrap();
//! assert_eq!(plan.output_shape(), &[2, 10]);
//! let mut session = InferenceSession::new(&mut net, plan).unwrap();
//! let y = session.run(&Tensor::zeros([2, 3, 8, 8])).unwrap();
//! assert_eq!(y.shape().dims(), &[2, 10]);
//! assert_eq!(session.profile().runs(), 1);
//! ```

use crate::error::Error;
use crate::layer::{ExecConfig, Layer, Phase};
use crate::network::Network;
use cnn_stack_parallel::ThreadPool;
use cnn_stack_tensor::Tensor;
use std::time::{Duration, Instant};

/// One compiled top-level layer: shapes, costs, and how the engine will
/// execute it.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Layer name, as reported by [`Layer::name`].
    pub name: String,
    /// Activation shape entering the layer (full batch).
    pub input_shape: Vec<usize>,
    /// Activation shape leaving the layer (full batch).
    pub output_shape: Vec<usize>,
    /// Elements entering the layer.
    pub input_elems: usize,
    /// Elements leaving the layer.
    pub output_elems: usize,
    /// Scratch floats the arena kernel needs (0 when unsupported).
    pub scratch_elems: usize,
    /// Whether [`Layer::forward_into`] executes this step; `false` routes
    /// it through the allocating [`Layer::forward`] fallback (e.g. the
    /// true Winograd transform).
    pub supported: bool,
    /// Dense multiply-accumulates for the step.
    pub macs: u64,
    /// Approximate bytes moved: activations in and out plus stored
    /// non-zero weights, at 4 bytes per element.
    pub bytes: u64,
}

/// A network compiled for one input shape and one [`ExecConfig`]:
/// per-layer shapes and costs plus the arena sizing, computed once so
/// that every subsequent [`InferenceSession::run`] is allocation-free.
#[derive(Clone, Debug)]
pub struct InferencePlan {
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
    cfg: ExecConfig,
    steps: Vec<PlanStep>,
    buf_elems: usize,
    scratch_elems: usize,
    all_supported: bool,
}

impl InferencePlan {
    /// Walks the network's [`Layer::descriptor`] chain at `input_shape`,
    /// recording every layer's output shape, scratch requirement, and
    /// arena eligibility under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `cfg.threads == 0` or the
    /// input shape is empty / has a zero extent.
    pub fn compile(net: &Network, input_shape: &[usize], cfg: &ExecConfig) -> Result<Self, Error> {
        if cfg.threads == 0 {
            return Err(Error::InvalidConfig(
                "at least one thread required".to_string(),
            ));
        }
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(Error::InvalidConfig(format!(
                "input shape {input_shape:?} must be non-empty with non-zero extents"
            )));
        }
        let mut shape = input_shape.to_vec();
        let mut steps = Vec::with_capacity(net.len());
        let mut buf_elems = 0;
        let mut scratch_elems = 0;
        let mut all_supported = true;
        for layer in net.layers() {
            // Catch wrong-rank inputs before `descriptor` would index
            // past the shape — compile errors, never panics.
            if shape.len() < layer.min_input_rank() {
                return Err(Error::InvalidConfig(format!(
                    "layer {} needs a rank-{} input, got shape {shape:?}",
                    layer.name(),
                    layer.min_input_rank()
                )));
            }
            let d = layer.descriptor(&shape);
            let supported = layer.forward_into_supported(cfg);
            let scratch = if supported {
                layer.forward_scratch_elems(&shape, cfg)
            } else {
                0
            };
            all_supported &= supported;
            buf_elems = buf_elems.max(d.output_elems);
            scratch_elems = scratch_elems.max(scratch);
            steps.push(PlanStep {
                name: d.name,
                input_shape: shape.clone(),
                output_shape: d.output_shape.clone(),
                input_elems: d.input_elems,
                output_elems: d.output_elems,
                scratch_elems: scratch,
                supported,
                macs: d.macs,
                bytes: 4 * (d.input_elems + d.output_elems + d.weight_nnz) as u64,
            });
            shape = d.output_shape;
        }
        Ok(InferencePlan {
            input_shape: input_shape.to_vec(),
            output_shape: shape,
            cfg: *cfg,
            steps,
            buf_elems,
            scratch_elems,
            all_supported,
        })
    }

    /// The input shape the plan was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The network output shape at the compiled input shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// The execution configuration baked into the plan.
    pub fn cfg(&self) -> &ExecConfig {
        &self.cfg
    }

    /// The compiled steps, one per top-level layer.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Elements of each of the two ping-pong arena buffers (the largest
    /// single-layer output).
    pub fn buf_elems(&self) -> usize {
        self.buf_elems
    }

    /// Elements of the shared scratch buffer (the largest single-layer
    /// scratch requirement).
    pub fn scratch_elems(&self) -> usize {
        self.scratch_elems
    }

    /// Whether every step runs through the allocation-free arena path.
    pub fn fully_supported(&self) -> bool {
        self.all_supported
    }
}

/// Cumulative per-layer execution counters, one row per plan step.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Layer name.
    pub name: String,
    /// Cumulative wall-clock time across runs (sequential mode only;
    /// batch-parallel runs overlap layers across threads, so per-layer
    /// times are not attributable and only the profile total advances).
    pub time: Duration,
    /// Cumulative dense multiply-accumulates.
    pub macs: u64,
    /// Cumulative approximate bytes moved.
    pub bytes: u64,
}

/// Per-layer cumulative time/MAC/byte counters carried by an
/// [`InferenceSession`] across runs. Supersedes
/// [`Network::forward_timed`] for repeated measurement.
#[derive(Clone, Debug)]
pub struct SessionProfile {
    rows: Vec<ProfileRow>,
    runs: u64,
    total_time: Duration,
}

impl SessionProfile {
    fn new(steps: &[PlanStep]) -> Self {
        SessionProfile {
            rows: steps
                .iter()
                .map(|s| ProfileRow {
                    name: s.name.clone(),
                    time: Duration::ZERO,
                    macs: 0,
                    bytes: 0,
                })
                .collect(),
            runs: 0,
            total_time: Duration::ZERO,
        }
    }

    /// One row per top-level plan step, in execution order.
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total wall-clock time across all runs.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// Per-layer `(name, mean time)` across runs — the drop-in shape of
    /// the old `forward_timed` output.
    pub fn mean_layer_times(&self) -> Vec<(String, Duration)> {
        let runs = self.runs.max(1) as u32;
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.time / runs))
            .collect()
    }
}

/// Which buffer currently holds the live activation.
#[derive(Clone, Copy)]
enum Loc {
    Input,
    A,
    B,
}

/// A per-chunk view of the plan: the same steps re-shaped to the chunk's
/// batch size, plus the chunk's own arena buffers.
#[derive(Debug)]
struct ChunkStep {
    input_shape: Vec<usize>,
    input_elems: usize,
    output_elems: usize,
    supported: bool,
}

#[derive(Debug)]
struct ChunkArena {
    /// Images in this chunk.
    len: usize,
    steps: Vec<ChunkStep>,
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    scratch: Vec<f32>,
}

/// Executes an [`InferencePlan`] against its network with pre-allocated
/// activation arenas; see the [module docs](crate::engine).
#[derive(Debug)]
pub struct InferenceSession<'n> {
    net: &'n mut Network,
    plan: InferencePlan,
    chunks: Vec<ChunkArena>,
    pool: Option<ThreadPool>,
    profile: SessionProfile,
}

impl<'n> InferenceSession<'n> {
    /// Binds a compiled plan to its network, allocating every buffer the
    /// session will ever need (arenas, scratch, profile rows, worker
    /// pool), so that [`run_into`](Self::run_into) is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the plan's step count does not
    /// match the network's layer count (the plan was compiled against a
    /// different network).
    pub fn new(net: &'n mut Network, plan: InferencePlan) -> Result<Self, Error> {
        if plan.steps.len() != net.len() {
            return Err(Error::InvalidConfig(format!(
                "plan has {} steps but the network has {} layers",
                plan.steps.len(),
                net.len()
            )));
        }
        let n = plan.input_shape[0];
        let chunk_count = if plan.all_supported && plan.cfg.threads > 1 && n > 1 {
            plan.cfg.threads.min(n)
        } else {
            1
        };
        let base = n / chunk_count;
        let extra = n % chunk_count;
        let mut chunks = Vec::with_capacity(chunk_count);
        for c in 0..chunk_count {
            let m = base + usize::from(c < extra);
            let mut steps = Vec::with_capacity(plan.steps.len());
            let mut buf_elems = 0;
            let mut scratch_elems = 0;
            for (i, ps) in plan.steps.iter().enumerate() {
                let mut input_shape = ps.input_shape.clone();
                input_shape[0] = m;
                let input_elems = ps.input_elems / n * m;
                let output_elems = ps.output_elems / n * m;
                buf_elems = buf_elems.max(output_elems);
                if ps.supported {
                    scratch_elems = scratch_elems
                        .max(net.layers()[i].forward_scratch_elems(&input_shape, &plan.cfg));
                }
                steps.push(ChunkStep {
                    input_shape,
                    input_elems,
                    output_elems,
                    supported: ps.supported,
                });
            }
            chunks.push(ChunkArena {
                len: m,
                steps,
                buf_a: vec![0.0; buf_elems],
                buf_b: vec![0.0; buf_elems],
                scratch: vec![0.0; scratch_elems],
            });
        }
        let pool = (chunk_count > 1).then(|| ThreadPool::new(chunk_count));
        let profile = SessionProfile::new(&plan.steps);
        Ok(InferenceSession {
            net,
            plan,
            chunks,
            pool,
            profile,
        })
    }

    /// The compiled plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// Cumulative execution counters.
    pub fn profile(&self) -> &SessionProfile {
        &self.profile
    }

    /// Resets the cumulative counters (e.g. after warm-up runs).
    pub fn reset_profile(&mut self) {
        for row in &mut self.profile.rows {
            row.time = Duration::ZERO;
            row.macs = 0;
            row.bytes = 0;
        }
        self.profile.runs = 0;
        self.profile.total_time = Duration::ZERO;
    }

    /// Runs one inference, allocating only the output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `input` does not match the
    /// plan's compiled input shape.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor, Error> {
        let mut out = Tensor::zeros(self.plan.output_shape.clone());
        self.run_into(input, &mut out)?;
        Ok(out)
    }

    /// Runs one inference into a caller-provided output tensor with zero
    /// heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `input` or `out` does not
    /// match the plan's compiled input/output shape.
    pub fn run_into(&mut self, input: &Tensor, out: &mut Tensor) -> Result<(), Error> {
        if input.shape().dims() != self.plan.input_shape {
            return Err(Error::ShapeMismatch {
                expected: self.plan.input_shape.clone(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if out.shape().dims() != self.plan.output_shape {
            return Err(Error::ShapeMismatch {
                expected: self.plan.output_shape.clone(),
                actual: out.shape().dims().to_vec(),
            });
        }
        let start = Instant::now();
        if self.chunks.len() == 1 {
            let chunk = &mut self.chunks[0];
            run_steps_mixed(
                self.net.layers_mut(),
                chunk,
                input.data(),
                out.data_mut(),
                &self.plan.cfg,
                &mut self.profile.rows,
            );
        } else {
            let n = self.plan.input_shape[0];
            let in_per_image = self.plan.steps[0].input_elems / n;
            let out_per_image = self.plan.steps.last().expect("non-empty plan").output_elems / n;
            let chunk_cfg = ExecConfig {
                threads: 1,
                ..self.plan.cfg
            };
            let layers: &[Box<dyn Layer>] = self.net.layers();
            let mut in_rest = input.data();
            let mut out_rest = out.data_mut();
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                Vec::with_capacity(self.chunks.len());
            for chunk in self.chunks.iter_mut() {
                let (in_c, rest) = in_rest.split_at(chunk.len * in_per_image);
                in_rest = rest;
                let (out_c, rest) = out_rest.split_at_mut(chunk.len * out_per_image);
                out_rest = rest;
                tasks.push(Box::new(move || {
                    run_steps_supported(layers, chunk, in_c, out_c, &chunk_cfg);
                }));
            }
            self.pool
                .as_ref()
                .expect("parallel sessions own a pool")
                .scope(tasks);
        }
        self.profile.total_time += start.elapsed();
        self.profile.runs += 1;
        for (row, step) in self.profile.rows.iter_mut().zip(&self.plan.steps) {
            row.macs += step.macs;
            row.bytes += step.bytes;
        }
        Ok(())
    }
}

/// Sequential execution of every step over one arena pair, timing each
/// step and routing unsupported steps through the allocating
/// [`Layer::forward`] fallback.
fn run_steps_mixed(
    layers: &mut [Box<dyn Layer>],
    chunk: &mut ChunkArena,
    input: &[f32],
    out: &mut [f32],
    cfg: &ExecConfig,
    rows: &mut [ProfileRow],
) {
    let last = chunk.steps.len() - 1;
    let mut src = Loc::Input;
    let ChunkArena {
        steps,
        buf_a,
        buf_b,
        scratch,
        ..
    } = chunk;
    for (i, step) in steps.iter().enumerate() {
        let started = Instant::now();
        let (src_slice, dst_slice): (&[f32], &mut [f32]) = match (src, i == last) {
            (Loc::Input, true) => (&input[..step.input_elems], &mut out[..]),
            (Loc::Input, false) => (&input[..step.input_elems], &mut buf_a[..step.output_elems]),
            (Loc::A, true) => (&buf_a[..step.input_elems], &mut out[..]),
            (Loc::A, false) => (&buf_a[..step.input_elems], &mut buf_b[..step.output_elems]),
            (Loc::B, true) => (&buf_b[..step.input_elems], &mut out[..]),
            (Loc::B, false) => (&buf_b[..step.input_elems], &mut buf_a[..step.output_elems]),
        };
        if step.supported {
            layers[i].forward_into(src_slice, &step.input_shape, dst_slice, scratch, cfg);
        } else {
            let x = Tensor::from_vec(step.input_shape.clone(), src_slice.to_vec());
            let y = layers[i].forward(&x, Phase::Eval, cfg);
            dst_slice.copy_from_slice(y.data());
        }
        rows[i].time += started.elapsed();
        src = match (src, i == last) {
            (_, true) => src,
            (Loc::Input | Loc::B, false) => Loc::A,
            (Loc::A, false) => Loc::B,
        };
    }
}

/// Allocation-free execution of an all-supported step list over one
/// chunk's arena pair (the batch-parallel worker body).
fn run_steps_supported(
    layers: &[Box<dyn Layer>],
    chunk: &mut ChunkArena,
    input: &[f32],
    out: &mut [f32],
    cfg: &ExecConfig,
) {
    let last = chunk.steps.len() - 1;
    let mut src = Loc::Input;
    let ChunkArena {
        steps,
        buf_a,
        buf_b,
        scratch,
        ..
    } = chunk;
    for (i, step) in steps.iter().enumerate() {
        debug_assert!(step.supported, "parallel chunks require full support");
        let (src_slice, dst_slice): (&[f32], &mut [f32]) = match (src, i == last) {
            (Loc::Input, true) => (&input[..step.input_elems], &mut out[..]),
            (Loc::Input, false) => (&input[..step.input_elems], &mut buf_a[..step.output_elems]),
            (Loc::A, true) => (&buf_a[..step.input_elems], &mut out[..]),
            (Loc::A, false) => (&buf_a[..step.input_elems], &mut buf_b[..step.output_elems]),
            (Loc::B, true) => (&buf_b[..step.input_elems], &mut out[..]),
            (Loc::B, false) => (&buf_b[..step.input_elems], &mut buf_a[..step.output_elems]),
        };
        layers[i].forward_into(src_slice, &step.input_shape, dst_slice, scratch, cfg);
        src = match (src, i == last) {
            (_, true) => src,
            (Loc::Input | Loc::B, false) => Loc::A,
            (Loc::A, false) => Loc::B,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvAlgorithm, WeightFormat};
    use crate::network::set_network_format;
    use crate::{Conv2d, Flatten, Linear, MaxPool2d, ReLU, ResidualBlock};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn conv_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 6, 3, 1, 1, 1)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(6, 4, 3, 1, 1, 2)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 4 * 4, 5, 3)),
        ])
        .unwrap()
    }

    fn resblock_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, 4)),
            Box::new(ResidualBlock::new(8, 16, 2, 5)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(16 * 4 * 4, 3, 6)),
        ])
        .unwrap()
    }

    #[test]
    fn plan_walks_shapes_and_sizes_arena() {
        let net = conv_net();
        let cfg = ExecConfig::serial();
        let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &cfg).unwrap();
        assert_eq!(plan.steps().len(), 7);
        assert_eq!(plan.output_shape(), &[2, 5]);
        assert_eq!(plan.steps()[0].output_shape, vec![2, 6, 8, 8]);
        // Largest activation: the first conv output, 2*6*8*8.
        assert_eq!(plan.buf_elems(), 2 * 6 * 8 * 8);
        assert!(plan.fully_supported());
        // Direct convolutions need no scratch.
        assert_eq!(plan.scratch_elems(), 0);
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        let net = conv_net();
        assert!(matches!(
            InferencePlan::compile(&net, &[], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            InferencePlan::compile(&net, &[0, 3, 8, 8], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
        let zero_threads = ExecConfig {
            threads: 0,
            ..ExecConfig::serial()
        };
        assert!(matches!(
            InferencePlan::compile(&net, &[1, 3, 8, 8], &zero_threads),
            Err(Error::InvalidConfig(_))
        ));
        // Wrong-rank inputs error instead of panicking inside a layer's
        // descriptor indexing.
        assert!(matches!(
            InferencePlan::compile(&net, &[3, 8, 8], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn plan_im2col_sizes_scratch() {
        let net = conv_net();
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        };
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &cfg).unwrap();
        // First conv: patch 3*3*3=27, 64 positions -> 1728 floats.
        assert_eq!(plan.scratch_elems(), 27 * 64);
    }

    #[test]
    fn session_bit_matches_forward_across_configs() {
        let x = random([3, 3, 8, 8], 7);
        for algo in [ConvAlgorithm::Direct, ConvAlgorithm::Im2col] {
            for format in [WeightFormat::Dense, WeightFormat::Csr] {
                for threads in [1, 4] {
                    let mut net = conv_net();
                    set_network_format(&mut net, format);
                    let cfg = ExecConfig {
                        threads,
                        conv_algo: algo,
                        ..ExecConfig::serial()
                    };
                    let expected = net.forward(&x, Phase::Eval, &cfg);
                    let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
                    let mut session = InferenceSession::new(&mut net, plan).unwrap();
                    let got = session.run(&x).unwrap();
                    assert_eq!(
                        got.data(),
                        expected.data(),
                        "mismatch for {algo:?}/{format:?}/{threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn session_bit_matches_forward_with_residual_blocks() {
        let x = random([2, 3, 8, 8], 9);
        for threads in [1, 3] {
            let mut net = resblock_net();
            let cfg = ExecConfig {
                threads,
                ..ExecConfig::serial()
            };
            let expected = net.forward(&x, Phase::Eval, &cfg);
            let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
            let mut session = InferenceSession::new(&mut net, plan).unwrap();
            let got = session.run(&x).unwrap();
            assert_eq!(got.data(), expected.data(), "threads={threads}");
        }
    }

    #[test]
    fn winograd_layers_fall_back_and_still_match() {
        let x = random([2, 3, 8, 8], 11);
        let mut net = conv_net();
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Winograd,
            ..ExecConfig::serial()
        };
        let expected = net.forward(&x, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        assert!(!plan.fully_supported());
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let got = session.run(&x).unwrap();
        assert_eq!(got.data(), expected.data());
    }

    #[test]
    fn run_rejects_mismatched_shapes() {
        let mut net = conv_net();
        let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &ExecConfig::serial()).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        assert!(matches!(
            session.run(&Tensor::zeros([1, 3, 8, 8])),
            Err(Error::ShapeMismatch { .. })
        ));
        let mut wrong_out = Tensor::zeros([2, 4]);
        assert!(matches!(
            session.run_into(&Tensor::zeros([2, 3, 8, 8]), &mut wrong_out),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn session_rejects_plan_for_other_network() {
        let net = conv_net();
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        let mut other = resblock_net();
        assert!(matches!(
            InferenceSession::new(&mut other, plan),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn profile_accumulates_across_runs() {
        let mut net = conv_net();
        let x = random([1, 3, 8, 8], 13);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &ExecConfig::serial()).unwrap();
        let step_macs: Vec<u64> = plan.steps().iter().map(|s| s.macs).collect();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        session.run(&x).unwrap();
        session.run(&x).unwrap();
        let profile = session.profile();
        assert_eq!(profile.runs(), 2);
        assert_eq!(profile.rows().len(), 7);
        for (row, macs) in profile.rows().iter().zip(step_macs) {
            assert_eq!(row.macs, 2 * macs);
            assert!(row.bytes > 0);
        }
        assert_eq!(profile.mean_layer_times().len(), 7);
        session.reset_profile();
        assert_eq!(session.profile().runs(), 0);
        assert_eq!(session.profile().rows()[0].macs, 0);
    }

    #[test]
    fn run_into_reuses_caller_output() {
        let mut net = conv_net();
        let x = random([2, 3, 8, 8], 17);
        let cfg = ExecConfig::serial();
        let expected = net.forward(&x, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let mut out = Tensor::from_vec([2, 5], vec![f32::NAN; 10]);
        session.run_into(&x, &mut out).unwrap();
        assert_eq!(out.data(), expected.data());
    }
}
