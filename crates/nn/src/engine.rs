//! The arena-backed inference engine.
//!
//! [`Network::forward`] allocates a fresh activation tensor per layer,
//! which is exactly the per-inference heap traffic the paper's embedded
//! targets cannot afford (§IV-B measures whole-network memory footprints
//! for this reason). This module compiles a network once into an
//! [`InferencePlan`] — every layer's output shape, its scratch
//! requirement, and whether its allocation-free kernel applies — and then
//! executes it through an [`InferenceSession`] over one pre-sized arena,
//! so steady-state inference performs **zero** per-layer heap
//! allocations. By default the arena is laid out by the liveness
//! colouring in [`crate::liveness`]: each step's output and workspace
//! get offsets such that buffers with overlapping live intervals never
//! share bytes while everything else does, which roughly halves the
//! peak footprint of deep sequential nets against the legacy two-buffer
//! ping-pong layout ([`crate::layer::ArenaStrategy::PingPong`], kept as
//! a bit-exact baseline).
//!
//! When every layer supports the arena path and the configuration asks
//! for more than one thread, the session switches to data-parallel batch
//! execution: the batch dimension is split into chunks, each chunk runs
//! the whole layer pipeline on its own arena pair with one thread, and a
//! persistent [`ThreadPool`] drives the chunks concurrently. Because each
//! output element is computed by exactly the same loop nest either way,
//! the result is bit-identical to the sequential path.
//!
//! # Guarded execution
//!
//! Every kernel invocation runs under `catch_unwind`: a panicking kernel
//! cannot kill the process or poison the worker pool. With a
//! [`GuardConfig`] above `Off` the session additionally scans each
//! layer's output for non-finite values at the layer boundary, naming
//! the first offending layer in a [`GuardReport`]. When a guard trips or
//! a kernel panics inside a step with a safer alternative, the session
//! *demotes* that step (Winograd→im2col, CSR→dense), records a
//! [`DemotionRecord`] in the profile's [`HealthReport`], and re-runs —
//! one bad kernel degrades throughput instead of killing the process.
//! Transient [`PoolError`]s are retried up to a bounded attempt budget.
//!
//! # Example
//!
//! ```
//! use cnn_stack_nn::{
//!     Conv2d, ExecConfig, Flatten, InferencePlan, InferenceSession, Linear, Network, Phase, ReLU,
//! };
//! use cnn_stack_tensor::Tensor;
//!
//! let mut net = Network::new(vec![
//!     Box::new(Conv2d::new(3, 4, 3, 1, 1, 0)),
//!     Box::new(ReLU::new()),
//!     Box::new(Flatten::new()),
//!     Box::new(Linear::new(4 * 8 * 8, 10, 1)),
//! ])
//! .unwrap();
//! let cfg = ExecConfig::serial();
//! let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &cfg).unwrap();
//! assert_eq!(plan.output_shape(), &[2, 10]);
//! let mut session = InferenceSession::new(&mut net, plan).unwrap();
//! let y = session.run(&Tensor::zeros([2, 3, 8, 8])).unwrap();
//! assert_eq!(y.shape().dims(), &[2, 10]);
//! assert_eq!(session.profile().runs(), 1);
//! assert!(session.health().is_clean());
//! ```

use crate::error::{Error, PlanError};
use crate::guard::{
    scan_non_finite, BudgetBreachRecord, DemotionAction, DemotionReason, DemotionRecord, FaultPlan,
    GuardConfig, GuardReport, GuardViolation, HealthReport,
};
use crate::layer::{ArenaStrategy, ConvAlgorithm, ExecConfig, Layer, Phase, WeightFormat};
use crate::liveness::{ArenaLayout, MemoryFootprint, StepExtent};
use crate::network::Network;
use cnn_stack_obs::{Metric, NameId, Observer};
use cnn_stack_parallel::{panic_message, PoolError, ThreadPool};
use cnn_stack_tensor::{GemmAlgorithm, GemmPlan, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded attempt budget per `run_into` call: the first attempt plus up
/// to three recoveries (demotions or pool retries).
const MAX_ATTEMPTS: u32 = 4;

/// One compiled top-level layer: shapes, costs, and how the engine will
/// execute it.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Layer name, as reported by [`Layer::name`] (fused steps append
    /// the absorbed layers, e.g. `"conv3x3(3->8)/s1 + bn + relu"`).
    pub name: String,
    /// Index of the step's *primary* network layer — the one whose
    /// kernel executes. [`InferencePlan::compile`] maps step `i` to
    /// layer `i`; the fold-and-fuse pass produces fewer steps than
    /// layers, so the mapping is explicit.
    pub layer: usize,
    /// Consecutive network layers this step covers, starting at
    /// [`layer`](PlanStep::layer) (1 for an unfused step; >1 when
    /// following identity-BN/ReLU layers were absorbed into this
    /// kernel). The spans of a plan's steps tile the network exactly.
    pub span: usize,
    /// Effective execution configuration for this step. Uniform (the
    /// plan's global config) under [`InferencePlan::compile`]; the
    /// algorithm-selection pass sets it per step.
    pub cfg: ExecConfig,
    /// Activation shape entering the layer (full batch).
    pub input_shape: Vec<usize>,
    /// Activation shape leaving the layer (full batch).
    pub output_shape: Vec<usize>,
    /// Elements entering the layer.
    pub input_elems: usize,
    /// Elements leaving the layer.
    pub output_elems: usize,
    /// Conservative scratch floats the arena kernel may need on any
    /// path, including cold ones such as repacking dropped weight
    /// panels (0 when unsupported). Sizes the legacy ping-pong scratch
    /// region.
    pub scratch_elems: usize,
    /// Steady-state workspace floats the kernel needs once `prepare()`
    /// has cached its panels (0 when unsupported). The liveness
    /// colouring sizes arena slots with this; for packed VGG-scale
    /// convolutions it is far below
    /// [`scratch_elems`](PlanStep::scratch_elems).
    pub workspace_elems: usize,
    /// Whether [`Layer::forward_into`] executes this step; `false` routes
    /// it through the allocating [`Layer::forward`] fallback (e.g. the
    /// true Winograd transform).
    pub supported: bool,
    /// Blocking plan of the step's packed GEMM, when the step routes
    /// through the packed engine under the compiled configuration
    /// (conv-im2col and linear layers with dense weights).
    pub gemm: Option<GemmPlan>,
    /// Dense multiply-accumulates for the step.
    pub macs: u64,
    /// Approximate bytes moved: activations in and out plus stored
    /// non-zero weights, at 4 bytes per element.
    pub bytes: u64,
}

/// A network compiled for one input shape and one [`ExecConfig`]:
/// per-layer shapes and costs plus the arena sizing, computed once so
/// that every subsequent [`InferenceSession::run`] is allocation-free.
#[derive(Clone, Debug)]
pub struct InferencePlan {
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
    cfg: ExecConfig,
    steps: Vec<PlanStep>,
    buf_elems: usize,
    scratch_elems: usize,
    all_supported: bool,
}

impl InferencePlan {
    /// Walks the network's [`Layer::descriptor`] chain at `input_shape`,
    /// recording every layer's output shape, scratch requirement, and
    /// arena eligibility under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `cfg.threads == 0` or the
    /// input shape is empty / has a zero extent.
    pub fn compile(net: &Network, input_shape: &[usize], cfg: &ExecConfig) -> Result<Self, Error> {
        if cfg.threads == 0 {
            return Err(Error::InvalidConfig(
                "at least one thread required".to_string(),
            ));
        }
        if input_shape.is_empty() || input_shape.contains(&0) {
            return Err(Error::InvalidConfig(format!(
                "input shape {input_shape:?} must be non-empty with non-zero extents"
            )));
        }
        let mut shape = input_shape.to_vec();
        let mut steps = Vec::with_capacity(net.len());
        for (li, layer) in net.layers().iter().enumerate() {
            let step = compile_step(layer.as_ref(), li, &shape, cfg)?;
            shape = step.output_shape.clone();
            steps.push(step);
        }
        let plan = Self::from_parts(input_shape.to_vec(), *cfg, steps);
        // A global-mode compile has no per-layer algorithm freedom, so
        // the budget is a straight admission check: this exact plan
        // either fits or nothing does.
        if let Some(budget) = cfg.plan_budget {
            let peak = plan.strategy_peak_bytes();
            if peak > budget {
                return Err(Error::Plan(PlanError::BudgetInfeasible {
                    budget_bytes: budget,
                    min_feasible_bytes: peak,
                }));
            }
        }
        Ok(plan)
    }

    /// Assembles a plan from pre-built steps, re-deriving the arena
    /// sizing. Used by the pass compiler (`passes.rs`), whose steps may
    /// span several layers and carry per-step configurations.
    pub(crate) fn from_parts(
        input_shape: Vec<usize>,
        cfg: ExecConfig,
        steps: Vec<PlanStep>,
    ) -> Self {
        let output_shape = steps
            .last()
            .map(|s| s.output_shape.clone())
            .unwrap_or_else(|| input_shape.clone());
        let buf_elems = steps.iter().map(|s| s.output_elems).max().unwrap_or(0);
        let scratch_elems = steps.iter().map(|s| s.scratch_elems).max().unwrap_or(0);
        let all_supported = steps.iter().all(|s| s.supported);
        InferencePlan {
            input_shape,
            output_shape,
            cfg,
            steps,
            buf_elems,
            scratch_elems,
            all_supported,
        }
    }

    /// The input shape the plan was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The network output shape at the compiled input shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// The execution configuration baked into the plan.
    pub fn cfg(&self) -> &ExecConfig {
        &self.cfg
    }

    /// The compiled steps, one per top-level layer.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Elements of each of the two ping-pong arena buffers (the largest
    /// single-layer output).
    pub fn buf_elems(&self) -> usize {
        self.buf_elems
    }

    /// Elements of the shared scratch buffer (the largest single-layer
    /// scratch requirement).
    pub fn scratch_elems(&self) -> usize {
        self.scratch_elems
    }

    /// Whether every step runs through the allocation-free arena path.
    pub fn fully_supported(&self) -> bool {
        self.all_supported
    }

    /// Per-step memory extents for the liveness planner, at the plan's
    /// full batch executed sequentially.
    pub(crate) fn step_extents(&self) -> Vec<StepExtent> {
        self.steps
            .iter()
            .map(|s| StepExtent {
                output_elems: s.output_elems,
                workspace_elems: s.workspace_elems,
                scratch_elems: s.scratch_elems,
            })
            .collect()
    }

    /// The plan's predicted arena requirement: the liveness-coloured
    /// peak and the counterfactual ping-pong footprint, for the full
    /// batch executed sequentially (batch-parallel sessions size one
    /// smaller arena per chunk; their exact total is reported by
    /// [`InferenceSession::arena_bytes`]).
    pub fn footprint(&self) -> MemoryFootprint {
        MemoryFootprint::of(&self.step_extents())
    }

    /// Peak bytes under the plan's own arena strategy — what a memory
    /// budget is compared against.
    pub fn strategy_peak_bytes(&self) -> usize {
        let fp = self.footprint();
        match self.cfg.arena {
            ArenaStrategy::Coloured => fp.peak_bytes,
            ArenaStrategy::PingPong => fp.naive_bytes,
        }
    }
}

/// Compiles one layer at one input shape under one configuration into an
/// unfused (`span == 1`) [`PlanStep`]. Shared by [`InferencePlan::compile`]
/// and the pass compiler.
pub(crate) fn compile_step(
    layer: &dyn Layer,
    layer_idx: usize,
    shape: &[usize],
    cfg: &ExecConfig,
) -> Result<PlanStep, Error> {
    // Catch wrong-rank inputs before `descriptor` would index past the
    // shape — compile errors, never panics.
    if shape.len() < layer.min_input_rank() {
        return Err(Error::InvalidConfig(format!(
            "layer {} needs a rank-{} input, got shape {shape:?}",
            layer.name(),
            layer.min_input_rank()
        )));
    }
    let d = layer.descriptor(shape);
    let supported = layer.forward_into_supported(cfg);
    let (scratch, workspace) = if supported {
        (
            layer.forward_scratch_elems(shape, cfg),
            layer.forward_workspace_elems(shape, cfg),
        )
    } else {
        (0, 0)
    };
    Ok(PlanStep {
        name: d.name,
        layer: layer_idx,
        span: 1,
        cfg: *cfg,
        input_shape: shape.to_vec(),
        output_shape: d.output_shape,
        input_elems: d.input_elems,
        output_elems: d.output_elems,
        scratch_elems: scratch,
        workspace_elems: workspace,
        supported,
        gemm: layer.gemm_plan(shape, cfg),
        macs: d.macs,
        bytes: 4 * (d.input_elems + d.output_elems + d.weight_nnz) as u64,
    })
}

/// Cumulative per-layer execution counters, one row per plan step.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Layer name.
    pub name: String,
    /// Cumulative wall-clock time across runs. Sequential runs time each
    /// step in-line; batch-parallel runs time every step inside each
    /// chunk worker and attribute the slowest chunk's time — the step's
    /// critical path — so rows advance in both modes.
    pub time: Duration,
    /// Cumulative dense multiply-accumulates.
    pub macs: u64,
    /// Cumulative approximate bytes moved.
    pub bytes: u64,
}

/// Per-layer cumulative time/MAC/byte counters carried by an
/// [`InferenceSession`] across runs. Supersedes
/// [`Network::forward_timed`] for repeated measurement.
#[derive(Clone, Debug)]
pub struct SessionProfile {
    rows: Vec<ProfileRow>,
    runs: u64,
    total_time: Duration,
    health: HealthReport,
}

impl SessionProfile {
    fn new(steps: &[PlanStep]) -> Self {
        SessionProfile {
            rows: steps
                .iter()
                .map(|s| ProfileRow {
                    name: s.name.clone(),
                    time: Duration::ZERO,
                    macs: 0,
                    bytes: 0,
                })
                .collect(),
            runs: 0,
            total_time: Duration::ZERO,
            health: HealthReport::default(),
        }
    }

    /// One row per top-level plan step, in execution order.
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total wall-clock time across all runs.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// What the session survived: guards tripped, panics contained,
    /// retries, and algorithm demotions, in order.
    pub fn health(&self) -> &HealthReport {
        &self.health
    }

    /// Per-layer `(name, mean time)` across runs — the drop-in shape of
    /// the old `forward_timed` output.
    pub fn mean_layer_times(&self) -> Vec<(String, Duration)> {
        let runs = self.runs.max(1) as u32;
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.time / runs))
            .collect()
    }
}

/// Per-step execution state the session can change at runtime (unlike
/// the immutable compiled [`PlanStep`]): the effective configuration
/// after demotions, its single-threaded chunk twin, and whether the
/// arena fast path applies under that configuration.
#[derive(Clone, Copy, Debug)]
struct ExecStep {
    cfg: ExecConfig,
    chunk_cfg: ExecConfig,
    supported: bool,
}

/// A per-chunk view of the plan: the same steps re-shaped to the chunk's
/// batch size, plus each step's slots in the chunk's arena.
#[derive(Debug)]
struct ChunkStep {
    layer: usize,
    input_shape: Vec<usize>,
    input_elems: usize,
    output_elems: usize,
    /// Arena offset of the step's output activation (unused for the
    /// final step, which writes straight to the caller's buffer).
    dst_off: usize,
    /// Arena offset of the step's workspace.
    ws_off: usize,
    /// Workspace floats reserved at `ws_off`.
    ws_len: usize,
}

#[derive(Debug)]
struct ChunkArena {
    /// Images in this chunk.
    len: usize,
    steps: Vec<ChunkStep>,
    /// The chunk's single arena: every intermediate activation and
    /// workspace lives at a liveness-assigned offset in here.
    arena: Vec<f32>,
    /// Elements the legacy ping-pong layout would have reserved for
    /// this chunk (the counterfactual behind the reuse gauge).
    naive_elems: usize,
    /// Wall-clock nanoseconds per step on the most recent attempt,
    /// written by the chunk worker so the session can attribute
    /// per-layer time (max over chunks) after a parallel run.
    step_ns: Vec<u64>,
}

/// Observability wiring carried by a session whose plan was compiled
/// with [`cnn_stack_obs::ObsLevel`] above `Off`: the observer plus the
/// pre-interned span names (one per plan step, in the same
/// `"name [span n] conv/gemm"` format the stack runner reports), so the
/// hot path never formats or allocates.
#[derive(Debug)]
struct ObsWiring {
    observer: Arc<Observer>,
    step_names: Vec<NameId>,
    run_name: NameId,
}

/// How one execution attempt failed; drives the recovery loop in
/// [`InferenceSession::run_into`].
enum RunFailure {
    Guard {
        step: usize,
        chunk: Option<usize>,
        violation: GuardViolation,
    },
    Panic {
        step: usize,
        message: String,
    },
    Pool(PoolError),
}

impl RunFailure {
    /// Pipeline position of the failure, for picking the earliest one
    /// when several chunks fail in the same parallel attempt.
    fn step(&self) -> usize {
        match self {
            RunFailure::Guard { step, .. } | RunFailure::Panic { step, .. } => *step,
            RunFailure::Pool(_) => usize::MAX,
        }
    }
}

/// Sizes per-chunk arenas for the current execution state: one chunk
/// (sequential) unless every step supports the arena path and the
/// configuration asks for batch parallelism.
fn build_chunks(net: &Network, plan: &InferencePlan, exec: &[ExecStep]) -> Vec<ChunkArena> {
    let n = plan.input_shape()[0];
    let all_supported = exec.iter().all(|e| e.supported);
    let chunk_count = if all_supported && plan.cfg().threads > 1 && n > 1 {
        plan.cfg().threads.min(n)
    } else {
        1
    };
    let base = n / chunk_count;
    let extra = n % chunk_count;
    let mut chunks = Vec::with_capacity(chunk_count);
    for c in 0..chunk_count {
        let m = base + usize::from(c < extra);
        let mut steps = Vec::with_capacity(plan.steps().len());
        let mut extents = Vec::with_capacity(plan.steps().len());
        for (i, ps) in plan.steps().iter().enumerate() {
            let mut input_shape = ps.input_shape.clone();
            input_shape[0] = m;
            let input_elems = ps.input_elems / n * m;
            let output_elems = ps.output_elems / n * m;
            // Workspace/scratch are re-derived at the chunk's batch
            // size and effective (possibly demoted) configuration —
            // the plan-level numbers cover the full batch only.
            let (workspace_elems, scratch_elems) = if exec[i].supported {
                let cfg = if chunk_count > 1 {
                    &exec[i].chunk_cfg
                } else {
                    &exec[i].cfg
                };
                let layer = net.layers()[ps.layer].as_ref();
                (
                    layer.forward_workspace_elems(&input_shape, cfg),
                    layer.forward_scratch_elems(&input_shape, cfg),
                )
            } else {
                (0, 0)
            };
            extents.push(StepExtent {
                output_elems,
                workspace_elems,
                scratch_elems,
            });
            steps.push(ChunkStep {
                layer: ps.layer,
                input_shape,
                input_elems,
                output_elems,
                dst_off: 0,
                ws_off: 0,
                ws_len: 0,
            });
        }
        let layout = match plan.cfg().arena {
            ArenaStrategy::Coloured => ArenaLayout::colour(&extents),
            ArenaStrategy::PingPong => ArenaLayout::ping_pong(&extents),
        };
        for (step, slot) in steps.iter_mut().zip(&layout.slots) {
            step.dst_off = slot.dst_off;
            step.ws_off = slot.ws_off;
            step.ws_len = slot.ws_elems;
        }
        chunks.push(ChunkArena {
            len: m,
            steps,
            arena: vec![0.0; layout.total_elems],
            naive_elems: layout.naive_elems,
            step_ns: vec![0; plan.steps().len()],
        });
    }
    chunks
}

/// Splits one chunk arena into a step's source / destination /
/// workspace views. `src`/`dst` are `None` at the pipeline boundaries
/// (the network input and final output live in caller buffers).
///
/// The liveness layout guarantees that the three ranges are pairwise
/// disjoint: the previous step's output, this step's output, and this
/// step's workspace are all live at this step, so the colouring placed
/// them in non-overlapping byte ranges (the ping-pong layout trivially
/// so). `debug_assert`s re-check that invariant here.
fn arena_views(
    arena: &mut [f32],
    src: Option<(usize, usize)>,
    dst: Option<(usize, usize)>,
    ws: (usize, usize),
) -> (Option<&[f32]>, Option<&mut [f32]>, &mut [f32]) {
    let ranges = [src.unwrap_or((0, 0)), dst.unwrap_or((0, 0)), ws];
    for (a, &(ao, al)) in ranges.iter().enumerate() {
        debug_assert!(ao + al <= arena.len(), "arena view out of bounds");
        for &(bo, bl) in ranges.iter().skip(a + 1) {
            debug_assert!(
                al == 0 || bl == 0 || ao + al <= bo || bo + bl <= ao,
                "arena views overlap: [{ao}, {})+[{bo}, {})",
                ao + al,
                bo + bl
            );
        }
    }
    let ptr = arena.as_mut_ptr();
    // SAFETY: every range is in-bounds and the mutable ranges (dst, ws)
    // are disjoint from each other and from src — asserted above and
    // guaranteed by the layout construction — so the raw reborrows
    // never alias.
    unsafe {
        (
            src.map(|(o, l)| std::slice::from_raw_parts(ptr.add(o), l)),
            dst.map(|(o, l)| std::slice::from_raw_parts_mut(ptr.add(o), l)),
            std::slice::from_raw_parts_mut(ptr.add(ws.0), ws.1),
        )
    }
}

/// Whether the layer (or any nested layer) runs a convolution that
/// responds to [`ExecConfig::conv_algo`] — the precondition for the
/// Winograd→im2col demotion lever to change anything.
fn layer_has_conv(layer: &mut dyn Layer) -> bool {
    let mut found = false;
    layer.visit_mut(&mut |l| {
        if l.as_any_mut().downcast_mut::<crate::Conv2d>().is_some() {
            found = true;
        }
    });
    found
}

/// Whether the layer (or any nested layer) currently evaluates CSR
/// sparse weights — the precondition for the CSR→dense demotion lever.
fn layer_has_csr(layer: &mut dyn Layer) -> bool {
    let mut found = false;
    layer.visit_mut(&mut |l| {
        if let Some(c) = l.as_any_mut().downcast_mut::<crate::Conv2d>() {
            if c.format() == WeightFormat::Csr {
                found = true;
            }
        } else if let Some(fc) = l.as_any_mut().downcast_mut::<crate::Linear>() {
            if fc.format() == WeightFormat::Csr {
                found = true;
            }
        }
    });
    found
}

/// Whether the layer (or any nested layer) would route through the
/// packed GEMM engine under `cfg` — the precondition for the
/// packed→blocked demotion lever to change anything.
fn layer_uses_packed_gemm(layer: &mut dyn Layer, cfg: &ExecConfig) -> bool {
    let mut found = false;
    layer.visit_mut(&mut |l| {
        if let Some(c) = l.as_any_mut().downcast_mut::<crate::Conv2d>() {
            found |= c.uses_packed_gemm(cfg);
        } else if let Some(fc) = l.as_any_mut().downcast_mut::<crate::Linear>() {
            found |= fc.uses_packed_gemm(cfg);
        }
    });
    found
}

/// Densifies every CSR weight in the layer (and nested layers).
fn densify_layer(layer: &mut dyn Layer) {
    layer.visit_mut(&mut |l| {
        if let Some(c) = l.as_any_mut().downcast_mut::<crate::Conv2d>() {
            if c.format() == WeightFormat::Csr {
                c.set_format(WeightFormat::Dense);
            }
        } else if let Some(fc) = l.as_any_mut().downcast_mut::<crate::Linear>() {
            if fc.format() == WeightFormat::Csr {
                fc.set_format(WeightFormat::Dense);
            }
        }
    });
}

/// Owned-or-borrowed network binding for a session.
///
/// The classic constructors ([`InferenceSession::new`] /
/// [`InferenceSession::with_guard`]) borrow the caller's network, which
/// ties the session to the caller's stack frame. A serving pool instead
/// needs sessions that *own* their network replica and live for the
/// lifetime of the server ([`InferenceSession::owned`]), so the binding
/// is an enum behind `Deref`/`DerefMut` and the engine body is agnostic.
#[derive(Debug)]
enum NetHandle<'n> {
    Borrowed(&'n mut Network),
    Owned(Box<Network>),
}

impl std::ops::Deref for NetHandle<'_> {
    type Target = Network;
    fn deref(&self) -> &Network {
        match self {
            NetHandle::Borrowed(n) => n,
            NetHandle::Owned(n) => n,
        }
    }
}

impl std::ops::DerefMut for NetHandle<'_> {
    fn deref_mut(&mut self) -> &mut Network {
        match self {
            NetHandle::Borrowed(n) => n,
            NetHandle::Owned(n) => n,
        }
    }
}

/// Executes an [`InferencePlan`] against its network with pre-allocated
/// activation arenas; see the [module docs](crate::engine).
#[derive(Debug)]
pub struct InferenceSession<'n> {
    net: NetHandle<'n>,
    plan: InferencePlan,
    exec: Vec<ExecStep>,
    chunks: Vec<ChunkArena>,
    pool: Option<ThreadPool>,
    profile: SessionProfile,
    guard: GuardConfig,
    /// Total `run_into` calls, successful or not — the run index faults
    /// and retries are keyed on (`profile.runs` counts only successes).
    invocations: u64,
    faults: FaultPlan,
    obs: Option<ObsWiring>,
}

impl<'n> InferenceSession<'n> {
    /// Binds a compiled plan to its network with guards off, allocating
    /// every buffer the session will ever need (arenas, scratch, profile
    /// rows, worker pool), so that [`run_into`](Self::run_into) is
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the plan's step spans do not
    /// tile the network's layers exactly (the plan was compiled against
    /// a different network).
    pub fn new(net: &'n mut Network, plan: InferencePlan) -> Result<Self, Error> {
        Self::with_guard(net, plan, GuardConfig::default())
    }

    /// Like [`new`](Self::new), with an explicit [`GuardConfig`].
    pub fn with_guard(
        net: &'n mut Network,
        plan: InferencePlan,
        guard: GuardConfig,
    ) -> Result<Self, Error> {
        Self::build(NetHandle::Borrowed(net), plan, guard)
    }

    /// Like [`with_guard`](Self::with_guard), but the session takes
    /// ownership of the network, so it has no borrowed lifetime
    /// (`InferenceSession<'static>`) and can be stored in long-lived
    /// structures — this is the constructor the serving session pool
    /// uses for its pre-warmed replicas. Recover the network with
    /// [`into_network`](Self::into_network).
    pub fn owned(
        net: Network,
        plan: InferencePlan,
        guard: GuardConfig,
    ) -> Result<InferenceSession<'static>, Error> {
        InferenceSession::build(NetHandle::Owned(Box::new(net)), plan, guard)
    }

    fn build(net: NetHandle<'n>, plan: InferencePlan, guard: GuardConfig) -> Result<Self, Error> {
        // The step spans must tile the network's layers exactly — a
        // plan compiled against a different network (or a stale fused
        // plan after the network changed) is rejected here.
        let covered: usize = plan.steps.iter().map(|s| s.span).sum();
        let mut at = 0usize;
        let contiguous = plan.steps.iter().all(|s| {
            let ok = s.layer == at;
            at += s.span;
            ok
        });
        if covered != net.len() || !contiguous {
            return Err(Error::InvalidConfig(format!(
                "plan covers {} layers ({} steps) but the network has {} layers",
                covered,
                plan.steps.len(),
                net.len()
            )));
        }
        let exec: Vec<ExecStep> = plan
            .steps
            .iter()
            .map(|s| ExecStep {
                cfg: s.cfg,
                chunk_cfg: ExecConfig {
                    threads: 1,
                    ..s.cfg
                },
                supported: s.supported,
            })
            .collect();
        let chunks = build_chunks(&net, &plan, &exec);
        let pool = (chunks.len() > 1).then(|| ThreadPool::new(chunks.len()));
        let profile = SessionProfile::new(&plan.steps);
        let obs = Observer::for_level(plan.cfg().observer).map(|observer| ObsWiring {
            run_name: observer.intern("run"),
            observer,
            step_names: Vec::new(),
        });
        let mut session = InferenceSession {
            net,
            plan,
            exec,
            chunks,
            pool,
            profile,
            guard,
            invocations: 0,
            faults: FaultPlan::default(),
            obs,
        };
        session.reprepare();
        session.sync_obs();
        Ok(session)
    }

    /// The compiled plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The bound network (borrowed or owned).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Recovers the network from a session built with
    /// [`owned`](Self::owned); `None` for borrowing sessions (the
    /// network lives with the caller).
    pub fn into_network(self) -> Option<Network> {
        match self.net {
            NetHandle::Owned(n) => Some(*n),
            NetHandle::Borrowed(_) => None,
        }
    }

    /// Exports every (nested) layer's prepacked weight-panel handle in
    /// `visit_mut` order — `None` entries for layers without a panel
    /// cache. A serving pool calls this once on a fully-prepared donor
    /// session and feeds the result to
    /// [`adopt_packed_panels`](Self::adopt_packed_panels) on each
    /// replica, so the whole pool shares one prepack per model
    /// (compile once, serve many).
    pub fn export_packed_panels(&mut self) -> Vec<Option<Arc<Vec<f32>>>> {
        crate::network::export_packed_panels(&mut self.net)
    }

    /// Installs panel handles exported from an identically-built donor
    /// session, returning how many layers accepted a shared handle.
    /// Layers whose expected panel length differs (a mismatched donor)
    /// keep their own cache, and the run path would fall back to
    /// scratch repacking regardless — adoption can degrade sharing but
    /// never correctness.
    pub fn adopt_packed_panels(&mut self, panels: &[Option<Arc<Vec<f32>>>]) -> usize {
        crate::network::adopt_packed_panels(&mut self.net, panels)
    }

    /// Exports every (nested) layer's quantised weight snapshot in
    /// `visit_mut` order — the quantised counterpart of
    /// [`export_packed_panels`](Self::export_packed_panels); the 2-bit
    /// code panels are `Arc`-shared across a pool the same way.
    pub fn export_quant_panels(&mut self) -> Vec<Option<crate::QuantPanels>> {
        crate::network::export_quant_panels(&mut self.net)
    }

    /// Installs quantised snapshots exported from an identically-built
    /// donor session, returning how many layers accepted one. Rejected
    /// snapshots leave the layer on its f32 fallback — adoption can
    /// degrade sharing, never correctness.
    pub fn adopt_quant_panels(&mut self, panels: &[Option<crate::QuantPanels>]) -> usize {
        crate::network::adopt_quant_panels(&mut self.net, panels)
    }

    /// The session's observer, when the plan was compiled with an
    /// [`cnn_stack_obs::ObsLevel`] above `Off` (see
    /// [`ExecConfig::observer`]). Snapshot its metrics or export its
    /// events after a run.
    pub fn observer(&self) -> Option<&Arc<Observer>> {
        self.obs.as_ref().map(|w| &w.observer)
    }

    /// Re-derives the observer-facing state from the current execution
    /// state: span names (step algorithms change under demotion), the
    /// arena-footprint gauge, and the worker pool's observer hook. Cold
    /// path — run at session build and after every rebuild.
    fn sync_obs(&mut self) {
        if self.obs.is_none() {
            return;
        }
        let arena_bytes = self.arena_bytes();
        let reuse_bytes = self.arena_reuse_bytes();
        let peak_bytes = self.plan.footprint().peak_bytes;
        let w = self.obs.as_mut().expect("checked above");
        let names: Vec<NameId> = self
            .plan
            .steps
            .iter()
            .zip(&self.exec)
            .map(|(s, e)| {
                let relu = if e.cfg.fused_relu { " +relu" } else { "" };
                w.observer.intern(&format!(
                    "{} [span {}] {:?}/{:?}{}",
                    s.name, s.span, e.cfg.conv_algo, e.cfg.gemm_algo, relu
                ))
            })
            .collect();
        w.step_names = names;
        w.observer
            .metrics()
            .set(Metric::ArenaBytes, arena_bytes as i64);
        w.observer
            .metrics()
            .set(Metric::PlanPeakBytes, peak_bytes as i64);
        w.observer
            .metrics()
            .set(Metric::ArenaReuseBytes, reuse_bytes as i64);
        if let Some(pool) = &self.pool {
            pool.set_observer(Some(w.observer.clone()));
        }
    }

    /// Bytes of arena actually allocated by this session, summed over
    /// its chunks — the exact steady-state activation/workspace
    /// footprint of [`run_into`](Self::run_into).
    pub fn arena_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.arena.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Bytes the session's arena layout saves over the legacy
    /// ping-pong layout (zero when the plan was compiled with
    /// [`ArenaStrategy::PingPong`]).
    pub fn arena_reuse_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| (c.naive_elems.saturating_sub(c.arena.len())) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Adds `n` to counter `m` on the session's observer, if any.
    #[inline]
    fn obs_count(&self, m: Metric, n: u64) {
        if let Some(w) = &self.obs {
            w.observer.metrics().add(m, n);
        }
    }

    /// Cumulative execution counters.
    pub fn profile(&self) -> &SessionProfile {
        &self.profile
    }

    /// The session's health so far (shorthand for
    /// `profile().health()`).
    pub fn health(&self) -> &HealthReport {
        &self.profile.health
    }

    /// The active guard level.
    pub fn guard(&self) -> GuardConfig {
        self.guard
    }

    /// Changes the guard level for subsequent runs.
    pub fn set_guard(&mut self, guard: GuardConfig) {
        self.guard = guard;
    }

    /// Arms a deterministic fault plan (see [`crate::guard`]). Weight
    /// bit-flip faults are applied immediately; the rest fire inside the
    /// targeted kernel/worker invocation. Only compiled under
    /// `--features fault-inject`.
    #[cfg(feature = "fault-inject")]
    pub fn inject_faults(&mut self, faults: FaultPlan) {
        faults.apply_weight_faults(&mut self.net);
        // Bit-flips bypass `weight_mut`, so plan-time packed panels
        // would otherwise keep the pre-fault weights.
        self.reprepare();
        self.faults = faults;
    }

    /// Resets the cumulative counters (e.g. after warm-up runs),
    /// including the health report. Demotions already applied to the
    /// execution state persist; only their records are cleared.
    pub fn reset_profile(&mut self) {
        for row in &mut self.profile.rows {
            row.time = Duration::ZERO;
            row.macs = 0;
            row.bytes = 0;
        }
        self.profile.runs = 0;
        self.profile.total_time = Duration::ZERO;
        self.profile.health = HealthReport::default();
    }

    /// Runs one inference, allocating only the output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `input` does not match the
    /// plan's compiled input shape, plus the failure modes of
    /// [`run_into`](Self::run_into).
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor, Error> {
        let mut out = Tensor::zeros(self.plan.output_shape.clone());
        self.run_into(input, &mut out)?;
        Ok(out)
    }

    /// Runs one inference into a caller-provided output tensor with zero
    /// heap allocation on the sequential hot path.
    ///
    /// Kernel panics are contained; guard trips and panics in steps with
    /// a safer algorithm demote the step and re-run (bounded attempts);
    /// transient pool failures are retried.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] — `input` or `out` does not match the
    ///   plan's compiled input/output shape.
    /// * [`Error::GuardTripped`] — a guard tripped and no demotion lever
    ///   applied (or attempts ran out).
    /// * [`Error::KernelPanicked`] — a kernel panicked (contained) and
    ///   no demotion lever applied.
    /// * [`Error::Pool`] — the worker pool failed persistently.
    pub fn run_into(&mut self, input: &Tensor, out: &mut Tensor) -> Result<(), Error> {
        if input.shape().dims() != self.plan.input_shape {
            return Err(Error::ShapeMismatch {
                expected: self.plan.input_shape.clone(),
                actual: input.shape().dims().to_vec(),
            });
        }
        if out.shape().dims() != self.plan.output_shape {
            return Err(Error::ShapeMismatch {
                expected: self.plan.output_shape.clone(),
                actual: out.shape().dims().to_vec(),
            });
        }
        let run = self.invocations;
        self.invocations += 1;
        // Make the observer current for the whole run so kernel-level
        // instruments (GEMM, im2col) record without plumbing; the pool
        // re-installs it inside each worker task.
        let _tls = self
            .obs
            .as_ref()
            .map(|w| cnn_stack_obs::install(w.observer.clone()));
        let run_ts = self.obs.as_ref().map(|w| w.observer.now_ns());
        let start = Instant::now();
        if self.guard.checks_parameters() {
            if let Some(report) = self.paranoid_precheck(input) {
                self.profile.health.guards_tripped += 1;
                self.obs_count(Metric::GuardTrips, 1);
                return Err(Error::GuardTripped(report));
            }
        }
        let mut attempt = 0;
        loop {
            attempt += 1;
            let failure = match self.execute_attempt(input, out, run) {
                Ok(()) => break,
                Err(f) => f,
            };
            match failure {
                RunFailure::Guard {
                    step,
                    chunk,
                    violation,
                } => {
                    self.profile.health.guards_tripped += 1;
                    self.obs_count(Metric::GuardTrips, 1);
                    let recovered = attempt < MAX_ATTEMPTS
                        && self.try_demote(step, DemotionReason::GuardTripped);
                    if !recovered {
                        return Err(Error::GuardTripped(GuardReport {
                            layer_index: step,
                            layer_name: self.plan.steps[step].name.clone(),
                            violation,
                            chunk,
                        }));
                    }
                }
                RunFailure::Panic { step, message } => {
                    self.profile.health.panics_contained += 1;
                    let recovered = attempt < MAX_ATTEMPTS
                        && self.try_demote(step, DemotionReason::KernelPanicked);
                    if !recovered {
                        return Err(Error::KernelPanicked {
                            layer: step,
                            name: self.plan.steps[step].name.clone(),
                            message,
                        });
                    }
                }
                RunFailure::Pool(e) => {
                    if attempt >= MAX_ATTEMPTS {
                        return Err(Error::Pool(e));
                    }
                    self.profile.health.retries += 1;
                    self.obs_count(Metric::GuardRetries, 1);
                }
            }
        }
        self.profile.total_time += start.elapsed();
        self.profile.runs += 1;
        for (row, step) in self.profile.rows.iter_mut().zip(&self.plan.steps) {
            row.macs += step.macs;
            row.bytes += step.bytes;
        }
        if let Some(w) = &self.obs {
            w.observer.metrics().add(Metric::RunsCompleted, 1);
            if let Some(ts) = run_ts {
                let dur = w.observer.now_ns().saturating_sub(ts).max(1);
                w.observer.span(w.run_name, ts, dur, 0);
            }
        }
        Ok(())
    }

    /// Paranoid-mode pre-run scan of the input tensor and every
    /// parameter tensor.
    fn paranoid_precheck(&mut self, input: &Tensor) -> Option<GuardReport> {
        self.obs_count(Metric::GuardScans, 1);
        if let Some((first_index, _, _)) = scan_non_finite(input.data()) {
            return Some(GuardReport {
                layer_index: 0,
                layer_name: "<input>".to_string(),
                violation: GuardViolation::NonFiniteInput { first_index },
                chunk: None,
            });
        }
        // Read-only parameter walk: `params_mut` would drop plan-time
        // packed panels on every guarded run.
        for (i, layer) in self.net.layers().iter().enumerate() {
            for (p, param) in layer.params().into_iter().enumerate() {
                if let Some(w) = &self.obs {
                    w.observer.metrics().add(Metric::GuardScans, 1);
                }
                if let Some((first_index, _, _)) = scan_non_finite(param.value.data()) {
                    return Some(GuardReport {
                        layer_index: i,
                        layer_name: layer.name(),
                        violation: GuardViolation::NonFiniteWeight {
                            param: p,
                            first_index,
                        },
                        chunk: None,
                    });
                }
            }
        }
        None
    }

    /// One pass over the pipeline: sequential when there is a single
    /// chunk, batch-parallel over the pool otherwise.
    fn execute_attempt(
        &mut self,
        input: &Tensor,
        out: &mut Tensor,
        run: u64,
    ) -> Result<(), RunFailure> {
        if self.chunks.len() == 1 {
            let chunk = &mut self.chunks[0];
            run_steps_sequential(
                self.net.layers_mut(),
                &self.exec,
                chunk,
                input.data(),
                out.data_mut(),
                self.guard,
                &mut self.profile.rows,
                &self.faults,
                run,
                self.obs.as_ref(),
            )
        } else {
            let n = self.plan.input_shape[0];
            let in_per_image = self.plan.steps[0].input_elems / n;
            let out_per_image = self.plan.steps.last().expect("non-empty plan").output_elems / n;
            let layers: &[Box<dyn Layer>] = self.net.layers();
            let exec: &[ExecStep] = &self.exec;
            let guard = self.guard;
            let faults: &FaultPlan = &self.faults;
            let obs: Option<&ObsWiring> = self.obs.as_ref();
            let mut failures: Vec<Option<RunFailure>> = Vec::new();
            failures.resize_with(self.chunks.len(), || None);
            let mut in_rest = input.data();
            let mut out_rest = out.data_mut();
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                Vec::with_capacity(self.chunks.len());
            for (ci, (chunk, failure)) in
                self.chunks.iter_mut().zip(failures.iter_mut()).enumerate()
            {
                let (in_c, rest) = in_rest.split_at(chunk.len * in_per_image);
                in_rest = rest;
                let (out_c, rest) = out_rest.split_at_mut(chunk.len * out_per_image);
                out_rest = rest;
                tasks.push(Box::new(move || {
                    *failure = run_steps_chunk(
                        layers, exec, chunk, ci, in_c, out_c, guard, faults, run, obs,
                    )
                    .err();
                }));
            }
            let scoped = self
                .pool
                .as_ref()
                .expect("parallel sessions own a pool")
                .scope(tasks);
            if let Err(e) = scoped {
                return Err(RunFailure::Pool(e));
            }
            // Several chunks can fail in one attempt; report the earliest
            // pipeline position (the first offender).
            let mut chosen: Option<RunFailure> = None;
            for f in failures.into_iter().flatten() {
                chosen = Some(match chosen {
                    None => f,
                    Some(prev) if f.step() < prev.step() => f,
                    Some(prev) => prev,
                });
            }
            match chosen {
                None => {
                    // Attribute per-layer time for the parallel run: the
                    // chunks execute step i concurrently, so the slowest
                    // chunk is the step's critical-path contribution.
                    for (i, row) in self.profile.rows.iter_mut().enumerate() {
                        let ns = self.chunks.iter().map(|c| c.step_ns[i]).max().unwrap_or(0);
                        row.time += Duration::from_nanos(ns);
                    }
                    Ok(())
                }
                Some(f) => Err(f),
            }
        }
    }

    /// Applies the strongest available demotion lever to `step`:
    /// CSR→dense first, then FFT→im2col, Winograd F(4×4)→F(2×2),
    /// Winograd→im2col, then quantised→f32 packed, then packed→blocked
    /// GEMM. Returns `false` when no lever applies (the failure is not
    /// recoverable by demotion).
    fn try_demote(&mut self, step: usize, reason: DemotionReason) -> bool {
        if step >= self.plan.steps.len() {
            return false;
        }
        let li = self.plan.steps[step].layer;
        let layer = self.net.layers_mut()[li].as_mut();
        if layer_has_csr(layer) {
            densify_layer(layer);
            self.record_demotion(step, DemotionAction::CsrToDense, reason);
            self.rebuild(step);
            return true;
        }
        // FFT drops straight to im2col; F(4x4) Winograd steps down to
        // the better-conditioned F(2x2) transform first, whose own rung
        // below continues the ladder to im2col.
        if self.exec[step].cfg.conv_algo == ConvAlgorithm::Fft
            && layer_has_conv(self.net.layers_mut()[li].as_mut())
        {
            self.exec[step].cfg.conv_algo = ConvAlgorithm::Im2col;
            self.exec[step].chunk_cfg.conv_algo = ConvAlgorithm::Im2col;
            self.record_demotion(step, DemotionAction::FftToIm2col, reason);
            self.rebuild(step);
            return true;
        }
        if self.exec[step].cfg.conv_algo == ConvAlgorithm::WinogradF4
            && layer_has_conv(self.net.layers_mut()[li].as_mut())
        {
            self.exec[step].cfg.conv_algo = ConvAlgorithm::Winograd;
            self.exec[step].chunk_cfg.conv_algo = ConvAlgorithm::Winograd;
            self.record_demotion(step, DemotionAction::Winograd4ToWinograd2, reason);
            self.rebuild(step);
            return true;
        }
        if self.exec[step].cfg.conv_algo == ConvAlgorithm::Winograd
            && layer_has_conv(self.net.layers_mut()[li].as_mut())
        {
            self.exec[step].cfg.conv_algo = ConvAlgorithm::Im2col;
            self.exec[step].chunk_cfg.conv_algo = ConvAlgorithm::Im2col;
            self.record_demotion(step, DemotionAction::WinogradToIm2col, reason);
            self.rebuild(step);
            return true;
        }
        let cfg = self.exec[step].cfg;
        // Quantised packed GEMM demotes to the f32 packed engine on the
        // dense master weights first — for exactly-ternary weights that
        // rung is bit-identical, and a further failure still has the
        // packed→blocked rung below.
        if matches!(
            cfg.gemm_algo,
            GemmAlgorithm::TernaryPacked | GemmAlgorithm::Int8Packed
        ) && layer_uses_packed_gemm(self.net.layers_mut()[li].as_mut(), &cfg)
        {
            self.exec[step].cfg.gemm_algo = GemmAlgorithm::Packed;
            self.exec[step].chunk_cfg.gemm_algo = GemmAlgorithm::Packed;
            self.record_demotion(step, DemotionAction::QuantisedToPacked, reason);
            self.rebuild(step);
            return true;
        }
        if cfg.gemm_algo == GemmAlgorithm::Packed
            && layer_uses_packed_gemm(self.net.layers_mut()[li].as_mut(), &cfg)
        {
            self.exec[step].cfg.gemm_algo = GemmAlgorithm::Blocked;
            self.exec[step].chunk_cfg.gemm_algo = GemmAlgorithm::Blocked;
            self.record_demotion(step, DemotionAction::PackedToBlocked, reason);
            self.rebuild(step);
            return true;
        }
        false
    }

    fn record_demotion(&mut self, step: usize, action: DemotionAction, reason: DemotionReason) {
        self.obs_count(Metric::GuardDemotions, 1);
        self.profile.health.demotions.push(DemotionRecord {
            layer_index: step,
            layer_name: self.plan.steps[step].name.clone(),
            action,
            reason,
        });
    }

    /// Rebuilds every layer's plan-time caches (packed GEMM weight
    /// panels) for its step's current effective configuration. Run at
    /// session build, after demotions, and after weight-fault injection
    /// so the caches never go stale against the master weights.
    fn reprepare(&mut self) {
        let layers = self.net.layers_mut();
        for (ps, exec) in self.plan.steps.iter().zip(&self.exec) {
            let cfg = exec.cfg;
            layers[ps.layer].visit_mut(&mut |l| l.prepare(&cfg));
        }
    }

    /// Re-derives arena support, chunking, layer caches, and the worker
    /// pool after the demotion of `demoted_step` changed its algorithm
    /// or weight format. The rebuilt arena re-runs the liveness sizing;
    /// when the plan carries a memory budget and the demoted plan no
    /// longer fits (a demotion can *raise* workspace need — e.g.
    /// Winograd→im2col trades an unsupported zero-workspace step for a
    /// real im2col buffer), the overshoot is recorded as a
    /// [`BudgetBreachRecord`] health event: correctness wins over fit,
    /// since the demoted algorithm is the only safe one left.
    fn rebuild(&mut self, demoted_step: usize) {
        let layers = self.net.layers();
        for (i, ps) in self.plan.steps.iter().enumerate() {
            self.exec[i].supported = layers[ps.layer].forward_into_supported(&self.exec[i].cfg);
        }
        self.reprepare();
        self.chunks = build_chunks(&self.net, &self.plan, &self.exec);
        let needed = self.chunks.len();
        if needed > 1 {
            if self.pool.as_ref().map_or(0, |p| p.threads()) != needed {
                self.pool = Some(ThreadPool::new(needed));
            }
        } else {
            self.pool = None;
        }
        if let Some(budget) = self.plan.cfg().plan_budget {
            let peak = self.current_footprint_peak_bytes();
            if peak > budget {
                self.profile
                    .health
                    .budget_breaches
                    .push(BudgetBreachRecord {
                        layer_index: demoted_step,
                        layer_name: self.plan.steps[demoted_step].name.clone(),
                        budget_bytes: budget,
                        peak_bytes: peak,
                    });
            }
        }
        self.sync_obs();
    }

    /// Plan-level peak bytes re-derived from the *current* execution
    /// state (post-demotion configs and support flags), comparable to
    /// the compile-time number a budget admitted.
    fn current_footprint_peak_bytes(&self) -> usize {
        let layers = self.net.layers();
        let extents: Vec<StepExtent> = self
            .plan
            .steps
            .iter()
            .zip(&self.exec)
            .map(|(ps, e)| {
                let (workspace_elems, scratch_elems) = if e.supported {
                    let layer = layers[ps.layer].as_ref();
                    (
                        layer.forward_workspace_elems(&ps.input_shape, &e.cfg),
                        layer.forward_scratch_elems(&ps.input_shape, &e.cfg),
                    )
                } else {
                    (0, 0)
                };
                StepExtent {
                    output_elems: ps.output_elems,
                    workspace_elems,
                    scratch_elems,
                }
            })
            .collect();
        let fp = MemoryFootprint::of(&extents);
        match self.plan.cfg().arena {
            ArenaStrategy::Coloured => fp.peak_bytes,
            ArenaStrategy::PingPong => fp.naive_bytes,
        }
    }
}

/// Sequential execution of every step over one arena pair, timing each
/// step, containing kernel panics, applying boundary guards, and routing
/// unsupported steps through the allocating [`Layer::forward`] fallback.
#[allow(clippy::too_many_arguments)]
fn run_steps_sequential(
    layers: &mut [Box<dyn Layer>],
    exec: &[ExecStep],
    chunk: &mut ChunkArena,
    input: &[f32],
    out: &mut [f32],
    guard: GuardConfig,
    rows: &mut [ProfileRow],
    faults: &FaultPlan,
    run: u64,
    obs: Option<&ObsWiring>,
) -> Result<(), RunFailure> {
    let last = chunk.steps.len() - 1;
    let ChunkArena { steps, arena, .. } = chunk;
    // Arena offset of the previous step's output (the current source);
    // step 0 reads the caller's input instead.
    let mut prev_off = 0usize;
    for (i, step) in steps.iter().enumerate() {
        // Span start is taken before `started` so `ts + dur` never spills
        // past the next step's start (keeps the exported nesting exact).
        let obs_ts = obs.map(|w| w.observer.now_ns());
        let started = Instant::now();
        let (src_a, dst_a, ws_slice) = arena_views(
            arena,
            (i > 0).then_some((prev_off, step.input_elems)),
            (i != last).then_some((step.dst_off, step.output_elems)),
            (step.ws_off, step.ws_len),
        );
        let src_slice: &[f32] = match src_a {
            Some(s) => s,
            None => &input[..step.input_elems],
        };
        let dst_slice: &mut [f32] = match dst_a {
            Some(d) => d,
            None => &mut out[..],
        };
        let layer = &mut layers[step.layer];
        let kernel = catch_unwind(AssertUnwindSafe(|| -> Result<(), GuardViolation> {
            faults.kernel_entry(i, run);
            if exec[i].supported {
                layer.forward_into(
                    src_slice,
                    &step.input_shape,
                    dst_slice,
                    ws_slice,
                    &exec[i].cfg,
                );
            } else {
                let x = Tensor::from_vec(step.input_shape.clone(), src_slice.to_vec());
                let y = layer.forward(&x, Phase::Eval, &exec[i].cfg);
                if y.data().len() != dst_slice.len() {
                    // With guards off this would panic in copy_from_slice
                    // below; report it as a shape violation instead.
                    return Err(GuardViolation::ShapeMismatch {
                        expected_elems: dst_slice.len(),
                        actual_elems: y.data().len(),
                    });
                }
                dst_slice.copy_from_slice(y.data());
            }
            Ok(())
        }));
        match kernel {
            Err(payload) => {
                return Err(RunFailure::Panic {
                    step: i,
                    message: panic_message(payload),
                })
            }
            Ok(Err(violation)) => {
                return Err(RunFailure::Guard {
                    step: i,
                    chunk: None,
                    violation,
                })
            }
            Ok(Ok(())) => {}
        }
        faults.corrupt_output(i, run, 0, dst_slice);
        if guard.checks_boundaries() {
            if let Some(w) = obs {
                w.observer.metrics().add(Metric::GuardScans, 1);
            }
            if let Some((first_index, kind, count)) = scan_non_finite(dst_slice) {
                return Err(RunFailure::Guard {
                    step: i,
                    chunk: None,
                    violation: GuardViolation::NonFiniteActivation {
                        kind,
                        first_index,
                        count,
                    },
                });
            }
        }
        let elapsed = started.elapsed();
        rows[i].time += elapsed;
        if let Some(w) = obs {
            let ns = elapsed.as_nanos() as u64;
            let m = w.observer.metrics();
            m.add(Metric::StepsExecuted, 1);
            m.observe(Metric::StepNs, ns);
            w.observer
                .span(w.step_names[i], obs_ts.unwrap_or(0), ns.max(1), 0);
        }
        prev_off = step.dst_off;
    }
    Ok(())
}

/// Allocation-free execution of an all-supported step list over one
/// chunk's arena pair (the batch-parallel worker body), with per-step
/// panic containment and boundary guards.
#[allow(clippy::too_many_arguments)]
fn run_steps_chunk(
    layers: &[Box<dyn Layer>],
    exec: &[ExecStep],
    chunk: &mut ChunkArena,
    chunk_idx: usize,
    input: &[f32],
    out: &mut [f32],
    guard: GuardConfig,
    faults: &FaultPlan,
    run: u64,
    obs: Option<&ObsWiring>,
) -> Result<(), RunFailure> {
    faults.worker_entry(chunk_idx, run);
    let last = chunk.steps.len() - 1;
    let ChunkArena {
        steps,
        arena,
        step_ns,
        ..
    } = chunk;
    let mut prev_off = 0usize;
    for (i, step) in steps.iter().enumerate() {
        debug_assert!(exec[i].supported, "parallel chunks require full support");
        let obs_ts = obs.map(|w| w.observer.now_ns());
        let started = Instant::now();
        let (src_a, dst_a, ws_slice) = arena_views(
            arena,
            (i > 0).then_some((prev_off, step.input_elems)),
            (i != last).then_some((step.dst_off, step.output_elems)),
            (step.ws_off, step.ws_len),
        );
        let src_slice: &[f32] = match src_a {
            Some(s) => s,
            None => &input[..step.input_elems],
        };
        let dst_slice: &mut [f32] = match dst_a {
            Some(d) => d,
            None => &mut out[..],
        };
        let layer = &layers[step.layer];
        let kernel = catch_unwind(AssertUnwindSafe(|| {
            faults.kernel_entry(i, run);
            layer.forward_into(
                src_slice,
                &step.input_shape,
                dst_slice,
                ws_slice,
                &exec[i].chunk_cfg,
            );
        }));
        if let Err(payload) = kernel {
            return Err(RunFailure::Panic {
                step: i,
                message: panic_message(payload),
            });
        }
        faults.corrupt_output(i, run, chunk_idx, dst_slice);
        if guard.checks_boundaries() {
            if let Some(w) = obs {
                w.observer.metrics().add(Metric::GuardScans, 1);
            }
            if let Some((first_index, kind, count)) = scan_non_finite(dst_slice) {
                return Err(RunFailure::Guard {
                    step: i,
                    chunk: Some(chunk_idx),
                    violation: GuardViolation::NonFiniteActivation {
                        kind,
                        first_index,
                        count,
                    },
                });
            }
        }
        let ns = started.elapsed().as_nanos() as u64;
        step_ns[i] = ns;
        if let Some(w) = obs {
            let m = w.observer.metrics();
            m.add(Metric::StepsExecuted, 1);
            m.observe(Metric::StepNs, ns);
            w.observer.span(
                w.step_names[i],
                obs_ts.unwrap_or(0),
                ns.max(1),
                chunk_idx as u32 + 1,
            );
        }
        prev_off = step.dst_off;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvAlgorithm, WeightFormat};
    use crate::network::set_network_format;
    use crate::{Conv2d, Flatten, Linear, MaxPool2d, ReLU, ResidualBlock};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn conv_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 6, 3, 1, 1, 1)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(6, 4, 3, 1, 1, 2)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 4 * 4, 5, 3)),
        ])
        .unwrap()
    }

    fn resblock_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, 4)),
            Box::new(ResidualBlock::new(8, 16, 2, 5)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(16 * 4 * 4, 3, 6)),
        ])
        .unwrap()
    }

    /// Identity-shaped descriptor shared by the test layers below.
    fn identity_descriptor(name: &str, input_shape: &[usize]) -> crate::LayerDescriptor {
        let elems: usize = input_shape.iter().product();
        crate::LayerDescriptor {
            name: name.to_string(),
            kind: crate::descriptor::LayerKind::Activation,
            macs: 0,
            weight_elems: 0,
            weight_nnz: 0,
            format: WeightFormat::Dense,
            input_elems: elems,
            output_elems: elems,
            output_shape: input_shape.to_vec(),
            scratch_elems: 0,
            parallel_grains: 1,
        }
    }

    /// Test-only layer that writes a NaN into one output element on
    /// every pass, otherwise copying its input through.
    #[derive(Debug)]
    struct NanLayer;

    impl Layer for NanLayer {
        fn name(&self) -> String {
            "nan-layer".to_string()
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn forward(&mut self, x: &Tensor, _phase: Phase, _cfg: &ExecConfig) -> Tensor {
            let mut y = x.clone();
            y.data_mut()[0] = f32::NAN;
            y
        }

        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }

        fn descriptor(&self, input_shape: &[usize]) -> crate::LayerDescriptor {
            identity_descriptor(&self.name(), input_shape)
        }

        fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
            f(self);
        }

        fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
            true
        }

        fn forward_into(
            &self,
            input: &[f32],
            _input_shape: &[usize],
            out: &mut [f32],
            _scratch: &mut [f32],
            _cfg: &ExecConfig,
        ) {
            out.copy_from_slice(input);
            out[0] = f32::NAN;
        }
    }

    /// Test-only layer that panics for the first `panics` passes, then
    /// behaves as identity.
    #[derive(Debug)]
    struct FlakyLayer {
        remaining: std::sync::atomic::AtomicUsize,
    }

    impl FlakyLayer {
        fn new(panics: usize) -> Self {
            FlakyLayer {
                remaining: std::sync::atomic::AtomicUsize::new(panics),
            }
        }

        fn should_panic(&self) -> bool {
            self.remaining
                .fetch_update(
                    std::sync::atomic::Ordering::AcqRel,
                    std::sync::atomic::Ordering::Acquire,
                    |v| v.checked_sub(1),
                )
                .is_ok()
        }
    }

    impl Layer for FlakyLayer {
        fn name(&self) -> String {
            "flaky-layer".to_string()
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn forward(&mut self, x: &Tensor, _phase: Phase, _cfg: &ExecConfig) -> Tensor {
            if self.should_panic() {
                panic!("flaky layer failure");
            }
            x.clone()
        }

        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }

        fn descriptor(&self, input_shape: &[usize]) -> crate::LayerDescriptor {
            identity_descriptor(&self.name(), input_shape)
        }

        fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
            f(self);
        }

        fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
            true
        }

        fn forward_into(
            &self,
            input: &[f32],
            _input_shape: &[usize],
            out: &mut [f32],
            _scratch: &mut [f32],
            _cfg: &ExecConfig,
        ) {
            if self.should_panic() {
                panic!("flaky layer failure");
            }
            out.copy_from_slice(input);
        }
    }

    #[test]
    fn plan_walks_shapes_and_sizes_arena() {
        let net = conv_net();
        let cfg = ExecConfig::serial();
        let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &cfg).unwrap();
        assert_eq!(plan.steps().len(), 7);
        assert_eq!(plan.output_shape(), &[2, 5]);
        assert_eq!(plan.steps()[0].output_shape, vec![2, 6, 8, 8]);
        // Largest activation: the first conv output, 2*6*8*8.
        assert_eq!(plan.buf_elems(), 2 * 6 * 8 * 8);
        assert!(plan.fully_supported());
        // Direct convolutions need no scratch, but the final Linear layer
        // runs the packed GEMM and needs room for its A/B panels.
        let linear_plan = cnn_stack_tensor::GemmPlan::new(2, 4 * 4 * 4, 5);
        assert_eq!(plan.scratch_elems(), linear_plan.scratch_elems());
        // With the blocked GEMM everything is scratch-free.
        let blocked = ExecConfig {
            gemm_algo: cnn_stack_tensor::GemmAlgorithm::Blocked,
            ..ExecConfig::serial()
        };
        let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &blocked).unwrap();
        assert_eq!(plan.scratch_elems(), 0);
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        let net = conv_net();
        assert!(matches!(
            InferencePlan::compile(&net, &[], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            InferencePlan::compile(&net, &[0, 3, 8, 8], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
        let zero_threads = ExecConfig {
            threads: 0,
            ..ExecConfig::serial()
        };
        assert!(matches!(
            InferencePlan::compile(&net, &[1, 3, 8, 8], &zero_threads),
            Err(Error::InvalidConfig(_))
        ));
        // Wrong-rank inputs error instead of panicking inside a layer's
        // descriptor indexing.
        assert!(matches!(
            InferencePlan::compile(&net, &[3, 8, 8], &ExecConfig::serial()),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn plan_im2col_sizes_scratch() {
        let net = conv_net();
        // Blocked GEMM: scratch is the materialised im2col matrix.
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            gemm_algo: cnn_stack_tensor::GemmAlgorithm::Blocked,
            ..ExecConfig::serial()
        };
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &cfg).unwrap();
        // First conv: patch 3*3*3=27, 64 positions -> 1728 floats.
        assert_eq!(plan.scratch_elems(), 27 * 64);
        // Packed GEMM: scratch is the packed panel buffers instead; the
        // im2col matrix is never materialised.
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        };
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &cfg).unwrap();
        // First conv dominates: A = 6x27 weights, B = 27x64 columns.
        let conv_plan = cnn_stack_tensor::GemmPlan::new(6, 27, 64);
        let linear_plan = cnn_stack_tensor::GemmPlan::new(1, 4 * 4 * 4, 5);
        assert_eq!(
            plan.scratch_elems(),
            conv_plan.scratch_elems().max(linear_plan.scratch_elems())
        );
    }

    #[test]
    fn session_bit_matches_forward_across_configs() {
        let x = random([3, 3, 8, 8], 7);
        for algo in [ConvAlgorithm::Direct, ConvAlgorithm::Im2col] {
            for format in [WeightFormat::Dense, WeightFormat::Csr] {
                for threads in [1, 4] {
                    let mut net = conv_net();
                    set_network_format(&mut net, format);
                    let cfg = ExecConfig {
                        threads,
                        conv_algo: algo,
                        ..ExecConfig::serial()
                    };
                    let expected = net.forward(&x, Phase::Eval, &cfg);
                    let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
                    let mut session = InferenceSession::new(&mut net, plan).unwrap();
                    let got = session.run(&x).unwrap();
                    assert_eq!(
                        got.data(),
                        expected.data(),
                        "mismatch for {algo:?}/{format:?}/{threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn session_bit_matches_forward_with_residual_blocks() {
        let x = random([2, 3, 8, 8], 9);
        for threads in [1, 3] {
            let mut net = resblock_net();
            let cfg = ExecConfig {
                threads,
                ..ExecConfig::serial()
            };
            let expected = net.forward(&x, Phase::Eval, &cfg);
            let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
            let mut session = InferenceSession::new(&mut net, plan).unwrap();
            let got = session.run(&x).unwrap();
            assert_eq!(got.data(), expected.data(), "threads={threads}");
        }
    }

    #[test]
    fn winograd_layers_fall_back_and_still_match() {
        let x = random([2, 3, 8, 8], 11);
        let mut net = conv_net();
        let cfg = ExecConfig {
            conv_algo: ConvAlgorithm::Winograd,
            ..ExecConfig::serial()
        };
        let expected = net.forward(&x, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        assert!(!plan.fully_supported());
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let got = session.run(&x).unwrap();
        assert_eq!(got.data(), expected.data());
    }

    #[test]
    fn run_rejects_mismatched_shapes() {
        let mut net = conv_net();
        let plan = InferencePlan::compile(&net, &[2, 3, 8, 8], &ExecConfig::serial()).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        assert!(matches!(
            session.run(&Tensor::zeros([1, 3, 8, 8])),
            Err(Error::ShapeMismatch { .. })
        ));
        let mut wrong_out = Tensor::zeros([2, 4]);
        assert!(matches!(
            session.run_into(&Tensor::zeros([2, 3, 8, 8]), &mut wrong_out),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn session_rejects_plan_for_other_network() {
        let net = conv_net();
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        let mut other = resblock_net();
        assert!(matches!(
            InferenceSession::new(&mut other, plan),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn profile_accumulates_across_runs() {
        let mut net = conv_net();
        let x = random([1, 3, 8, 8], 13);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &ExecConfig::serial()).unwrap();
        let step_macs: Vec<u64> = plan.steps().iter().map(|s| s.macs).collect();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        session.run(&x).unwrap();
        session.run(&x).unwrap();
        let profile = session.profile();
        assert_eq!(profile.runs(), 2);
        assert_eq!(profile.rows().len(), 7);
        for (row, macs) in profile.rows().iter().zip(step_macs) {
            assert_eq!(row.macs, 2 * macs);
            assert!(row.bytes > 0);
        }
        assert_eq!(profile.mean_layer_times().len(), 7);
        session.reset_profile();
        assert_eq!(session.profile().runs(), 0);
        assert_eq!(session.profile().rows()[0].macs, 0);
    }

    #[test]
    fn run_into_reuses_caller_output() {
        let mut net = conv_net();
        let x = random([2, 3, 8, 8], 17);
        let cfg = ExecConfig::serial();
        let expected = net.forward(&x, Phase::Eval, &cfg);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let mut out = Tensor::from_vec([2, 5], vec![f32::NAN; 10]);
        session.run_into(&x, &mut out).unwrap();
        assert_eq!(out.data(), expected.data());
    }

    #[test]
    fn guard_off_is_bitwise_identical_to_unguarded() {
        let x = random([2, 3, 8, 8], 19);
        let cfg = ExecConfig::serial();
        let mut net = conv_net();
        let expected = {
            let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
            let mut session = InferenceSession::new(&mut net, plan).unwrap();
            session.run(&x).unwrap()
        };
        let mut net = conv_net();
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let mut session =
            InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
        let got = session.run(&x).unwrap();
        assert_eq!(got.data(), expected.data());
        assert!(session.health().is_clean());
    }

    /// Boundary-check mode names the first offending layer, even though
    /// a later ReLU would silently flush the NaN back to a finite value
    /// (`f32::max(NaN, 0.0)` is 0.0).
    #[test]
    fn boundary_check_reports_first_offending_layer() {
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, 0)),
            Box::new(NanLayer),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
        ])
        .unwrap();
        let x = random([1, 3, 8, 8], 23);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &ExecConfig::serial()).unwrap();
        let mut session =
            InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
        let err = session.run(&x).expect_err("NaN must trip the guard");
        match err {
            Error::GuardTripped(report) => {
                assert_eq!(report.layer_index, 1, "first offender is the NaN layer");
                assert_eq!(report.layer_name, "nan-layer");
                assert!(matches!(
                    report.violation,
                    GuardViolation::NonFiniteActivation {
                        kind: crate::guard::NonFiniteKind::Nan,
                        first_index: 0,
                        ..
                    }
                ));
            }
            other => panic!("expected GuardTripped, got {other:?}"),
        }
        assert_eq!(session.health().guards_tripped, 1);
        // With guards off the same session semantics let the NaN pass
        // (and the ReLU flushes it): the run succeeds.
        session.set_guard(GuardConfig::Off);
        session.run(&x).expect("guards off: no boundary checks");
    }

    /// A kernel panic in a step with no safer algorithm is contained:
    /// the process stays alive, the error names the layer, and the same
    /// session keeps working once the layer recovers.
    #[test]
    fn kernel_panic_is_contained_and_session_stays_usable() {
        let mut net = Network::new(vec![
            Box::new(Conv2d::new(3, 4, 3, 1, 1, 0)),
            Box::new(FlakyLayer::new(MAX_ATTEMPTS as usize)),
            Box::new(Flatten::new()),
        ])
        .unwrap();
        let x = random([1, 3, 8, 8], 29);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &ExecConfig::serial()).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        let err = session.run(&x).expect_err("panicking layer must error");
        match err {
            Error::KernelPanicked {
                layer,
                name,
                message,
            } => {
                assert_eq!(layer, 1);
                assert_eq!(name, "flaky-layer");
                assert!(message.contains("flaky layer failure"));
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
        assert_eq!(session.health().panics_contained, 1);
        // The injected panic budget is spent after MAX_ATTEMPTS panics;
        // from the second call on, the session runs clean.
        while session.run(&x).is_err() {}
        session.run(&x).expect("recovered layer runs clean");
    }

    /// Paranoid mode catches a non-finite weight before any kernel runs.
    #[test]
    fn paranoid_mode_flags_non_finite_weights() {
        let mut net = conv_net();
        // Poison one weight of the second conv (top-level layer 3).
        if let Some(conv) = net.layers_mut()[3].as_any_mut().downcast_mut::<Conv2d>() {
            conv.weight_mut().value.data_mut()[5] = f32::INFINITY;
        } else {
            panic!("layer 3 is the second conv");
        }
        let x = random([1, 3, 8, 8], 31);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &ExecConfig::serial()).unwrap();
        let mut session =
            InferenceSession::with_guard(&mut net, plan, GuardConfig::Paranoid).unwrap();
        let err = session.run(&x).expect_err("poisoned weight must trip");
        match err {
            Error::GuardTripped(report) => {
                assert_eq!(report.layer_index, 3);
                assert!(matches!(
                    report.violation,
                    GuardViolation::NonFiniteWeight { first_index: 5, .. }
                ));
            }
            other => panic!("expected GuardTripped, got {other:?}"),
        }
        // And a NaN input trips before the weights are even scanned.
        let mut bad = x.clone();
        bad.data_mut()[0] = f32::NAN;
        match session.run(&bad) {
            Err(Error::GuardTripped(report)) => {
                assert!(matches!(
                    report.violation,
                    GuardViolation::NonFiniteInput { first_index: 0 }
                ));
                assert_eq!(report.layer_name, "<input>");
            }
            other => panic!("expected GuardTripped on input, got {other:?}"),
        }
    }

    #[test]
    fn observer_absent_unless_requested() {
        let mut net = conv_net();
        let plan = InferencePlan::compile(&net, &[1, 3, 8, 8], &ExecConfig::serial()).unwrap();
        let session = InferenceSession::new(&mut net, plan).unwrap();
        assert!(session.observer().is_none());
    }

    #[test]
    fn observer_records_run_metrics_and_step_spans() {
        use cnn_stack_obs::ObsLevel;
        let mut net = conv_net();
        let cfg = ExecConfig {
            observer: ObsLevel::Trace,
            ..ExecConfig::serial()
        };
        let x = random([1, 3, 8, 8], 37);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let steps = plan.steps().len() as u64;
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        session.run(&x).unwrap();
        session.run(&x).unwrap();
        let obs = session
            .observer()
            .expect("trace level installs an observer");
        let m = obs.metrics();
        assert_eq!(m.counter(Metric::RunsCompleted), 2);
        assert_eq!(m.counter(Metric::StepsExecuted), 2 * steps);
        assert!(m.counter(Metric::GemmCalls) > 0);
        assert!(m.gauge(Metric::ArenaBytes) > 0);
        // One span per step plus one run span, per run.
        let events = obs.events();
        assert_eq!(events.len() as u64, 2 * (steps + 1));
        let names = obs.names();
        assert!(names.iter().any(|n| n == "run"));
        assert!(names.iter().any(|n| n.contains("[span 1]")));
        // Metrics level counts but records no events.
        let mut net = conv_net();
        let cfg = ExecConfig {
            observer: ObsLevel::Metrics,
            ..ExecConfig::serial()
        };
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        session.run(&x).unwrap();
        let obs = session.observer().unwrap();
        assert_eq!(obs.metrics().counter(Metric::RunsCompleted), 1);
        assert!(obs.events().is_empty());
    }

    #[test]
    fn observer_counts_boundary_scans_and_parallel_pool_tasks() {
        use cnn_stack_obs::ObsLevel;
        let mut net = conv_net();
        let cfg = ExecConfig {
            observer: ObsLevel::Metrics,
            ..ExecConfig::with_threads(2)
        };
        let x = random([4, 3, 8, 8], 41);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let steps = plan.steps().len() as u64;
        let mut session =
            InferenceSession::with_guard(&mut net, plan, GuardConfig::BoundaryCheck).unwrap();
        session.run(&x).unwrap();
        let m = session.observer().unwrap().metrics();
        // Two chunks, each scanning every step boundary.
        assert_eq!(m.counter(Metric::GuardScans), 2 * steps);
        assert_eq!(m.counter(Metric::GuardTrips), 0);
        assert_eq!(m.gauge(Metric::PoolWorkers), 2);
        assert_eq!(m.counter(Metric::PoolTasksQueued), 2);
        assert_eq!(m.counter(Metric::PoolTasksRun), 2);
        assert_eq!(m.counter(Metric::PoolPanicsContained), 0);
    }

    /// Packed-GEMM config for the panel-sharing tests (serial `Direct`
    /// convs have no panel cache to share).
    fn packed_cfg() -> ExecConfig {
        ExecConfig {
            conv_algo: ConvAlgorithm::Im2col,
            ..ExecConfig::serial()
        }
    }

    /// Builds an owned session over a fresh `conv_net` replica.
    fn owned_session(cfg: &ExecConfig, shape: &[usize]) -> InferenceSession<'static> {
        let net = conv_net();
        let plan = InferencePlan::compile(&net, shape, cfg).unwrap();
        InferenceSession::owned(net, plan, GuardConfig::Off).unwrap()
    }

    /// An owned session has no borrowed lifetime, can hand its panels to
    /// a replica (which then physically shares the same `Arc` buffers),
    /// and gives the network back via `into_network`.
    #[test]
    fn owned_sessions_share_arc_panels_across_replicas() {
        let cfg = packed_cfg();
        let shape = [2usize, 3, 8, 8];
        let x = random(shape, 7);

        let mut donor = owned_session(&cfg, &shape);
        let panels = donor.export_packed_panels();
        // conv_net has two convs + one linear with panel caches.
        assert_eq!(panels.iter().flatten().count(), 3);
        let y_donor = donor.run(&x).unwrap();

        let mut replica = owned_session(&cfg, &shape);
        assert_eq!(replica.adopt_packed_panels(&panels), 3);
        // The replica's handles are the donor's buffers, not copies.
        for (a, b) in panels.iter().zip(replica.export_packed_panels()) {
            match (a, b) {
                (Some(a), Some(b)) => assert!(Arc::ptr_eq(a, &b)),
                (None, None) => {}
                _ => panic!("panel export order diverged between replicas"),
            }
        }
        let y_replica = replica.run(&x).unwrap();
        assert_eq!(y_donor.data(), y_replica.data());
        assert!(replica.into_network().is_some());
    }

    /// The half-invalidation regression (ISSUE 6 satellite): weight
    /// surgery on one network drops only that network's `Arc` handle —
    /// a peer session sharing the panels keeps a complete, consistent
    /// prepack and its outputs stay bit-identical.
    #[test]
    fn shared_panels_survive_peer_weight_surgery() {
        let cfg = packed_cfg();
        let shape = [2usize, 3, 8, 8];
        let x = random(shape, 11);

        let mut donor = owned_session(&cfg, &shape);
        let panels = donor.export_packed_panels();
        let mut replica = owned_session(&cfg, &shape);
        assert_eq!(replica.adopt_packed_panels(&panels), 3);
        let before = replica.run(&x).unwrap();

        // Surgery on the donor's network: zero the first conv's weights.
        // `weight_mut` must drop (not mutate) the donor's panel handle.
        let mut net = donor.into_network().unwrap();
        net.layers_mut()[0]
            .as_any_mut()
            .downcast_mut::<Conv2d>()
            .unwrap()
            .weight_mut()
            .value
            .fill(0.0);
        let plan = InferencePlan::compile(&net, &shape, &cfg).unwrap();
        let mut donor = InferenceSession::owned(net, plan, GuardConfig::Off).unwrap();
        let y_mutated = donor.run(&x).unwrap();
        assert_ne!(y_mutated.data(), before.data());

        // The replica still holds the original buffers and is unaffected.
        let after = replica.run(&x).unwrap();
        for (a, b) in before.data().iter().zip(after.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Panels from a differently-shaped donor are rejected layer-by-layer
    /// (length check), leaving the replica's own prepack intact.
    #[test]
    fn mismatched_panel_adoption_is_rejected() {
        let cfg = packed_cfg();
        let shape = [2usize, 3, 8, 8];
        let mut donor = {
            let net = resblock_net();
            let plan = InferencePlan::compile(&net, &shape, &cfg).unwrap();
            InferenceSession::owned(net, plan, GuardConfig::Off).unwrap()
        };
        let foreign = donor.export_packed_panels();
        let mut replica = owned_session(&cfg, &shape);
        let own = replica.export_packed_panels();
        assert_eq!(replica.adopt_packed_panels(&foreign), 0);
        // Own panels untouched by the failed adoption.
        for (a, b) in own.iter().zip(replica.export_packed_panels()) {
            match (a, b) {
                (Some(a), Some(b)) => assert!(Arc::ptr_eq(a, &b)),
                (None, None) => {}
                _ => panic!("panel export order changed"),
            }
        }
        let x = random(shape, 13);
        let mut fresh = owned_session(&cfg, &shape);
        let want = fresh.run(&x).unwrap();
        let got = replica.run(&x).unwrap();
        assert_eq!(want.data(), got.data());
    }

    /// Batch-parallel runs used to advance only the profile total; the
    /// per-step chunk timings now attribute each row's critical path.
    #[test]
    fn parallel_runs_attribute_per_layer_time() {
        let mut net = conv_net();
        let cfg = ExecConfig::with_threads(2);
        let x = random([4, 3, 8, 8], 43);
        let plan = InferencePlan::compile(&net, x.shape().dims(), &cfg).unwrap();
        let mut session = InferenceSession::new(&mut net, plan).unwrap();
        session.run(&x).unwrap();
        let profile = session.profile();
        assert_eq!(profile.runs(), 1);
        for row in profile.rows() {
            assert!(
                row.time > Duration::ZERO,
                "step {:?} got no time attributed under batch parallelism",
                row.name
            );
        }
    }
}
