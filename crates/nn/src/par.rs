//! Internal helper for writing disjoint output regions from parallel
//! loops.

/// A raw pointer to an output buffer that parallel workers write through,
/// each touching a provably disjoint region (e.g. one output-channel plane
/// per grain).
///
/// This mirrors what the paper's OpenMP C code does: every thread writes
/// its own output rows of the shared array with no synchronisation.
pub(crate) struct DisjointWriter {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: the pointer is only dereferenced through `slice_mut`, whose
// callers guarantee disjoint ranges across threads (enforced by the
// parallel-loop structure: each loop index owns a unique output region).
unsafe impl Sync for DisjointWriter {}
unsafe impl Send for DisjointWriter {}

impl DisjointWriter {
    /// Wraps a mutable buffer for the duration of a parallel region.
    pub(crate) fn new(buf: &mut [f32]) -> Self {
        DisjointWriter {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
        }
    }

    /// Returns a mutable subslice.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that concurrently outstanding ranges never
    /// overlap and that the underlying buffer outlives the region (the
    /// borrow in [`new`](Self::new) enforces the lifetime at the
    /// call site).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [f32] {
        debug_assert!(
            start <= end && end <= self.len,
            "disjoint write out of bounds"
        );
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_stack_parallel::{parallel_for, Schedule};

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut buf = vec![0.0f32; 64];
        {
            let w = DisjointWriter::new(&mut buf);
            let w = &w;
            parallel_for(4, 16, Schedule::Dynamic { chunk: 1 }, |range| {
                for i in range {
                    // Each grain owns elements [i*4, i*4+4).
                    let s = unsafe { w.slice_mut(i * 4, i * 4 + 4) };
                    for (k, v) in s.iter_mut().enumerate() {
                        *v = (i * 4 + k) as f32;
                    }
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }
}
