//! Runtime memory accounting (the model behind Tables IV and VI).
//!
//! §V-D of the paper explains its footprint as "network parameters being
//! available in memory, input and output buffers and intermediate
//! allocation for padding input in the convolutions", and attributes the
//! *increase* under CSR to storing each small filter as its own sparse
//! matrix ("in dense format the matrix is an array of 9 floating point
//! elements for the 3×3 filter, while in CSR format there are 3 arrays
//! ... with additional parameters to account for the size of arrays").
//!
//! This module reproduces that accounting: sparse convolution weights are
//! charged **per filter** — one `k×k` CSR matrix per (output, input)
//! channel pair, each paying its own row-pointer array and size header —
//! which is what makes weight pruning and quantisation *cost* memory at
//! 3×3 and 1×1 filter sizes even at high sparsity.

use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::WeightFormat;

/// Byte-level breakdown of a network's runtime footprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Weight storage (dense arrays or per-filter CSR).
    pub weight_bytes: usize,
    /// Activation buffers: network input plus every layer output.
    pub activation_bytes: usize,
    /// Transient scratch: the largest padded-input copy (direct
    /// convolution) or im2col matrix alive at any one time.
    pub scratch_bytes: usize,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.weight_bytes + self.activation_bytes + self.scratch_bytes
    }

    /// Total in megabytes (10⁶ bytes, as the paper's tables report).
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / 1e6
    }
}

/// Per-filter CSR cost for a convolution layer: each of the
/// `filters` small matrices pays `(k + 1)` row pointers plus a fixed
/// header, and the layer's non-zeros pay value + column-index bytes.
fn per_filter_csr_bytes(filters: usize, k: usize, layer_nnz: usize) -> usize {
    // Row pointers (usize) + 2-int size header per filter matrix.
    let per_filter_overhead = (k + 1) * 8 + 8;
    filters * per_filter_overhead + layer_nnz * 8
}

/// Weight bytes for one layer descriptor under its declared format,
/// using the paper's per-filter CSR layout for convolutions.
pub fn layer_weight_bytes(desc: &LayerDescriptor) -> usize {
    match desc.format {
        WeightFormat::Dense => desc.weight_elems * 4,
        WeightFormat::Csr => match &desc.kind {
            LayerKind::Conv { geom, out_channels } => {
                per_filter_csr_bytes(out_channels * geom.in_channels, geom.k_h, desc.weight_nnz)
            }
            LayerKind::DepthwiseConv { geom, channels } => {
                per_filter_csr_bytes(*channels, geom.k_h, desc.weight_nnz)
            }
            LayerKind::Linear { out_features, .. } => {
                // One whole-matrix CSR: rows = out_features.
                desc.weight_nnz * 8 + (out_features + 1) * 8
            }
            // Stateless / normalisation layers stay dense.
            _ => desc.weight_elems * 4,
        },
        // 2-bit packed codes (4 per byte) plus the two per-layer scales.
        WeightFormat::Ternary => desc.weight_elems.div_ceil(4) + 8,
        // One byte per element plus the per-tensor activation scale.
        WeightFormat::Int8 => desc.weight_elems + 4,
    }
}

/// Computes the runtime footprint of a network from its flat layer
/// descriptors (as produced by
/// [`Network::descriptors`](crate::Network::descriptors)).
///
/// `use_im2col` charges the im2col matrix instead of the padded-input
/// copy as convolution scratch.
pub fn network_memory(descs: &[LayerDescriptor], use_im2col: bool) -> MemoryBreakdown {
    let weight_bytes = descs.iter().map(layer_weight_bytes).sum();
    let input_bytes = descs.first().map_or(0, |d| d.input_elems * 4);
    let activation_bytes = input_bytes + descs.iter().map(|d| d.output_elems * 4).sum::<usize>();
    let scratch_bytes = descs
        .iter()
        .map(|d| {
            if use_im2col {
                match &d.kind {
                    LayerKind::Conv { geom, .. } => geom.patch_len() * geom.out_positions() * 4,
                    LayerKind::DepthwiseConv { geom, .. } => {
                        geom.patch_len() * geom.out_positions() * 4
                    }
                    _ => 0,
                }
            } else {
                d.scratch_elems * 4
            }
        })
        .max()
        .unwrap_or(0);
    MemoryBreakdown {
        weight_bytes,
        activation_bytes,
        scratch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Layer, Network, ReLU};
    use cnn_stack_tensor::Conv2dGeometry;

    fn conv_desc(sparsity: f64, format: WeightFormat) -> LayerDescriptor {
        let elems = 64 * 64 * 9;
        let nnz = ((1.0 - sparsity) * elems as f64) as usize;
        LayerDescriptor {
            name: "conv".into(),
            kind: LayerKind::Conv {
                geom: Conv2dGeometry::new(64, 32, 32, 3, 3, 1, 1),
                out_channels: 64,
            },
            macs: 0,
            weight_elems: elems,
            weight_nnz: nnz,
            format,
            input_elems: 64 * 1024,
            output_elems: 64 * 1024,
            output_shape: vec![1, 64, 32, 32],
            scratch_elems: 64 * 34 * 34,
            parallel_grains: 64,
        }
    }

    #[test]
    fn csr_conv_weights_cost_more_than_dense_at_moderate_sparsity() {
        // The paper's headline: at ~77% sparsity, 3x3 per-filter CSR is
        // *bigger* than dense.
        let dense = layer_weight_bytes(&conv_desc(0.0, WeightFormat::Dense));
        let csr_77 = layer_weight_bytes(&conv_desc(0.77, WeightFormat::Csr));
        assert!(
            csr_77 > dense,
            "per-filter CSR at 77% sparsity ({csr_77}) should exceed dense ({dense})"
        );
    }

    #[test]
    fn csr_wins_only_at_extreme_sparsity() {
        let dense = layer_weight_bytes(&conv_desc(0.0, WeightFormat::Dense));
        let csr_99 = layer_weight_bytes(&conv_desc(0.99, WeightFormat::Csr));
        // Even at 99%: per-filter overhead = 40B/filter vs dense 36B/filter
        // → still larger. Exactly the paper's point for 3x3 filters.
        assert!(csr_99 > dense);
    }

    #[test]
    fn pointwise_csr_is_drastically_larger() {
        // MobileNet's 1x1 filters: dense = 4 B, CSR overhead = 24 B per
        // filter — the 2.7x blow-up Table IV shows for MobileNet.
        let elems = 128 * 128;
        let desc = LayerDescriptor {
            name: "pw".into(),
            kind: LayerKind::Conv {
                geom: Conv2dGeometry::new(128, 8, 8, 1, 1, 1, 0),
                out_channels: 128,
            },
            macs: 0,
            weight_elems: elems,
            weight_nnz: elems / 2,
            format: WeightFormat::Csr,
            input_elems: 0,
            output_elems: 0,
            output_shape: vec![1],
            scratch_elems: 0,
            parallel_grains: 128,
        };
        let dense = elems * 4;
        assert!(layer_weight_bytes(&desc) > 2 * dense);
    }

    #[test]
    fn network_memory_totals() {
        let net = Network::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, 0)),
            Box::new(ReLU::new()),
        ])
        .unwrap();
        let descs = net.descriptors(&[1, 3, 32, 32]);
        let m = network_memory(&descs, false);
        // Weights: 8*3*9*4 + bias excluded from descriptor weight_elems?
        // weight_elems counts only the weight tensor (216 elems).
        assert_eq!(m.weight_bytes, 8 * 27 * 4);
        // Activations: input (3*1024) + conv out (8*1024) + relu out (8*1024).
        assert_eq!(m.activation_bytes, (3 * 1024 + 8 * 1024 + 8 * 1024) * 4);
        // Scratch: padded input copy 3*34*34 floats.
        assert_eq!(m.scratch_bytes, 3 * 34 * 34 * 4);
        assert_eq!(
            m.total(),
            m.weight_bytes + m.activation_bytes + m.scratch_bytes
        );
        assert!(m.total_mb() > 0.0);
    }

    #[test]
    fn im2col_scratch_exceeds_padding_scratch() {
        let net = Network::new(vec![Box::new(Conv2d::new(3, 8, 3, 1, 1, 0))]).unwrap();
        let descs = net.descriptors(&[1, 3, 32, 32]);
        let direct = network_memory(&descs, false);
        let im2col = network_memory(&descs, true);
        assert!(im2col.scratch_bytes > direct.scratch_bytes);
    }

    #[test]
    fn conv_descriptor_scratch_is_padded_copy() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        let d = conv.descriptor(&[1, 3, 32, 32]);
        assert_eq!(d.scratch_elems, 3 * 34 * 34);
    }
}
