//! Batch-norm folding: the standard deployment-time transformation that
//! merges each inference-mode batch normalisation into the preceding
//! convolution's weights and bias.
//!
//! This is a "Data Formats and Algorithms" (stack layer 3) optimisation
//! in the paper's taxonomy: it changes how the same function is computed,
//! trading training flexibility for fewer inference passes over the
//! activations. After folding, the batch-norm layers are exact identities
//! and can be stripped with [`strip_identity_batchnorms`].
//!
//! Folding uses the *running* statistics, so it is only valid for
//! [`Phase::Eval`](crate::Phase::Eval) execution; fine-tune first, fold
//! last.

use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::depthwise::DepthwiseConv2d;
use crate::network::Network;
use crate::residual::ResidualBlock;

/// Folds `bn` into a producer whose weight tensor has `row` elements per
/// output channel.
fn fold_into(weights: &mut [f32], bias: &mut [f32], row: usize, bn: &BatchNorm2d) {
    let gamma = bn.gamma().value.data().to_vec();
    let beta = bn.beta().value.data().to_vec();
    let mean = bn.running_mean().to_vec();
    let var = bn.running_var().to_vec();
    let eps = bn.eps();
    for o in 0..bias.len() {
        let scale = gamma[o] / (var[o] + eps).sqrt();
        for w in &mut weights[o * row..(o + 1) * row] {
            *w *= scale;
        }
        bias[o] = (bias[o] - mean[o]) * scale + beta[o];
    }
}

pub(crate) fn fold_conv_bn_pair(conv: &mut Conv2d, bn: &mut BatchNorm2d) {
    let row = conv.in_channels() * conv.kernel() * conv.kernel();
    let mut weights = conv.weight().value.data().to_vec();
    let mut bias = conv.bias().value.data().to_vec();
    fold_into(&mut weights, &mut bias, row, bn);
    conv.weight_mut().value.data_mut().copy_from_slice(&weights);
    conv.bias_mut().value.data_mut().copy_from_slice(&bias);
    bn.reset_to_identity();
}

fn fold_dw_bn(dw: &mut DepthwiseConv2d, bn: &mut BatchNorm2d) {
    let row = dw.weight().value.len() / dw.channels();
    let mut weights = dw.weight().value.data().to_vec();
    let mut bias = dw.bias().value.data().to_vec();
    fold_into(&mut weights, &mut bias, row, bn);
    dw.weight_mut().value.data_mut().copy_from_slice(&weights);
    dw.bias_mut().value.data_mut().copy_from_slice(&bias);
    bn.reset_to_identity();
}

/// Folds every `Conv2d → BatchNorm2d` and `DepthwiseConv2d → BatchNorm2d`
/// pair (including those inside residual blocks) into the convolution,
/// leaving the batch-norm layers as exact inference identities. Returns
/// the number of batch norms folded.
///
/// Only adjacent pairs at the top level are folded (the three models
/// place their batch norms immediately after each convolution).
pub fn fold_batchnorm(net: &mut Network) -> usize {
    let mut folded = 0;
    for i in 0..net.len().saturating_sub(1) {
        // Split the layer list so both layers can be borrowed mutably.
        let (left, right) = net.layers_split_at_mut(i + 1);
        let producer = left[i].as_any_mut();
        let Some(bn) = right[0].as_any_mut().downcast_mut::<BatchNorm2d>() else {
            continue;
        };
        if bn.is_inference_identity() {
            continue;
        }
        if let Some(conv) = producer.downcast_mut::<Conv2d>() {
            if conv.out_channels() == bn.channels() {
                fold_conv_bn_pair(conv, bn);
                folded += 1;
            }
        } else if let Some(dw) = producer.downcast_mut::<DepthwiseConv2d>() {
            if dw.channels() == bn.channels() {
                fold_dw_bn(dw, bn);
                folded += 1;
            }
        }
    }
    // Residual blocks fold internally.
    for layer in net.layers_mut() {
        if let Some(block) = layer.as_any_mut().downcast_mut::<ResidualBlock>() {
            folded += block.fold_batchnorm();
        }
    }
    folded
}

/// Like [`fold_batchnorm`], but folds every top-level pair whose batch
/// norm is not already an *exact* identity — including near-identities
/// (e.g. freshly initialised layers, whose inference scale is
/// `1/sqrt(1 + eps)`) that [`fold_batchnorm`] skips as within tolerance.
/// After this, every foldable top-level batch norm is bit-exactly
/// `y = x * 1.0 + 0.0` and the plan compiler's fold-and-fuse pass can
/// absorb it. Returns the number folded.
pub(crate) fn fold_batchnorm_exact(net: &mut Network) -> usize {
    let mut folded = 0;
    for i in 0..net.len().saturating_sub(1) {
        let (left, right) = net.layers_split_at_mut(i + 1);
        let producer = left[i].as_any_mut();
        let Some(bn) = right[0].as_any_mut().downcast_mut::<BatchNorm2d>() else {
            continue;
        };
        if bn.is_exact_inference_identity() {
            continue;
        }
        if let Some(conv) = producer.downcast_mut::<Conv2d>() {
            if conv.out_channels() == bn.channels() {
                fold_conv_bn_pair(conv, bn);
                folded += 1;
            }
        } else if let Some(dw) = producer.downcast_mut::<DepthwiseConv2d>() {
            if dw.channels() == bn.channels() {
                fold_dw_bn(dw, bn);
                folded += 1;
            }
        }
    }
    for layer in net.layers_mut() {
        if let Some(block) = layer.as_any_mut().downcast_mut::<ResidualBlock>() {
            folded += block.fold_batchnorm();
        }
    }
    folded
}

/// Removes top-level batch-norm layers that are exact inference
/// identities (as left behind by [`fold_batchnorm`]). Returns the number
/// removed.
///
/// Stripping renumbers layers: any previously constructed
/// `PruningPlan`-style index map is
/// invalidated — strip only for final deployment.
pub fn strip_identity_batchnorms(net: &mut Network) -> usize {
    let mut removed = 0;
    let mut i = 0;
    while i < net.len() {
        let is_identity_bn = net.layers()[i]
            .as_any()
            .downcast_ref::<BatchNorm2d>()
            .is_some_and(BatchNorm2d::is_inference_identity);
        if is_identity_bn && net.len() > 1 {
            net.remove_layer(i).expect("index and length checked above");
            removed += 1;
        } else {
            i += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, DepthwiseConv2d, ExecConfig, Flatten, Linear, MaxPool2d, Phase, ReLU};
    use cnn_stack_tensor::Tensor;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_input(c: usize, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn([2, c, 8, 8], |_| rng.gen_range(-1.0..1.0))
    }

    /// A VGG-flavoured chain: conv-bn-relu x2 with a pool and classifier.
    fn conv_bn_chain() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 8, 3, 1, 1, 1)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(ReLU::new()),
            Box::new(Conv2d::new(8, 8, 3, 1, 1, 2)),
            Box::new(BatchNorm2d::new(8)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(8 * 16, 4, 3)),
        ])
        .unwrap()
    }

    /// A MobileNet-flavoured chain with a depthwise stage.
    fn dw_chain() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(3, 6, 3, 1, 1, 4)),
            Box::new(BatchNorm2d::new(6)),
            Box::new(ReLU::new()),
            Box::new(DepthwiseConv2d::new(6, 3, 1, 1, 5)),
            Box::new(BatchNorm2d::new(6)),
            Box::new(ReLU::new()),
        ])
        .unwrap()
    }

    /// Trains batch statistics away from the identity so folding is
    /// non-trivial.
    fn warm_batchnorms(net: &mut Network, c: usize) {
        let cfg = ExecConfig::default();
        for seed in 0..3 {
            let _ = net.forward(&random_input(c, 100 + seed), Phase::Train, &cfg);
        }
    }

    #[test]
    fn conv_chain_outputs_unchanged_by_folding() {
        let mut net = conv_bn_chain();
        warm_batchnorms(&mut net, 3);
        let x = random_input(3, 1);
        let cfg = ExecConfig::default();
        let before = net.forward(&x, Phase::Eval, &cfg);
        assert_eq!(fold_batchnorm(&mut net), 2);
        let after = net.forward(&x, Phase::Eval, &cfg);
        assert!(before.allclose(&after, 1e-4));
    }

    #[test]
    fn depthwise_stage_folds_too() {
        let mut net = dw_chain();
        warm_batchnorms(&mut net, 3);
        let x = random_input(3, 2);
        let cfg = ExecConfig::default();
        let before = net.forward(&x, Phase::Eval, &cfg);
        assert_eq!(fold_batchnorm(&mut net), 2);
        let after = net.forward(&x, Phase::Eval, &cfg);
        assert!(before.allclose(&after, 1e-4));
    }

    #[test]
    fn residual_block_folds_internally() {
        let mut net = Network::new(vec![Box::new(ResidualBlock::new(4, 8, 2, 9))]).unwrap();
        warm_batchnorms(&mut net, 4);
        let x = random_input(4, 3);
        let cfg = ExecConfig::default();
        let before = net.forward(&x, Phase::Eval, &cfg);
        // Two internal BNs + the projection shortcut's.
        assert_eq!(fold_batchnorm(&mut net), 3);
        let after = net.forward(&x, Phase::Eval, &cfg);
        assert!(before.allclose(&after, 1e-4));
    }

    #[test]
    fn folding_is_idempotent() {
        let mut net = conv_bn_chain();
        warm_batchnorms(&mut net, 3);
        assert_eq!(fold_batchnorm(&mut net), 2);
        assert_eq!(fold_batchnorm(&mut net), 0);
    }

    #[test]
    fn strip_removes_identity_bns_and_preserves_function() {
        let mut net = conv_bn_chain();
        warm_batchnorms(&mut net, 3);
        let x = random_input(3, 4);
        let cfg = ExecConfig::default();
        let before = net.forward(&x, Phase::Eval, &cfg);
        fold_batchnorm(&mut net);
        let layers_before = net.len();
        assert_eq!(strip_identity_batchnorms(&mut net), 2);
        assert_eq!(net.len(), layers_before - 2);
        let after = net.forward(&x, Phase::Eval, &cfg);
        assert!(before.allclose(&after, 1e-4));
        // No batch norms remain.
        assert!(net
            .layers()
            .iter()
            .all(|l| l.as_any().downcast_ref::<BatchNorm2d>().is_none()));
    }

    #[test]
    fn strip_without_fold_keeps_live_bns() {
        let mut net = conv_bn_chain();
        warm_batchnorms(&mut net, 3);
        assert_eq!(strip_identity_batchnorms(&mut net), 0);
    }

    #[test]
    fn fresh_bn_is_identity_and_skipped() {
        // An untrained BN (running stats 0/1) is already an inference
        // identity; folding must not touch it.
        let mut net = conv_bn_chain();
        let x = random_input(3, 5);
        let cfg = ExecConfig::default();
        let before = net.forward(&x, Phase::Eval, &cfg);
        assert_eq!(fold_batchnorm(&mut net), 0);
        let after = net.forward(&x, Phase::Eval, &cfg);
        assert!(before.allclose(&after, 0.0));
    }
}
