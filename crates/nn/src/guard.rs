//! Runtime guards, health reporting, and deterministic fault injection.
//!
//! The paper's cross-stack argument (§V) cuts both ways: a sparse format
//! or fast convolution that wins on paper can fail in practice —
//! numerical blow-up from aggressively quantised weights, pathological
//! CSR patterns, a starved pool worker. This module gives the inference
//! engine the vocabulary to talk about those failures:
//!
//! * [`GuardConfig`] — how much checking an
//!   [`InferenceSession`](crate::InferenceSession) performs at layer
//!   boundaries (off / boundary-check / paranoid).
//! * [`GuardReport`] / [`GuardViolation`] — what tripped, naming the
//!   *first* offending layer.
//! * [`HealthReport`] / [`DemotionRecord`] — what the session survived:
//!   guards tripped, kernel panics contained, pool retries, and which
//!   steps were demoted to a safer algorithm (Winograd→im2col,
//!   CSR→dense).
//! * `FaultPlan` — a deterministic fault injector, compiled only under
//!   the `fault-inject` cargo feature, able to corrupt a chosen layer's
//!   output with NaN/Inf, flip a weight bit, panic inside a chosen
//!   kernel invocation, and delay or crash a chosen pool worker. The
//!   default build compiles an inert zero-cost stand-in so the engine
//!   hot path carries no injection code.

use std::fmt;

/// How much runtime checking an inference session performs.
///
/// * `Off` — no checks; the hot path is byte-for-byte the PR-1 engine.
/// * `BoundaryCheck` — after every layer, scan the produced activation
///   for non-finite values and verify the fallback path produced the
///   planned shape; report the first offending layer.
/// * `Paranoid` — everything `BoundaryCheck` does, plus a pre-run scan
///   of the input tensor and of every parameter tensor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GuardConfig {
    /// No checks (the default): identical semantics to an unguarded run.
    #[default]
    Off,
    /// Finiteness + shape checks at every layer boundary.
    BoundaryCheck,
    /// Boundary checks plus input and parameter scans before each run.
    Paranoid,
}

impl GuardConfig {
    /// Whether per-layer boundary checks run.
    pub fn checks_boundaries(self) -> bool {
        !matches!(self, GuardConfig::Off)
    }

    /// Whether inputs and parameters are scanned before each run.
    pub fn checks_parameters(self) -> bool {
        matches!(self, GuardConfig::Paranoid)
    }
}

/// The species of non-finite value a guard found.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NonFiniteKind {
    /// A NaN.
    Nan,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

/// What exactly a guard observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuardViolation {
    /// A layer produced a non-finite activation.
    NonFiniteActivation {
        /// First non-finite value's species.
        kind: NonFiniteKind,
        /// Flat index of the first non-finite element.
        first_index: usize,
        /// Total non-finite elements in the activation.
        count: usize,
    },
    /// A fallback-path layer produced an output whose element count does
    /// not match the compiled plan.
    ShapeMismatch {
        /// Elements the plan expects the layer to produce.
        expected_elems: usize,
        /// Elements the layer actually produced.
        actual_elems: usize,
    },
    /// A parameter tensor holds a non-finite value (paranoid mode).
    NonFiniteWeight {
        /// Index of the parameter within the layer's parameter list.
        param: usize,
        /// Flat index of the first non-finite element.
        first_index: usize,
    },
    /// The input tensor holds a non-finite value (paranoid mode).
    NonFiniteInput {
        /// Flat index of the first non-finite element.
        first_index: usize,
    },
}

impl fmt::Display for GuardViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardViolation::NonFiniteActivation {
                kind,
                first_index,
                count,
            } => write!(
                f,
                "{count} non-finite activation(s), first {kind:?} at element {first_index}"
            ),
            GuardViolation::ShapeMismatch {
                expected_elems,
                actual_elems,
            } => write!(
                f,
                "layer produced {actual_elems} elements where the plan expects {expected_elems}"
            ),
            GuardViolation::NonFiniteWeight { param, first_index } => write!(
                f,
                "parameter {param} holds a non-finite value at element {first_index}"
            ),
            GuardViolation::NonFiniteInput { first_index } => {
                write!(f, "input holds a non-finite value at element {first_index}")
            }
        }
    }
}

/// A tripped guard, naming the first offending layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardReport {
    /// Index of the offending top-level layer (plan step).
    pub layer_index: usize,
    /// Its name, as recorded in the plan.
    pub layer_name: String,
    /// What the guard observed.
    pub violation: GuardViolation,
    /// The batch chunk that observed it, when the session was running
    /// batch-parallel; `None` on the sequential path.
    pub chunk: Option<usize>,
}

impl fmt::Display for GuardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guard tripped at layer {} ({}): {}",
            self.layer_index, self.layer_name, self.violation
        )?;
        if let Some(c) = self.chunk {
            write!(f, " [batch chunk {c}]")?;
        }
        Ok(())
    }
}

/// The safer algorithm a step was demoted to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemotionAction {
    /// The step's Winograd lowering was replaced with im2col+GEMM.
    WinogradToIm2col,
    /// The step's F(4×4, 3×3) Winograd lowering was replaced with the
    /// better-conditioned F(2×2, 3×3) transform — the first rung of
    /// the Winograd ladder (a further failure still has
    /// [`DemotionAction::WinogradToIm2col`] below it).
    Winograd4ToWinograd2,
    /// The step's FFT lowering was replaced with im2col+GEMM.
    FftToIm2col,
    /// The step's CSR sparse weights were densified.
    CsrToDense,
    /// The step's packed micro-kernel GEMM was replaced with the
    /// scalar blocked GEMM.
    PackedToBlocked,
    /// The step's quantised (ternary/int8) packed GEMM was replaced
    /// with the f32 packed GEMM on the dense master weights — the
    /// defined first rung of the quantised degradation ladder (for
    /// exactly-ternary weights the f32 product is bit-identical to the
    /// healthy quantised kernel).
    QuantisedToPacked,
}

/// Why a step was demoted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemotionReason {
    /// A boundary guard tripped on the step's output.
    GuardTripped,
    /// The step's kernel panicked and the panic was contained.
    KernelPanicked,
}

/// One recorded demotion: which step, what changed, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemotionRecord {
    /// Index of the demoted top-level layer (plan step).
    pub layer_index: usize,
    /// Its name, as recorded in the plan.
    pub layer_name: String,
    /// What the demotion changed.
    pub action: DemotionAction,
    /// What triggered it.
    pub reason: DemotionReason,
}

/// One recorded budget breach: a demotion rebuild re-ran the liveness
/// sizing and the resized arena no longer fits the plan's memory
/// budget. The session keeps running (correctness over fit — the
/// demoted algorithm is the only safe one left), but the overshoot is
/// surfaced here so operators can re-plan or raise the envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetBreachRecord {
    /// Index of the demoted top-level layer (plan step) whose new
    /// algorithm pushed the arena past the budget.
    pub layer_index: usize,
    /// Its name, as recorded in the plan.
    pub layer_name: String,
    /// The plan's byte budget.
    pub budget_bytes: usize,
    /// The arena bytes actually required after the demotion rebuild.
    pub peak_bytes: usize,
}

/// What a session (or a whole stack evaluation) survived.
///
/// Attached to [`SessionProfile`](crate::SessionProfile) and, through
/// the experiment runner, to every evaluated stack cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Boundary/paranoid guards that tripped.
    pub guards_tripped: u64,
    /// Kernel panics caught and contained (process kept alive).
    pub panics_contained: u64,
    /// Transient pool failures retried.
    pub retries: u64,
    /// Algorithm demotions applied, in order.
    pub demotions: Vec<DemotionRecord>,
    /// Demotion rebuilds whose re-sized arena exceeded the plan's
    /// memory budget, in order.
    pub budget_breaches: Vec<BudgetBreachRecord>,
}

impl HealthReport {
    /// `true` when nothing went wrong: no guards, panics, retries,
    /// demotions, or budget breaches.
    pub fn is_clean(&self) -> bool {
        self.guards_tripped == 0
            && self.panics_contained == 0
            && self.retries == 0
            && self.demotions.is_empty()
            && self.budget_breaches.is_empty()
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "health: {} guard(s) tripped, {} panic(s) contained, {} retry(ies), {} demotion(s), {} budget breach(es)",
            self.guards_tripped,
            self.panics_contained,
            self.retries,
            self.demotions.len(),
            self.budget_breaches.len()
        )
    }
}

/// Scans an activation slice for non-finite values.
///
/// Returns `(first_index, kind, count)` of the non-finite population, or
/// `None` when every element is finite. Single forward pass so the
/// boundary-check guard costs one read per element.
pub(crate) fn scan_non_finite(data: &[f32]) -> Option<(usize, NonFiniteKind, usize)> {
    // Fast path: almost every slab is clean. An early-exit `any` defeats
    // auto-vectorisation, so reduce fixed-size chunks branch-free (the
    // `|=` over the finiteness test compiles to SIMD compares) and take
    // one branch per chunk instead of one per element.
    const CHUNK: usize = 512;
    let mut start = data.len();
    for (ci, chunk) in data.chunks(CHUNK).enumerate() {
        let mut dirty = false;
        for v in chunk {
            dirty |= !v.is_finite();
        }
        if dirty {
            start = ci * CHUNK;
            break;
        }
    }
    if start == data.len() {
        return None;
    }
    // Slow path, only on a tripped guard: locate and classify the first
    // offender and count the whole non-finite population.
    let mut first: Option<(usize, NonFiniteKind)> = None;
    let mut count = 0usize;
    for (i, &v) in data[start..].iter().enumerate() {
        if !v.is_finite() {
            count += 1;
            if first.is_none() {
                let kind = if v.is_nan() {
                    NonFiniteKind::Nan
                } else if v > 0.0 {
                    NonFiniteKind::PosInf
                } else {
                    NonFiniteKind::NegInf
                };
                first = Some((start + i, kind));
            }
        }
    }
    first.map(|(i, k)| (i, k, count))
}

/// A serve-level batch fault, surfaced to the serving layer's batch
/// worker via [`FaultPlan::serve_batch_entry`]. These model failures
/// *outside* the engine's per-kernel containment — a crashed worker
/// thread, a batch stuck in a hung kernel, a batch running pathologically
/// slowly — which is exactly the territory the serving supervisor and
/// hung-batch watchdog exist to survive. The enum is defined under both
/// cfgs so the serving worker compiles identically; without
/// `fault-inject` the hook statically returns `None`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeBatchFault {
    /// Panic in the batch worker at batch entry, outside the engine's
    /// `catch_unwind` containment — the supervisor must resolve the
    /// batch's tickets and respawn the worker.
    Crash,
    /// Hang the worker mid-batch until the watchdog deposes it — the
    /// batch never completes on this worker.
    Hang,
    /// Stall the batch for the given nanoseconds of server-clock time
    /// before serving it (late) — the watchdog's post-hoc suspect path.
    Slow(u64),
}

/// Deterministic fault injection, compiled under `--features fault-inject`.
#[cfg(feature = "fault-inject")]
mod inject {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// One deterministic fault. `run` counts `run_into` invocations on
    /// the session (0-based), so faults target a specific pass.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Fault {
        /// Overwrite element 0 of layer `layer`'s output with NaN on
        /// invocation `run`.
        NanOutput {
            /// Target top-level layer index.
            layer: usize,
            /// Target session invocation.
            run: u64,
        },
        /// Overwrite element 0 of layer `layer`'s output with +∞ on
        /// invocation `run`.
        InfOutput {
            /// Target top-level layer index.
            layer: usize,
            /// Target session invocation.
            run: u64,
        },
        /// Flip bit `bit` of element `elem` of parameter `param` in
        /// layer `layer` (applied once, when the plan is installed).
        BitFlipWeight {
            /// Target top-level layer index.
            layer: usize,
            /// Parameter index within the layer.
            param: usize,
            /// Flat element index within the parameter tensor.
            elem: usize,
            /// Bit to flip (0–31 of the f32's IEEE-754 representation).
            bit: u8,
        },
        /// Panic inside layer `layer`'s kernel on invocation `run`.
        PanicInKernel {
            /// Target top-level layer index.
            layer: usize,
            /// Target session invocation.
            run: u64,
        },
        /// Sleep `millis` at the start of batch chunk `chunk`'s worker
        /// task on invocation `run`.
        DelayWorker {
            /// Target batch chunk index.
            chunk: usize,
            /// Target session invocation.
            run: u64,
            /// Delay in milliseconds.
            millis: u64,
        },
        /// Panic at the start of batch chunk `chunk`'s worker task on
        /// invocation `run` — outside the per-step containment, so it
        /// exercises the pool-level catch and the session's retry path.
        CrashWorker {
            /// Target batch chunk index.
            chunk: usize,
            /// Target session invocation.
            run: u64,
        },
        /// Panic in the *serving* batch worker at the start of its
        /// `batch`-th assembled batch (0-based, counted per worker) —
        /// outside every engine containment, so it kills the worker
        /// unless the serve supervisor catches it.
        CrashServeBatch {
            /// Target per-worker batch index.
            batch: u64,
        },
        /// Hang the serving batch worker on its `batch`-th batch: the
        /// batch never completes until the hung-batch watchdog fails it
        /// over and deposes the worker.
        HangServeBatch {
            /// Target per-worker batch index.
            batch: u64,
        },
        /// Stall the serving batch worker's `batch`-th batch for
        /// `nanos` of server-clock time before running it.
        SlowServeBatch {
            /// Target per-worker batch index.
            batch: u64,
            /// Stall length in nanoseconds of server-clock time.
            nanos: u64,
        },
    }

    #[derive(Debug)]
    struct Slot {
        fault: Fault,
        fired: AtomicBool,
    }

    /// An ordered set of one-shot faults armed on a session via
    /// [`InferenceSession::inject_faults`](crate::InferenceSession::inject_faults).
    ///
    /// Every fault fires at most once: after the engine demotes a step
    /// and re-runs, the retry executes clean, which is exactly the
    /// recovery the harness exists to prove.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        slots: Vec<Slot>,
    }

    impl FaultPlan {
        /// An empty plan.
        pub fn new() -> Self {
            Self::default()
        }

        fn with(mut self, fault: Fault) -> Self {
            self.slots.push(Slot {
                fault,
                fired: AtomicBool::new(false),
            });
            self
        }

        /// Adds a [`Fault::NanOutput`].
        pub fn nan_output(self, layer: usize, run: u64) -> Self {
            self.with(Fault::NanOutput { layer, run })
        }

        /// Adds a [`Fault::InfOutput`].
        pub fn inf_output(self, layer: usize, run: u64) -> Self {
            self.with(Fault::InfOutput { layer, run })
        }

        /// Adds a [`Fault::BitFlipWeight`].
        pub fn bit_flip_weight(self, layer: usize, param: usize, elem: usize, bit: u8) -> Self {
            assert!(bit < 32, "f32 has 32 bits");
            self.with(Fault::BitFlipWeight {
                layer,
                param,
                elem,
                bit,
            })
        }

        /// Adds a [`Fault::PanicInKernel`].
        pub fn panic_in_kernel(self, layer: usize, run: u64) -> Self {
            self.with(Fault::PanicInKernel { layer, run })
        }

        /// Adds a [`Fault::DelayWorker`].
        pub fn delay_worker(self, chunk: usize, run: u64, millis: u64) -> Self {
            self.with(Fault::DelayWorker { chunk, run, millis })
        }

        /// Adds a [`Fault::CrashWorker`].
        pub fn crash_worker(self, chunk: usize, run: u64) -> Self {
            self.with(Fault::CrashWorker { chunk, run })
        }

        /// Adds a [`Fault::CrashServeBatch`].
        pub fn crash_serve_batch(self, batch: u64) -> Self {
            self.with(Fault::CrashServeBatch { batch })
        }

        /// Adds a [`Fault::HangServeBatch`].
        pub fn hang_serve_batch(self, batch: u64) -> Self {
            self.with(Fault::HangServeBatch { batch })
        }

        /// Adds a [`Fault::SlowServeBatch`].
        pub fn slow_serve_batch(self, batch: u64, nanos: u64) -> Self {
            self.with(Fault::SlowServeBatch { batch, nanos })
        }

        /// Fires (at most once) the first un-fired fault matching `pred`.
        fn fire(&self, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
            for slot in &self.slots {
                if pred(&slot.fault) && !slot.fired.swap(true, Ordering::AcqRel) {
                    return Some(slot.fault);
                }
            }
            None
        }

        /// Applies every `BitFlipWeight` fault to the network, then
        /// refreshes CSR snapshots so sparse kernels see the flip too.
        pub(crate) fn apply_weight_faults(&self, net: &mut crate::network::Network) {
            use crate::layer::WeightFormat;
            let mut flipped = false;
            for slot in &self.slots {
                let Fault::BitFlipWeight {
                    layer,
                    param,
                    elem,
                    bit,
                } = slot.fault
                else {
                    continue;
                };
                if slot.fired.swap(true, Ordering::AcqRel) {
                    continue;
                }
                let layers = net.layers_mut();
                assert!(layer < layers.len(), "bit-flip target layer out of range");
                let mut params = layers[layer].params_mut();
                assert!(param < params.len(), "bit-flip target param out of range");
                let data = params[param].value.data_mut();
                assert!(elem < data.len(), "bit-flip target element out of range");
                data[elem] = f32::from_bits(data[elem].to_bits() ^ (1u32 << bit));
                flipped = true;
            }
            if flipped {
                // Re-running `set_format` re-snapshots the dense master,
                // so the flipped bit reaches the derived-format kernels
                // too: CSR values, and the quantised code panels (the
                // `params_mut` above already dropped those, so without
                // this the layer would silently fall back to f32; a flip
                // that makes the weights non-ternary leaves no snapshot
                // and the f32 fallback is the defined behaviour).
                for layer in net.layers_mut() {
                    layer.visit_mut(&mut |l| {
                        if let Some(c) = l.as_any_mut().downcast_mut::<crate::Conv2d>() {
                            let f = c.format();
                            if f != WeightFormat::Dense {
                                c.set_format(f);
                            }
                        } else if let Some(fc) = l.as_any_mut().downcast_mut::<crate::Linear>() {
                            let f = fc.format();
                            if f != WeightFormat::Dense {
                                fc.set_format(f);
                            }
                        }
                    });
                }
            }
        }

        /// Kernel-entry hook: panics if a `PanicInKernel` fault targets
        /// this layer and invocation.
        pub(crate) fn kernel_entry(&self, layer: usize, run: u64) {
            if self
                .fire(|f| matches!(f, Fault::PanicInKernel { layer: l, run: r } if *l == layer && *r == run))
                .is_some()
            {
                panic!("fault-inject: kernel panic in layer {layer} (run {run})");
            }
        }

        /// Output hook: corrupts element 0 of the produced activation
        /// (chunk 0 only, so parallel runs corrupt exactly one chunk).
        pub(crate) fn corrupt_output(&self, layer: usize, run: u64, chunk: usize, out: &mut [f32]) {
            if chunk != 0 || out.is_empty() {
                return;
            }
            let hit = self.fire(|f| {
                matches!(
                    f,
                    Fault::NanOutput { layer: l, run: r } | Fault::InfOutput { layer: l, run: r }
                        if *l == layer && *r == run
                )
            });
            match hit {
                Some(Fault::NanOutput { .. }) => out[0] = f32::NAN,
                Some(Fault::InfOutput { .. }) => out[0] = f32::INFINITY,
                _ => {}
            }
        }

        /// Serving-layer hook, called by the batch worker once per
        /// assembled batch (0-based per-worker index): returns the
        /// serve-level fault armed for this batch, if any. One-shot like
        /// every other fault, so a recycled worker's retry runs clean.
        pub fn serve_batch_entry(&self, batch: u64) -> Option<super::ServeBatchFault> {
            if self
                .fire(|f| matches!(f, Fault::CrashServeBatch { batch: b } if *b == batch))
                .is_some()
            {
                return Some(super::ServeBatchFault::Crash);
            }
            if self
                .fire(|f| matches!(f, Fault::HangServeBatch { batch: b } if *b == batch))
                .is_some()
            {
                return Some(super::ServeBatchFault::Hang);
            }
            if let Some(Fault::SlowServeBatch { nanos, .. }) =
                self.fire(|f| matches!(f, Fault::SlowServeBatch { batch: b, .. } if *b == batch))
            {
                return Some(super::ServeBatchFault::Slow(nanos));
            }
            None
        }

        /// Worker-entry hook: applies `DelayWorker` / `CrashWorker`
        /// faults targeting this chunk and invocation.
        pub(crate) fn worker_entry(&self, chunk: usize, run: u64) {
            if let Some(Fault::DelayWorker { millis, .. }) = self.fire(
                |f| matches!(f, Fault::DelayWorker { chunk: c, run: r, .. } if *c == chunk && *r == run),
            ) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            if self
                .fire(|f| matches!(f, Fault::CrashWorker { chunk: c, run: r } if *c == chunk && *r == run))
                .is_some()
            {
                panic!("fault-inject: worker crash on chunk {chunk} (run {run})");
            }
        }
    }
}

/// Inert stand-in compiled when `fault-inject` is off: every hook is an
/// empty `#[inline(always)]` body, so the default engine carries no
/// injection code and no runtime cost.
#[cfg(not(feature = "fault-inject"))]
mod inject {
    /// Zero-sized placeholder for the fault injector; the real type
    /// exists only under `--features fault-inject`. Braced (not a unit
    /// struct) so the engine constructs it via `Default` under both
    /// cfgs.
    #[derive(Debug, Default)]
    pub struct FaultPlan {}

    impl FaultPlan {
        // Only `inject_faults` (feature-gated) calls this; the stand-in
        // keeps the signature so the engine compiles identically.
        #[allow(dead_code)]
        #[inline(always)]
        pub(crate) fn apply_weight_faults(&self, _net: &mut crate::network::Network) {}

        #[inline(always)]
        pub(crate) fn kernel_entry(&self, _layer: usize, _run: u64) {}

        #[inline(always)]
        pub(crate) fn corrupt_output(
            &self,
            _layer: usize,
            _run: u64,
            _chunk: usize,
            _out: &mut [f32],
        ) {
        }

        #[inline(always)]
        pub(crate) fn worker_entry(&self, _chunk: usize, _run: u64) {}

        /// Inert serving-layer hook: never fires without `fault-inject`.
        #[inline(always)]
        pub fn serve_batch_entry(&self, _batch: u64) -> Option<super::ServeBatchFault> {
            None
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use inject::{Fault, FaultPlan};

#[cfg(not(feature = "fault-inject"))]
pub use inject::FaultPlan;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_first_offender_and_counts() {
        let data = [1.0, f32::NEG_INFINITY, f32::NAN, 2.0];
        let (idx, kind, count) = scan_non_finite(&data).expect("two non-finite values");
        assert_eq!(idx, 1);
        assert_eq!(kind, NonFiniteKind::NegInf);
        assert_eq!(count, 2);
        assert_eq!(scan_non_finite(&[0.0, -5.0, f32::MAX]), None);
        let (idx, kind, _) = scan_non_finite(&[f32::INFINITY]).expect("inf");
        assert_eq!((idx, kind), (0, NonFiniteKind::PosInf));
    }

    #[test]
    fn guard_config_levels_nest() {
        assert!(!GuardConfig::Off.checks_boundaries());
        assert!(GuardConfig::BoundaryCheck.checks_boundaries());
        assert!(!GuardConfig::BoundaryCheck.checks_parameters());
        assert!(GuardConfig::Paranoid.checks_boundaries());
        assert!(GuardConfig::Paranoid.checks_parameters());
        assert_eq!(GuardConfig::default(), GuardConfig::Off);
    }

    #[test]
    fn health_report_clean_and_display() {
        let mut h = HealthReport::default();
        assert!(h.is_clean());
        h.guards_tripped = 1;
        h.demotions.push(DemotionRecord {
            layer_index: 3,
            layer_name: "conv3".to_string(),
            action: DemotionAction::WinogradToIm2col,
            reason: DemotionReason::GuardTripped,
        });
        assert!(!h.is_clean());
        let s = h.to_string();
        assert!(s.contains("1 guard"));
        assert!(s.contains("1 demotion"));
    }

    #[test]
    fn guard_report_display_names_layer() {
        let r = GuardReport {
            layer_index: 4,
            layer_name: "conv2d(64->128)".to_string(),
            violation: GuardViolation::NonFiniteActivation {
                kind: NonFiniteKind::Nan,
                first_index: 17,
                count: 2,
            },
            chunk: Some(1),
        };
        let s = r.to_string();
        assert!(s.contains("layer 4"));
        assert!(s.contains("conv2d(64->128)"));
        assert!(s.contains("element 17"));
        assert!(s.contains("chunk 1"));
    }

    /// The CI satellite: the default build must not compile injection
    /// code in. This test is itself compiled only without the feature,
    /// and asserts the cfg really is off.
    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn default_build_excludes_fault_injection() {
        // Compiling this test at all proves the cfg is off; the
        // stand-in FaultPlan must be a zero-sized type: no slots, no
        // cost. (The real injector holds fault slots and is never ZST.)
        assert_eq!(std::mem::size_of::<FaultPlan>(), 0);
    }
}
