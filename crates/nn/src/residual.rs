//! The ResNet residual block (He et al.), as used by the paper's
//! ResNet-18 (§IV-A): two 3×3 convolutions with batch norm, a skip
//! connection, and an optional 1×1 downsample projection.

use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::descriptor::{LayerDescriptor, LayerKind};
use crate::layer::{ExecConfig, Layer, Param, Phase, WeightFormat};
use crate::ReLU;
use cnn_stack_tensor::Tensor;

/// A two-convolution residual block:
/// `y = relu( bn2(conv2( relu(bn1(conv1(x))) )) + shortcut(x) )`.
///
/// When `stride > 1` or the channel count changes, the shortcut is a 1×1
/// strided convolution followed by batch norm (the standard "projection
/// shortcut"); otherwise it is the identity.
///
/// Only the *inner* channel (conv1's output) is prunable without breaking
/// the skip-connection arithmetic — exactly the constraint the paper notes
/// ("only layers between the shortcuts can be pruned", §V-B.2).
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{ExecConfig, Layer, Phase, ResidualBlock};
/// use cnn_stack_tensor::Tensor;
///
/// let mut block = ResidualBlock::new(16, 32, 2, 7);
/// let y = block.forward(&Tensor::zeros([1, 16, 8, 8]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(y.shape().dims(), &[1, 32, 4, 4]);
/// ```
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: ReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    /// Mask of the final ReLU for backward.
    cached_final_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a block mapping `in_channels → out_channels` with the given
    /// stride on the first convolution.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, seed: u64) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, seed);
        let bn1 = BatchNorm2d::new(out_channels);
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, seed.wrapping_add(1));
        let bn2 = BatchNorm2d::new(out_channels);
        let shortcut = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(
                    in_channels,
                    out_channels,
                    1,
                    stride,
                    0,
                    seed.wrapping_add(2),
                ),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        ResidualBlock {
            conv1,
            bn1,
            relu1: ReLU::new(),
            conv2,
            bn2,
            shortcut,
            cached_final_mask: None,
        }
    }

    /// The first (prunable) convolution.
    pub fn conv1(&self) -> &Conv2d {
        &self.conv1
    }

    /// Mutable first convolution.
    pub fn conv1_mut(&mut self) -> &mut Conv2d {
        &mut self.conv1
    }

    /// The first batch norm (over the prunable inner channel).
    pub fn bn1_mut(&mut self) -> &mut BatchNorm2d {
        &mut self.bn1
    }

    /// The second convolution (its *input* channel is the prunable one).
    pub fn conv2(&self) -> &Conv2d {
        &self.conv2
    }

    /// Mutable second convolution.
    pub fn conv2_mut(&mut self) -> &mut Conv2d {
        &mut self.conv2
    }

    /// Mutable access to the projection-shortcut convolution, if this
    /// block has one.
    pub fn shortcut_conv_mut(&mut self) -> Option<&mut Conv2d> {
        self.shortcut.as_mut().map(|(conv, _)| conv)
    }

    /// Number of prunable inner channels.
    pub fn inner_channels(&self) -> usize {
        self.conv1.out_channels()
    }

    /// Prunes inner channel `c`: removes conv1's output channel, bn1's
    /// channel, and conv2's input channel. The skip path is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or only one inner channel remains.
    pub fn prune_inner_channel(&mut self, c: usize) {
        self.conv1.remove_out_channel(c);
        self.bn1.remove_channel(c);
        self.conv2.remove_in_channel(c);
    }

    /// Folds the block's batch norms into its convolutions (inference
    /// statistics), leaving them as exact identities. Returns the number
    /// folded. See [`crate::fold::fold_batchnorm`].
    pub fn fold_batchnorm(&mut self) -> usize {
        let mut folded = 0;
        if !self.bn1.is_inference_identity() {
            crate::fold::fold_conv_bn_pair(&mut self.conv1, &mut self.bn1);
            folded += 1;
        }
        if !self.bn2.is_inference_identity() {
            crate::fold::fold_conv_bn_pair(&mut self.conv2, &mut self.bn2);
            folded += 1;
        }
        if let Some((conv, bn)) = &mut self.shortcut {
            if !bn.is_inference_identity() {
                crate::fold::fold_conv_bn_pair(conv, bn);
                folded += 1;
            }
        }
        folded
    }

    /// Applies a weight format to every convolution in the block.
    pub fn set_format(&mut self, format: WeightFormat) {
        self.conv1.set_format(format);
        self.conv2.set_format(format);
        if let Some((conv, _)) = &mut self.shortcut {
            conv.set_format(format);
        }
    }
}

impl Layer for ResidualBlock {
    fn min_input_rank(&self) -> usize {
        4
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> String {
        format!(
            "resblock({}->{}{})",
            self.conv1.in_channels(),
            self.conv2.out_channels(),
            if self.shortcut.is_some() {
                ", proj"
            } else {
                ""
            }
        )
    }

    fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor {
        let mut main = self.conv1.forward(input, phase, cfg);
        main = self.bn1.forward(&main, phase, cfg);
        main = self.relu1.forward(&main, phase, cfg);
        main = self.conv2.forward(&main, phase, cfg);
        main = self.bn2.forward(&main, phase, cfg);
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(input, phase, cfg);
                bn.forward(&s, phase, cfg)
            }
            None => input.clone(),
        };
        let mut out = &main + &skip;
        if phase == Phase::Train {
            self.cached_final_mask = Some(out.data().iter().map(|&v| v > 0.0).collect());
        }
        out.map_inplace(|v| v.max(0.0));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .cached_final_mask
            .take()
            .expect("backward without a Train-phase forward");
        let mut g = grad_out.clone();
        for (v, &pass) in g.data_mut().iter_mut().zip(&mask) {
            if !pass {
                *v = 0.0;
            }
        }
        // Main path.
        let mut gm = self.bn2.backward(&g);
        gm = self.conv2.backward(&gm);
        gm = self.relu1.backward(&gm);
        gm = self.bn1.backward(&gm);
        gm = self.conv1.backward(&gm);
        // Skip path.
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g);
                conv.backward(&t)
            }
            None => g,
        };
        &gm + &gs
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params());
        params.extend(self.bn1.params());
        params.extend(self.conv2.params());
        params.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.shortcut {
            params.extend(conv.params());
            params.extend(bn.params());
        }
        params
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.conv1.params_mut());
        params.extend(self.bn1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.shortcut {
            params.extend(conv.params_mut());
            params.extend(bn.params_mut());
        }
        params
    }

    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor {
        let children = self.child_descriptors(input_shape);
        let last = children.last().expect("block has children");
        LayerDescriptor {
            name: self.name(),
            kind: LayerKind::Composite,
            macs: children.iter().map(|d| d.macs).sum(),
            weight_elems: children.iter().map(|d| d.weight_elems).sum(),
            weight_nnz: children.iter().map(|d| d.weight_nnz).sum(),
            format: self.conv1.format(),
            input_elems: input_shape.iter().product(),
            output_elems: last.output_elems,
            output_shape: last.output_shape.clone(),
            scratch_elems: children.iter().map(|d| d.scratch_elems).max().unwrap_or(0),
            parallel_grains: self.conv1.out_channels(),
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
        self.conv1.visit_mut(f);
        self.bn1.visit_mut(f);
        self.relu1.visit_mut(f);
        self.conv2.visit_mut(f);
        self.bn2.visit_mut(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_mut(f);
            bn.visit_mut(f);
        }
    }

    fn forward_into_supported(&self, cfg: &ExecConfig) -> bool {
        self.conv1.forward_into_supported(cfg)
            && self.conv2.forward_into_supported(cfg)
            && self
                .shortcut
                .as_ref()
                .is_none_or(|(conv, _)| conv.forward_into_supported(cfg))
    }

    fn forward_scratch_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let geom1 = self.conv1.geometry(h, w);
        let main_elems = n * self.conv1.out_channels() * geom1.out_h * geom1.out_w;
        let shape1 = [n, self.conv1.out_channels(), geom1.out_h, geom1.out_w];
        let geom2 = self.conv2.geometry(geom1.out_h, geom1.out_w);
        let out_elems = n * self.conv2.out_channels() * geom2.out_h * geom2.out_w;
        let skip_elems = if self.shortcut.is_some() {
            out_elems
        } else {
            0
        };
        let mut child = self
            .conv1
            .forward_scratch_elems(input_shape, cfg)
            .max(self.conv2.forward_scratch_elems(&shape1, cfg));
        if let Some((conv, _)) = &self.shortcut {
            child = child.max(conv.forward_scratch_elems(input_shape, cfg));
        }
        main_elems + skip_elems + child
    }

    fn forward_workspace_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        // Same layout as `forward_scratch_elems` — [conv1 output | skip
        // buffer | child region] — but the child region is sized by the
        // children's steady-state workspace (panels cached by
        // `prepare()`), not their conservative repack bound.
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let geom1 = self.conv1.geometry(h, w);
        let main_elems = n * self.conv1.out_channels() * geom1.out_h * geom1.out_w;
        let shape1 = [n, self.conv1.out_channels(), geom1.out_h, geom1.out_w];
        let geom2 = self.conv2.geometry(geom1.out_h, geom1.out_w);
        let out_elems = n * self.conv2.out_channels() * geom2.out_h * geom2.out_w;
        let skip_elems = if self.shortcut.is_some() {
            out_elems
        } else {
            0
        };
        let mut child = self
            .conv1
            .forward_workspace_elems(input_shape, cfg)
            .max(self.conv2.forward_workspace_elems(&shape1, cfg));
        if let Some((conv, _)) = &self.shortcut {
            child = child.max(conv.forward_workspace_elems(input_shape, cfg));
        }
        main_elems + skip_elems + child
    }

    fn forward_into(
        &self,
        input: &[f32],
        input_shape: &[usize],
        out: &mut [f32],
        scratch: &mut [f32],
        cfg: &ExecConfig,
    ) {
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let geom1 = self.conv1.geometry(h, w);
        let plane1 = geom1.out_h * geom1.out_w;
        let main_elems = n * self.conv1.out_channels() * plane1;
        let shape1 = [n, self.conv1.out_channels(), geom1.out_h, geom1.out_w];
        let geom2 = self.conv2.geometry(geom1.out_h, geom1.out_w);
        let plane2 = geom2.out_h * geom2.out_w;
        let skip_elems = if self.shortcut.is_some() {
            out.len()
        } else {
            0
        };
        // Scratch layout: [conv1 output | skip buffer | child scratch].
        let (buf_a, rest) = scratch.split_at_mut(main_elems);
        let (skip_buf, child_scratch) = rest.split_at_mut(skip_elems);

        // Main path: conv1 -> bn1 -> relu -> conv2 -> bn2 (into `out`).
        self.conv1
            .forward_into(input, input_shape, buf_a, child_scratch, cfg);
        self.bn1.eval_inplace(buf_a, n, plane1);
        for v in buf_a.iter_mut() {
            *v = v.max(0.0);
        }
        self.conv2
            .forward_into(buf_a, &shape1, out, child_scratch, cfg);
        self.bn2.eval_inplace(out, n, plane2);

        // Skip path, then the fused residual add + final ReLU.
        match &self.shortcut {
            Some((conv, bn)) => {
                conv.forward_into(input, input_shape, skip_buf, child_scratch, cfg);
                bn.eval_inplace(skip_buf, n, plane2);
                for (o, &s) in out.iter_mut().zip(skip_buf.iter()) {
                    *o = (*o + s).max(0.0);
                }
            }
            None => {
                for (o, &s) in out.iter_mut().zip(input.iter()) {
                    *o = (*o + s).max(0.0);
                }
            }
        }
    }

    fn child_descriptors(&self, input_shape: &[usize]) -> Vec<LayerDescriptor> {
        let mut out = Vec::new();
        let d1 = self.conv1.descriptor(input_shape);
        let shape1 = d1.output_shape.clone();
        out.push(d1);
        out.push(self.bn1.descriptor(&shape1));
        out.push(self.relu1.descriptor(&shape1));
        let d2 = self.conv2.descriptor(&shape1);
        let shape2 = d2.output_shape.clone();
        out.push(d2);
        out.push(self.bn2.descriptor(&shape2));
        if let Some((conv, bn)) = &self.shortcut {
            let ds = conv.descriptor(input_shape);
            let shapes = ds.output_shape.clone();
            out.push(ds);
            out.push(bn.descriptor(&shapes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn identity_shortcut_shape() {
        let mut b = ResidualBlock::new(8, 8, 1, 0);
        let y = b.forward(
            &Tensor::zeros([1, 8, 8, 8]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 8, 8, 8]);
        assert!(b.shortcut.is_none());
    }

    #[test]
    fn projection_shortcut_shape() {
        let mut b = ResidualBlock::new(8, 16, 2, 0);
        let y = b.forward(
            &Tensor::zeros([1, 8, 8, 8]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 16, 4, 4]);
        assert!(b.shortcut.is_some());
    }

    #[test]
    fn skip_passes_signal_when_main_path_is_zero() {
        let mut b = ResidualBlock::new(4, 4, 1, 0);
        // Zero both conv weights: output = relu(identity(x)).
        b.conv1_mut().weight_mut().value.fill(0.0);
        b.conv2_mut().weight_mut().value.fill(0.0);
        let x = random([1, 4, 5, 5], 1);
        let y = b.forward(&x, Phase::Eval, &ExecConfig::default());
        let want = x.map(|v| v.max(0.0));
        assert!(y.allclose(&want, 1e-5));
    }

    #[test]
    fn threads_agree_with_serial() {
        let mut b = ResidualBlock::new(6, 12, 2, 3);
        let x = random([2, 6, 8, 8], 2);
        let a = b.forward(&x, Phase::Eval, &ExecConfig::serial());
        let c = b.forward(&x, Phase::Eval, &ExecConfig::with_threads(4));
        assert!(a.allclose(&c, 1e-4));
    }

    #[test]
    fn gradient_check_through_block() {
        let mut b = ResidualBlock::new(2, 2, 1, 5);
        let x = random([1, 2, 4, 4], 3);
        let cfg = ExecConfig::serial();
        let y = b.forward(&x, Phase::Train, &cfg);
        let ones = Tensor::ones(y.shape().dims().to_vec());
        let dx = b.backward(&ones);
        let eps = 1e-2;
        for &i in &[0usize, 11, 23, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            // Batch statistics change with the input, so compare against a
            // Train-phase forward (fresh clones keep running stats equal).
            let lp = b.forward(&xp, Phase::Train, &cfg).sum();
            b.cached_final_mask = None;
            let lm = b.forward(&xm, Phase::Train, &cfg).sum();
            b.cached_final_mask = None;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 0.1,
                "dX[{i}]: fd={fd} analytic={}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn prune_inner_channel_keeps_shapes_consistent() {
        let mut b = ResidualBlock::new(4, 8, 1, 7);
        assert_eq!(b.inner_channels(), 8);
        b.prune_inner_channel(3);
        b.prune_inner_channel(0);
        assert_eq!(b.inner_channels(), 6);
        // Output channel count is unchanged (skip arithmetic preserved).
        let y = b.forward(
            &Tensor::zeros([1, 4, 6, 6]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[1, 8, 6, 6]);
    }

    #[test]
    fn params_include_shortcut() {
        let mut plain = ResidualBlock::new(4, 4, 1, 0);
        let mut proj = ResidualBlock::new(4, 8, 2, 0);
        assert_eq!(plain.params_mut().len(), 8); // 2 convs + 2 bns, 2 each
        assert_eq!(proj.params_mut().len(), 12);
    }

    #[test]
    fn descriptor_aggregates_children() {
        let b = ResidualBlock::new(4, 8, 2, 0);
        let d = b.descriptor(&[1, 4, 8, 8]);
        let children = b.child_descriptors(&[1, 4, 8, 8]);
        assert_eq!(d.macs, children.iter().map(|c| c.macs).sum::<u64>());
        assert_eq!(d.output_shape, vec![1, 8, 4, 4]);
        assert_eq!(children.len(), 7);
    }
}
