//! The `Layer` trait and the execution-configuration types shared by all
//! layers.

use crate::descriptor::LayerDescriptor;
use crate::error::Error;
use cnn_stack_obs::ObsLevel;
use cnn_stack_parallel::Schedule;
use cnn_stack_tensor::{GemmAlgorithm, GemmEpilogue, GemmPlan, Tensor};

/// Whether a forward pass is part of training (caches activations for the
/// backward pass, uses batch statistics) or pure inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Training: layers cache whatever their backward pass needs.
    Train,
    /// Inference: no caching, running statistics, maximum speed.
    Eval,
}

/// Which convolution algorithm the systems layer selects (§IV-C/D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ConvAlgorithm {
    /// Direct (7-loop) convolution — the paper's baseline kernels.
    #[default]
    Direct,
    /// Lower to im2col, then one dense GEMM — the CLBlast pipeline.
    Im2col,
    /// F(2×2, 3×3) Winograd transform (the §II-B layer-3 candidate the
    /// paper names but does not evaluate). Applies to dense 3×3 stride-1
    /// convolutions; other layers fall back to the direct kernel.
    Winograd,
    /// F(4×4, 3×3) Winograd transform: 6×6 tiles, 36 multiplies per 16
    /// outputs — 4× fewer than direct and 16/9 fewer than F(2×2), at a
    /// looser (still bounded) error budget from the worse-conditioned
    /// {0, ±1, ±2} interpolation points. Applies to dense 3×3 stride-1
    /// convolutions; other layers fall back to the direct kernel.
    WinogradF4,
    /// Real 2-D FFT convolution: frequency-domain pointwise
    /// multiply-accumulate over channels on power-of-two planes. Wins
    /// on large kernels over large feature maps, where im2col pays a
    /// k²-fold lowering copy; costs a large workspace (per-channel-pair
    /// filter spectra) that the memory planner accounts. Applies to
    /// dense weights at any kernel/stride/padding; quantised or CSR
    /// layers fall back to their own kernels.
    Fft,
}

/// How a layer's weights are stored at inference time (§IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WeightFormat {
    /// Contiguous dense array.
    #[default]
    Dense,
    /// Compressed Sparse Row; pays per-nonzero index overhead.
    Csr,
    /// 2-bit packed ternary codes with two per-layer magnitudes (the TTQ
    /// output format). Value-preserving: the dense master already holds
    /// exactly {−Wₙ, 0, +Wₚ}, so the quantised kernel and the dense
    /// fallback produce identical bits. If the weights are *not* exactly
    /// ternary when this format is selected, no quant snapshot is built
    /// and every evaluation path falls back to the dense f32 kernels
    /// (defined, value-correct behaviour).
    Ternary,
    /// Per-tensor int8 weight codes with an f32 scale; activations are
    /// quantised per call. Lossy (≈0.4% per-weight rounding at int8),
    /// so the plan compiler only proposes the int8 kernel for layers a
    /// caller has explicitly put in this format.
    Int8,
}

/// Shared handle to a layer's quantised weight snapshot, exported and
/// adopted across serving replicas exactly like the f32
/// [`packed_panels`](Layer::packed_panels) set. The buffers are
/// immutable for the lifetime of the handle: invalidation drops the
/// `Arc`, never mutates through it.
#[derive(Clone, Debug)]
pub enum QuantPanels {
    /// 2-bit ternary B-panel codes (one `u32` per reduction step per
    /// NR-panel, see `pack_b_ternary_transposed_into`) plus the two
    /// per-layer magnitudes (`negative` stored positive).
    Ternary {
        /// Packed sign codes.
        codes: std::sync::Arc<Vec<u32>>,
        /// Value encoded by `0b01`.
        positive: f32,
        /// Magnitude encoded by `0b10`.
        negative: f32,
    },
    /// Int8 B-panels (NR-column i8 layout) plus the weight scale
    /// `qw = 127 / max|W|`.
    Int8 {
        /// Quantised weight panels.
        codes: std::sync::Arc<Vec<i8>>,
        /// Weight quantisation scale.
        scale: f32,
    },
}

/// Scans a weight slice for exact ternary structure: at most one
/// distinct positive magnitude and one distinct negative magnitude, all
/// values finite. Returns `(positive, negative)` magnitudes (both
/// non-negative; zero when that sign is absent), or `None` when the
/// weights are not ternary — the quantised snapshot is then skipped and
/// the layer keeps its dense fallback.
pub(crate) fn scan_ternary(data: &[f32]) -> Option<(f32, f32)> {
    let mut positive = 0.0f32;
    let mut negative = 0.0f32;
    for &v in data {
        if !v.is_finite() {
            return None;
        }
        if v > 0.0 {
            if positive == 0.0 {
                positive = v;
            } else if positive != v {
                return None;
            }
        } else if v < 0.0 {
            if negative == 0.0 {
                negative = -v;
            } else if negative != -v {
                return None;
            }
        }
    }
    Some((positive, negative))
}

/// How the engine lays out the activation/workspace arena for a
/// compiled session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ArenaStrategy {
    /// Liveness-coloured single arena: activations and workspaces with
    /// disjoint live intervals share bytes (see [`crate::liveness`]).
    #[default]
    Coloured,
    /// The legacy layout — two ping-pong activation buffers sized by
    /// the largest step plus one conservative scratch region. Kept as
    /// a bit-exact baseline for benchmarks and differential tests.
    PingPong,
}

/// Execution configuration for a forward pass: the knobs of the paper's
/// "Systems Techniques" stack layer.
///
/// # Example
///
/// ```
/// use cnn_stack_nn::ExecConfig;
///
/// let cfg = ExecConfig::with_threads(4);
/// assert_eq!(cfg.threads, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecConfig {
    /// Worker thread count for the convolution/linear outer loops.
    pub threads: usize,
    /// Loop schedule (the paper uses dynamic scheduling).
    pub schedule: Schedule,
    /// Convolution lowering.
    pub conv_algo: ConvAlgorithm,
    /// GEMM kernel for the im2col-convolution and linear layers. The
    /// default is [`GemmAlgorithm::Packed`], the BLIS-style packed
    /// micro-kernel engine; [`GemmAlgorithm::Blocked`] is the scalar
    /// fallback the degradation ladder demotes to.
    pub gemm_algo: GemmAlgorithm,
    /// Fuse a trailing ReLU into this layer's kernel (set by the
    /// fold-and-fuse plan pass when a `conv → [identity BN] → ReLU` or
    /// `linear → ReLU` chain collapses into one step). Every conv/linear
    /// evaluation path honours it — the packed engine via the GEMM
    /// write-back epilogue, the scalar paths by clamping each finished
    /// output block — so a demoted fused step stays correct. The
    /// activation is `max(x, 0)`, bit-identical to the standalone
    /// [`crate::ReLU`] layer (including the NaN-flush).
    pub fused_relu: bool,
    /// Observability level for sessions compiled from this config:
    /// [`ObsLevel::Off`] (default) pays one relaxed atomic load per
    /// disabled instrument, [`ObsLevel::Metrics`] counts into the
    /// session's registry, [`ObsLevel::Trace`] additionally records
    /// per-step spans into a bounded ring for Chrome-trace export.
    pub observer: ObsLevel,
    /// Peak arena budget in bytes for plans compiled from this config.
    /// `None` (default) plans for time only. When set, the plan
    /// compiler solves "fastest plan under this many bytes", demoting
    /// workspace-hungry algorithm choices until the liveness-coloured
    /// footprint fits, and fails with
    /// [`crate::error::PlanError::BudgetInfeasible`] when no choice of
    /// algorithms can fit.
    pub plan_budget: Option<usize>,
    /// Arena layout strategy for sessions built from this config.
    pub arena: ArenaStrategy,
}

impl ExecConfig {
    /// Serial execution with direct convolutions — the paper's 1-thread
    /// baseline.
    pub fn serial() -> Self {
        ExecConfig {
            threads: 1,
            schedule: Schedule::Dynamic { chunk: 1 },
            conv_algo: ConvAlgorithm::Direct,
            gemm_algo: GemmAlgorithm::Packed,
            fused_relu: false,
            observer: ObsLevel::Off,
            plan_budget: None,
            arena: ArenaStrategy::Coloured,
        }
    }

    /// Direct convolutions on `threads` workers with dynamic scheduling.
    ///
    /// This is the panicking shim kept for tests and quick scripts;
    /// prefer [`ExecConfig::builder`], which reports invalid
    /// configurations as [`Error`] values instead.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread required");
        ExecConfig {
            threads,
            ..ExecConfig::serial()
        }
    }

    /// The GEMM write-back epilogue this config implies (the packed
    /// engine applies [`fused_relu`](ExecConfig::fused_relu) there).
    pub fn epilogue(&self) -> GemmEpilogue {
        if self.fused_relu {
            GemmEpilogue::Relu
        } else {
            GemmEpilogue::None
        }
    }

    /// Starts a validating builder seeded with the serial defaults.
    ///
    /// # Example
    ///
    /// ```
    /// use cnn_stack_nn::{ConvAlgorithm, ExecConfig};
    ///
    /// let cfg = ExecConfig::builder()
    ///     .threads(8)
    ///     .conv_algo(ConvAlgorithm::Im2col)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.threads, 8);
    /// assert!(ExecConfig::builder().threads(0).build().is_err());
    /// ```
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder {
            config: ExecConfig::serial(),
        }
    }
}

/// Validating builder for [`ExecConfig`]; see [`ExecConfig::builder`].
#[derive(Clone, Debug)]
pub struct ExecConfigBuilder {
    config: ExecConfig,
}

impl ExecConfigBuilder {
    /// Sets the worker thread count (validated at [`build`](Self::build)).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the parallel loop schedule.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the convolution lowering algorithm.
    pub fn conv_algo(mut self, algo: ConvAlgorithm) -> Self {
        self.config.conv_algo = algo;
        self
    }

    /// Sets the GEMM kernel used by im2col convolutions and linear layers.
    pub fn gemm_algo(mut self, algo: GemmAlgorithm) -> Self {
        self.config.gemm_algo = algo;
        self
    }

    /// Sets the observability level for sessions built from this config.
    pub fn observer(mut self, level: ObsLevel) -> Self {
        self.config.observer = level;
        self
    }

    /// Caps the peak arena footprint of compiled plans at `bytes`.
    pub fn plan_budget(mut self, bytes: usize) -> Self {
        self.config.plan_budget = Some(bytes);
        self
    }

    /// Selects the arena layout strategy for compiled sessions.
    pub fn arena(mut self, strategy: ArenaStrategy) -> Self {
        self.config.arena = strategy;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `threads == 0` or the chunk
    /// size of a static/dynamic schedule is zero.
    pub fn build(self) -> Result<ExecConfig, Error> {
        if self.config.threads == 0 {
            return Err(Error::InvalidConfig(
                "at least one thread required".to_string(),
            ));
        }
        let chunk = match self.config.schedule {
            Schedule::Static => 1,
            Schedule::Dynamic { chunk } => chunk,
            Schedule::Guided { min_chunk } => min_chunk,
        };
        if chunk == 0 {
            return Err(Error::InvalidConfig(
                "schedule chunk size must be positive".to_string(),
            ));
        }
        Ok(self.config)
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::serial()
    }
}

/// A trainable parameter: value plus gradient accumulator.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
    /// Optional binary mask; wherever the mask is zero the value is pinned
    /// to zero (weight pruning keeps masks so fine-tuning cannot revive
    /// pruned weights).
    pub mask: Option<Tensor>,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient and no mask.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims().to_vec());
        Param {
            value,
            grad,
            mask: None,
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Re-applies the mask to the value (a no-op without a mask).
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (v, m) in self.value.data_mut().iter_mut().zip(mask.data()) {
                *v *= m;
            }
        }
    }

    /// Installs a binary mask and immediately applies it.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the value shape.
    pub fn set_mask(&mut self, mask: Tensor) {
        assert_eq!(
            mask.shape(),
            self.value.shape(),
            "mask shape must match parameter shape"
        );
        self.mask = Some(mask);
        self.apply_mask();
    }
}

/// A neural-network layer: forward, backward, parameters and a static
/// descriptor for the hardware model.
///
/// Layers own their backward-pass caches, so `forward` takes `&mut self`;
/// calling [`backward`](Layer::backward) is only valid after a
/// [`Phase::Train`] forward. [`Phase::Eval`] forwards never mutate the
/// layer, which is what lets [`forward_into`](Layer::forward_into) take
/// `&self` and the engine share a network across batch-parallel workers
/// (hence the `Send + Sync` bound).
pub trait Layer: std::fmt::Debug + std::any::Any + Send + Sync {
    /// Short human-readable layer name, e.g. `"conv3x3(64->128)"`.
    fn name(&self) -> String;

    /// Upcast for concrete-type inspection (compression passes downcast
    /// through this to reach `Conv2d`/`Linear`/… internals).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast; see [`as_any`](Layer::as_any).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Computes the layer output.
    fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. this layer's output) to the
    /// input, accumulating parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Panics if no [`Phase::Train`] forward pass preceded this call.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Read-only access to the layer's trainable parameters (empty for
    /// stateless layers). Unlike [`params_mut`](Layer::params_mut) this
    /// never invalidates plan-time caches, so scans that only *inspect*
    /// weights (e.g. the paranoid guard's per-run parameter check) go
    /// through here.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's trainable parameters (empty for
    /// stateless layers). Layers that cache derived weight state (packed
    /// GEMM panels) drop those caches here, since the caller may mutate
    /// any returned value — masked pruning reaches weights this way.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Static descriptor for the given input shape: MACs, weight counts,
    /// parallel grain, output shape. Used by memory accounting and the
    /// platform timing model.
    fn descriptor(&self, input_shape: &[usize]) -> LayerDescriptor;

    /// The minimum input rank [`descriptor`](Layer::descriptor) and the
    /// forward paths accept. Spatial (NCHW) layers need 4, `Linear`
    /// needs 2; rank-agnostic layers keep the default of 1. The engine
    /// validates shapes against this before walking descriptors, so
    /// plan compilation returns [`crate::Error::ShapeMismatch`] instead
    /// of panicking on a wrong-rank input.
    fn min_input_rank(&self) -> usize {
        1
    }

    /// Flat descriptors of the primitive layers this layer comprises.
    /// Composite layers (residual blocks) override this to expose their
    /// children; primitives return just their own descriptor.
    fn child_descriptors(&self, input_shape: &[usize]) -> Vec<LayerDescriptor> {
        vec![self.descriptor(input_shape)]
    }

    /// Visits this layer and (for composites) every descendant layer,
    /// depth-first with the parent before its children. This is the
    /// dynamic-dispatch alternative to the downcast-if chains the
    /// transformation passes used to carry: a pass hands in one closure
    /// and downcasts inside it.
    ///
    /// Primitive layers implement this as `f(self)`; composites call
    /// `f(self)` and then forward to each child.
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Layer));

    /// Whether [`forward_into`](Layer::forward_into) can execute this
    /// layer under `cfg`. The default is `false`, routing the layer
    /// through the allocating [`forward`](Layer::forward) fallback in
    /// [`crate::engine::InferenceSession`].
    fn forward_into_supported(&self, _cfg: &ExecConfig) -> bool {
        false
    }

    /// One-time plan-level preparation for repeated inference under
    /// `cfg` — e.g. packing weight panels for the packed GEMM engine.
    /// The engine calls this (through [`visit_mut`](Layer::visit_mut))
    /// when a session is built and after every demotion rebuild, so the
    /// per-run [`forward_into`](Layer::forward_into) path can reuse the
    /// prepared state instead of re-deriving it. Layers with nothing to
    /// prepare keep the default no-op.
    fn prepare(&mut self, _cfg: &ExecConfig) {}

    /// Shared handle to the plan-time prepacked weight panels built by
    /// [`prepare`](Layer::prepare), if this layer has any. Serving
    /// session pools clone this `Arc` into replica layers so many
    /// pre-warmed sessions of one model share a single prepack
    /// (compile once, serve many). The panel buffer is immutable for
    /// the lifetime of the handle: invalidation drops the `Arc`, never
    /// mutates through it.
    fn packed_panels(&self) -> Option<std::sync::Arc<Vec<f32>>> {
        None
    }

    /// Installs a shared prepacked panel handle exported from an
    /// identically-shaped donor layer via
    /// [`packed_panels`](Layer::packed_panels). Returns `false` (leaving
    /// the cache untouched) when the panel length does not match what
    /// this layer's `prepare` would build — the run path then falls back
    /// to scratch repacking, so a mismatched install is safe, just
    /// wasted. Layers without a panel cache keep the default no-op.
    fn install_packed_panels(&mut self, _panels: std::sync::Arc<Vec<f32>>) -> bool {
        false
    }

    /// Shared handle to the quantised weight snapshot built by
    /// [`prepare`](Layer::prepare) / `set_format`, if this layer holds
    /// one. The serving pool clones this next to
    /// [`packed_panels`](Layer::packed_panels) so replicas share one
    /// quantised prepack.
    fn quant_panels(&self) -> Option<QuantPanels> {
        None
    }

    /// Installs a shared quantised snapshot exported from an
    /// identically-shaped donor via [`quant_panels`](Layer::quant_panels).
    /// Returns `false` (cache untouched) when the panel length or
    /// variant does not match what this layer would build — evaluation
    /// then falls back to the dense f32 path, so a mismatched install is
    /// safe, just wasted.
    fn install_quant_panels(&mut self, _panels: QuantPanels) -> bool {
        false
    }

    /// The packed-GEMM blocking plan this layer would execute for the
    /// given input shape, if its `cfg` routes it through
    /// [`GemmAlgorithm::Packed`]; `None` otherwise. `InferencePlan`
    /// records this per step so the chosen MC/KC/NC blocking and the
    /// packed-buffer sizes are inspectable.
    fn gemm_plan(&self, _input_shape: &[usize], _cfg: &ExecConfig) -> Option<GemmPlan> {
        None
    }

    /// Scratch floats [`forward_into`](Layer::forward_into) needs for
    /// the given input shape (0 for layers that need none). This is the
    /// conservative bound: it must cover every path the kernel can
    /// take, including cold ones such as re-packing weight panels when
    /// no [`prepare`](Layer::prepare)d cache exists.
    fn forward_scratch_elems(&self, _input_shape: &[usize], _cfg: &ExecConfig) -> usize {
        0
    }

    /// Steady-state workspace floats
    /// [`forward_into`](Layer::forward_into) needs per call once
    /// [`prepare`](Layer::prepare) has run (packed panels cached). The
    /// liveness planner sizes coloured arena slots with this, so it
    /// may be far below [`forward_scratch_elems`](Layer::forward_scratch_elems)
    /// — e.g. a packed convolution drops the A-panel repack region.
    /// The default assumes no prepared state helps.
    fn forward_workspace_elems(&self, input_shape: &[usize], cfg: &ExecConfig) -> usize {
        self.forward_scratch_elems(input_shape, cfg)
    }

    /// Inference forward into a caller-provided output buffer, with no
    /// heap allocation. `input` holds an activation tensor of shape
    /// `input_shape` (row-major), `out` has exactly the layer's output
    /// element count, and `scratch` has at least
    /// [`forward_scratch_elems`](Layer::forward_scratch_elems) floats.
    ///
    /// Only called when [`forward_into_supported`](Layer::forward_into_supported)
    /// returned `true` for the same `cfg`; the default implementation
    /// (never reached through [`crate::engine`]) panics.
    fn forward_into(
        &self,
        _input: &[f32],
        _input_shape: &[usize],
        _out: &mut [f32],
        _scratch: &mut [f32],
        _cfg: &ExecConfig,
    ) {
        unreachable!("forward_into called on a layer that does not support it");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_config_defaults() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.conv_algo, ConvAlgorithm::Direct);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ExecConfig::with_threads(0);
    }

    #[test]
    fn builder_accepts_valid_config() {
        let cfg = ExecConfig::builder()
            .threads(4)
            .schedule(Schedule::Dynamic { chunk: 2 })
            .conv_algo(ConvAlgorithm::Im2col)
            .build()
            .unwrap();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.schedule, Schedule::Dynamic { chunk: 2 });
        assert_eq!(cfg.conv_algo, ConvAlgorithm::Im2col);
    }

    #[test]
    fn builder_rejects_zero_threads_and_zero_chunk() {
        assert!(matches!(
            ExecConfig::builder().threads(0).build(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            ExecConfig::builder()
                .schedule(Schedule::Dynamic { chunk: 0 })
                .build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones([3]));
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn param_mask_pins_zeros() {
        let mut p = Param::new(Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]));
        p.set_mask(Tensor::from_vec([4], vec![1.0, 0.0, 1.0, 0.0]));
        assert_eq!(p.value.data(), &[1.0, 0.0, 3.0, 0.0]);
        // Simulate an SGD update reviving a pruned weight…
        p.value.data_mut()[1] = 9.0;
        p.apply_mask();
        assert_eq!(p.value.data()[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "mask shape")]
    fn mask_shape_checked() {
        let mut p = Param::new(Tensor::ones([4]));
        p.set_mask(Tensor::ones([3]));
    }
}
