//! A sequential network container.

use crate::descriptor::LayerDescriptor;
use crate::error::Error;
use crate::layer::{ExecConfig, Layer, Param, Phase, WeightFormat};
use cnn_stack_tensor::Tensor;
use std::time::{Duration, Instant};

/// A feed-forward network: an ordered pipeline of boxed layers.
///
/// Residual topologies are expressed by composite layers
/// ([`crate::ResidualBlock`]), so a flat sequence suffices for all three
/// of the paper's models. Execution is synchronised at every layer
/// boundary, exactly as the paper's OpenMP implementation ("the execution
/// of the threads is synchronised on each neural network layer", §IV-D).
///
/// # Example
///
/// ```
/// use cnn_stack_nn::{Conv2d, ExecConfig, Flatten, Linear, Network, Phase, ReLU};
/// use cnn_stack_tensor::Tensor;
///
/// let mut net = Network::new(vec![
///     Box::new(Conv2d::new(3, 4, 3, 1, 1, 0)),
///     Box::new(ReLU::new()),
///     Box::new(Flatten::new()),
///     Box::new(Linear::new(4 * 32 * 32, 10, 1)),
/// ])
/// .unwrap();
/// let logits = net.forward(&Tensor::zeros([2, 3, 32, 32]), Phase::Eval, &ExecConfig::default());
/// assert_eq!(logits.shape().dims(), &[2, 10]);
/// ```
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Builds a network from an ordered layer list.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyNetwork`] if `layers` is empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Result<Self, Error> {
        if layers.is_empty() {
            return Err(Error::EmptyNetwork);
        }
        Ok(Network { layers })
    }

    /// Number of top-level layers (composites count as one).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers (never true; see [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to a layer by index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if `idx >= len()`.
    pub fn layer(&self, idx: usize) -> Result<&dyn Layer, Error> {
        self.layers
            .get(idx)
            .map(|l| l.as_ref())
            .ok_or(Error::IndexOutOfRange {
                index: idx,
                len: self.layers.len(),
            })
    }

    /// Mutable access to a layer by index (used by compression passes to
    /// downcast to concrete layer types).
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if `idx >= len()`.
    pub fn layer_mut(&mut self, idx: usize) -> Result<&mut Box<dyn Layer>, Error> {
        let len = self.layers.len();
        self.layers
            .get_mut(idx)
            .ok_or(Error::IndexOutOfRange { index: idx, len })
    }

    /// The full layer list. Infallible counterpart of
    /// [`layer`](Self::layer) for callers that iterate or index with
    /// known-good bounds.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable view of the full layer list; see [`layers`](Self::layers).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Splits the layer list at `mid`, allowing two layers to be borrowed
    /// mutably at once (used by transformation passes such as batch-norm
    /// folding).
    ///
    /// # Panics
    ///
    /// Panics if `mid > len()`.
    #[allow(clippy::type_complexity)] // the split-borrow pair is the API
    pub fn layers_split_at_mut(
        &mut self,
        mid: usize,
    ) -> (&mut [Box<dyn Layer>], &mut [Box<dyn Layer>]) {
        self.layers.split_at_mut(mid)
    }

    /// Removes the layer at `idx`. Renumbers subsequent layers — any
    /// index-based metadata (pruning plans) built against the old
    /// numbering is invalidated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfRange`] if out of range, or
    /// [`Error::EmptyNetwork`] if removal would leave the network empty.
    pub fn remove_layer(&mut self, idx: usize) -> Result<Box<dyn Layer>, Error> {
        if idx >= self.layers.len() {
            return Err(Error::IndexOutOfRange {
                index: idx,
                len: self.layers.len(),
            });
        }
        if self.layers.len() == 1 {
            return Err(Error::EmptyNetwork);
        }
        Ok(self.layers.remove(idx))
    }

    /// Runs the network forward.
    pub fn forward(&mut self, input: &Tensor, phase: Phase, cfg: &ExecConfig) -> Tensor {
        // The first layer reads the caller's tensor directly; cloning it
        // here would double the input's memory traffic for nothing.
        let (first, rest) = self
            .layers
            .split_first_mut()
            .expect("networks are non-empty by construction");
        let mut x = first.forward(input, phase, cfg);
        for layer in rest {
            x = layer.forward(&x, phase, cfg);
        }
        x
    }

    /// Runs the network forward, returning per-layer wall-clock times
    /// alongside the output.
    ///
    /// [`crate::engine::InferenceSession`] supersedes this for repeated
    /// measurement: its [`crate::engine::SessionProfile`] accumulates the
    /// same per-layer times across runs without reallocating activations.
    pub fn forward_timed(
        &mut self,
        input: &Tensor,
        cfg: &ExecConfig,
    ) -> (Tensor, Vec<(String, Duration)>) {
        let mut times = Vec::with_capacity(self.layers.len());
        let (first, rest) = self
            .layers
            .split_first_mut()
            .expect("networks are non-empty by construction");
        let start = Instant::now();
        let mut x = first.forward(input, Phase::Eval, cfg);
        times.push((first.name(), start.elapsed()));
        for layer in rest {
            let start = Instant::now();
            x = layer.forward(&x, Phase::Eval, cfg);
            times.push((layer.name(), start.elapsed()));
        }
        (x, times)
    }

    /// Backpropagates `grad` (gradient w.r.t. the network output),
    /// accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics unless a [`Phase::Train`] forward pass directly preceded it.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Re-applies every pruning mask (after an optimiser step).
    pub fn apply_masks(&mut self) {
        for p in self.params_mut() {
            p.apply_mask();
        }
    }

    /// Total trainable parameter count.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Flat primitive-layer descriptors for a given input shape
    /// (composites are expanded).
    pub fn descriptors(&self, input_shape: &[usize]) -> Vec<LayerDescriptor> {
        let mut shape = input_shape.to_vec();
        let mut out = Vec::new();
        for layer in &self.layers {
            let next_shape = layer.descriptor(&shape).output_shape;
            out.extend(layer.child_descriptors(&shape));
            shape = next_shape;
        }
        out
    }

    /// Total dense MAC count for one forward pass at `input_shape`.
    pub fn macs(&self, input_shape: &[usize]) -> u64 {
        self.descriptors(input_shape).iter().map(|d| d.macs).sum()
    }

    /// Total *stored-non-zero* MAC count, the paper's "expected" cost.
    pub fn effective_macs(&self, input_shape: &[usize]) -> u64 {
        self.descriptors(input_shape)
            .iter()
            .map(|d| d.effective_macs())
            .sum()
    }

    /// Overall weight sparsity across all layers, weighted by element
    /// count.
    pub fn weight_sparsity(&self, input_shape: &[usize]) -> f64 {
        let descs = self.descriptors(input_shape);
        let total: usize = descs.iter().map(|d| d.weight_elems).sum();
        let nnz: usize = descs.iter().map(|d| d.weight_nnz).sum();
        if total == 0 {
            0.0
        } else {
            1.0 - nnz as f64 / total as f64
        }
    }

    /// Output shape for a given input shape, without running the network.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.descriptor(&shape).output_shape;
        }
        shape
    }
}

/// Applies a weight format to every `Conv2d` and `Linear` in the network
/// (descending into residual blocks via [`Layer::visit_mut`]).
/// Convenience wrapper used by the format layer of the stack.
pub fn set_network_format(net: &mut Network, format: WeightFormat) {
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| {
            if let Some(conv) = l.as_any_mut().downcast_mut::<crate::Conv2d>() {
                conv.set_format(format);
            } else if let Some(fc) = l.as_any_mut().downcast_mut::<crate::Linear>() {
                fc.set_format(format);
            }
        });
    }
}

/// Exports every (nested) layer's prepacked weight-panel handle in
/// [`Layer::visit_mut`] order — `None` entries for layers without a
/// panel cache. Feed the result to [`adopt_packed_panels`] on an
/// identically-built network so replicas share one prepack
/// (compile once, serve many).
pub fn export_packed_panels(net: &mut Network) -> Vec<Option<std::sync::Arc<Vec<f32>>>> {
    let mut out = Vec::new();
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| out.push(l.packed_panels()));
    }
    out
}

/// Installs panel handles exported from an identically-built donor
/// network, returning how many layers accepted a shared handle. A layer
/// whose expected panel length differs rejects the handle and keeps its
/// own cache, so a mismatched donor degrades sharing, never correctness.
/// Because [`Layer::prepare`] keeps a cache that is already valid,
/// adopting before the session is built means its prepack step packs
/// nothing at all.
pub fn adopt_packed_panels(
    net: &mut Network,
    panels: &[Option<std::sync::Arc<Vec<f32>>>],
) -> usize {
    let mut i = 0usize;
    let mut adopted = 0usize;
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| {
            if let Some(Some(p)) = panels.get(i) {
                if l.install_packed_panels(std::sync::Arc::clone(p)) {
                    adopted += 1;
                }
            }
            i += 1;
        });
    }
    adopted
}

/// Exports every (nested) layer's quantised weight snapshot in
/// [`Layer::visit_mut`] order — `None` entries for layers without one.
/// The quantised counterpart of [`export_packed_panels`]: the code
/// panels sit behind an `Arc`, so a serving pool shares one ternary
/// prepack across all replicas of a model.
pub fn export_quant_panels(net: &mut Network) -> Vec<Option<crate::layer::QuantPanels>> {
    let mut out = Vec::new();
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| out.push(l.quant_panels()));
    }
    out
}

/// Installs quantised snapshots exported from an identically-built
/// donor network, returning how many layers accepted one. A layer whose
/// expected code length differs (or that has no kernel for the panel
/// kind) rejects the snapshot and runs its f32 fallback — adoption can
/// degrade sharing, never correctness.
pub fn adopt_quant_panels(
    net: &mut Network,
    panels: &[Option<crate::layer::QuantPanels>],
) -> usize {
    let mut i = 0usize;
    let mut adopted = 0usize;
    for layer in net.layers_mut() {
        layer.visit_mut(&mut |l| {
            if let Some(Some(p)) = panels.get(i) {
                if l.install_quant_panels(p.clone()) {
                    adopted += 1;
                }
            }
            i += 1;
        });
    }
    adopted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use cnn_stack_tensor::ops;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn tiny_net() -> Network {
        Network::new(vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, 0)),
            Box::new(ReLU::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 4 * 4, 3, 1)),
        ])
        .unwrap()
    }

    fn random(shape: impl Into<cnn_stack_tensor::Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net();
        let y = net.forward(
            &Tensor::zeros([2, 1, 8, 8]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(y.shape().dims(), &[2, 3]);
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut net = tiny_net();
        let y = net.forward(
            &Tensor::zeros([2, 1, 8, 8]),
            Phase::Eval,
            &ExecConfig::default(),
        );
        assert_eq!(net.output_shape(&[2, 1, 8, 8]), y.shape().dims());
    }

    #[test]
    fn forward_timed_covers_every_layer() {
        let mut net = tiny_net();
        let (_, times) = net.forward_timed(&Tensor::zeros([1, 1, 8, 8]), &ExecConfig::default());
        assert_eq!(times.len(), 5);
        assert!(times.iter().all(|(name, _)| !name.is_empty()));
    }

    #[test]
    fn end_to_end_training_reduces_loss() {
        let mut net = tiny_net();
        let x = random([8, 1, 8, 8], 2);
        let labels = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let cfg = ExecConfig::serial();
        let mut losses = Vec::new();
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&x, Phase::Train, &cfg);
            let (loss, dlogits) = ops::cross_entropy_with_grad(&logits, &labels);
            losses.push(loss);
            net.backward(&dlogits);
            for p in net.params_mut() {
                let g = p.grad.clone();
                p.value.axpy(-0.05, &g);
            }
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn num_params_counts_everything() {
        let mut net = tiny_net();
        // conv: 4*1*9 + 4; linear: 64*3 + 3.
        assert_eq!(net.num_params(), 36 + 4 + 192 + 3);
    }

    #[test]
    fn descriptors_walk_shapes() {
        let net = tiny_net();
        let descs = net.descriptors(&[1, 1, 8, 8]);
        assert_eq!(descs.len(), 5);
        assert_eq!(descs[0].output_shape, vec![1, 4, 8, 8]);
        assert_eq!(descs[2].output_shape, vec![1, 4, 4, 4]);
        assert_eq!(descs[4].output_shape, vec![1, 3]);
    }

    #[test]
    fn macs_sum_over_layers() {
        let net = tiny_net();
        // conv: 4*9*64 MACs; linear: 64*3.
        assert_eq!(net.macs(&[1, 1, 8, 8]), 4 * 9 * 64 + 64 * 3);
    }

    #[test]
    fn sparsity_reflects_zeroed_weights() {
        let mut net = tiny_net();
        if let Some(conv) = net.layers_mut()[0].as_any_mut().downcast_mut::<Conv2d>() {
            conv.weight_mut().value.fill(0.0);
        }
        let s = net.weight_sparsity(&[1, 1, 8, 8]);
        assert!(s > 0.1, "sparsity {s}");
    }

    #[test]
    fn set_format_descends() {
        let mut net = tiny_net();
        set_network_format(&mut net, WeightFormat::Csr);
        let descs = net.descriptors(&[1, 1, 8, 8]);
        assert_eq!(descs[0].format, WeightFormat::Csr);
        assert_eq!(descs[4].format, WeightFormat::Csr);
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(Network::new(Vec::new()), Err(Error::EmptyNetwork)));
    }

    #[test]
    fn layer_access_reports_range() {
        let mut net = tiny_net();
        assert!(net.layer(4).is_ok());
        assert!(matches!(
            net.layer(5),
            Err(Error::IndexOutOfRange { index: 5, len: 5 })
        ));
        assert!(matches!(
            net.layer_mut(9),
            Err(Error::IndexOutOfRange { index: 9, len: 5 })
        ));
    }

    #[test]
    fn remove_layer_guards_emptiness() {
        let mut net = tiny_net();
        assert!(net.remove_layer(7).is_err());
        assert!(net.remove_layer(1).is_ok());
        assert_eq!(net.len(), 4);
        let mut single = Network::new(vec![Box::new(ReLU::new()) as Box<dyn Layer>]).unwrap();
        assert!(matches!(single.remove_layer(0), Err(Error::EmptyNetwork)));
    }
}
