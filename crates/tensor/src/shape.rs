//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The shape of a dense tensor: an ordered list of dimension extents.
///
/// Shapes are row-major ("C order"): the last dimension varies fastest in
/// memory. Rank is bounded only by memory; in practice this workspace uses
/// rank-1 (bias vectors), rank-2 (weight matrices) and rank-4 (NCHW
/// activations and filters).
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::Shape;
///
/// let s = Shape::new([2, 3, 4, 5]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.len(), 120);
/// assert_eq!(s.strides(), vec![60, 20, 5, 1]);
/// assert_eq!(s.offset(&[1, 2, 3, 4]), 119);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from any collection of dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are not
    /// meaningful anywhere in this workspace and are almost always a bug.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(
            !dims.is_empty() && dims.iter().all(|&d| d > 0),
            "shape dimensions must be non-empty and non-zero, got {dims:?}"
        );
        Shape { dims }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Shapes are never empty (zero dimensions are rejected at
    /// construction), so this always returns `false`; provided for
    /// `len`/`is_empty` pairing convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds (debug assertions only for the bounds check on the hot path).
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(
                index[axis] < self.dims[axis],
                "index {index:?} out of bounds for shape {:?}",
                self.dims
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Inverse of [`offset`](Self::offset): the multi-index of a linear
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        assert!(offset < self.len(), "offset {offset} out of bounds");
        let mut idx = vec![0; self.rank()];
        for axis in (0..self.rank()).rev() {
            idx[axis] = offset % self.dims[axis];
            offset /= self.dims[axis];
        }
        idx
    }

    /// Interprets this shape as a 4-D NCHW activation shape, returning
    /// `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 NCHW shape, got {self:?}");
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }

    /// Interprets this shape as a 2-D matrix shape, returning `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 matrix shape, got {self:?}");
        (self.dims[0], self.dims[1])
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_len_dim() {
        let s = Shape::new([4, 3, 8, 8]);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.len(), 4 * 3 * 8 * 8);
        assert_eq!(s.dim(1), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert_eq!(Shape::new([2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new([3, 4, 5]);
        let strides = s.strides();
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let expect = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), expect);
                }
            }
        }
    }

    #[test]
    fn unravel_roundtrip() {
        let s = Shape::new([2, 3, 4]);
        for off in 0..s.len() {
            assert_eq!(s.offset(&s.unravel(off)), off);
        }
    }

    #[test]
    fn nchw_and_matrix_accessors() {
        assert_eq!(Shape::new([1, 3, 32, 32]).nchw(), (1, 3, 32, 32));
        assert_eq!(Shape::new([10, 512]).matrix(), (10, 512));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = Shape::new([2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "rank-4")]
    fn nchw_wrong_rank_panics() {
        let _ = Shape::new([2, 3]).nchw();
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new([1, 3, 32, 32]).to_string(), "1x3x32x32");
    }

    #[test]
    fn conversions() {
        let a: Shape = [2, 3].into();
        let b: Shape = vec![2, 3].into();
        assert_eq!(a, b);
    }
}
