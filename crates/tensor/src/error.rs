//! Typed errors for fallible kernel entry points.
//!
//! The transform-domain convolution kernels ([`crate::winograd`],
//! [`crate::fft`]) originally panicked on misuse (wrong kernel rank,
//! channel mismatches, undersized buffers). Those invariants are now
//! surfaced as [`KernelError`] values from `Result`-returning entry
//! points, matching the fallible-API convention of the `nn` crate, so
//! planners and serving code can reject a bad configuration instead of
//! aborting the process.

/// A kernel entry point rejected its arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A weight tensor did not have the expected rank.
    WeightRank {
        /// Rank the kernel requires (4 for `[out_c, in_c, k, k]`).
        expected: usize,
        /// Rank it was given.
        got: usize,
    },
    /// A kernel window had the wrong spatial extent for the algorithm
    /// (e.g. Winograd F(m×m,3×3) requires 3×3 filters).
    KernelShape {
        /// The algorithm that rejected the filters.
        algo: &'static str,
        /// Required `(k_h, k_w)`.
        expected: (usize, usize),
        /// Given `(k_h, k_w)`.
        got: (usize, usize),
    },
    /// Weight and input channel counts disagree.
    ChannelMismatch {
        /// Input channels according to the weights.
        weights: usize,
        /// Channels of the actual input.
        input: usize,
    },
    /// The bias slice does not have one entry per output channel.
    BiasLength {
        /// Output channel count.
        expected: usize,
        /// Given bias length.
        got: usize,
    },
    /// The padded input is smaller than the kernel window, so the
    /// output would collapse to zero extent.
    InputTooSmall {
        /// Padded input height.
        padded_h: usize,
        /// Padded input width.
        padded_w: usize,
        /// Kernel height.
        k_h: usize,
        /// Kernel width.
        k_w: usize,
    },
    /// A flat buffer (input, output, or weights) had the wrong length
    /// for the stated geometry.
    BufferSize {
        /// Which buffer was rejected.
        what: &'static str,
        /// Length the geometry implies.
        expected: usize,
        /// Length it was given.
        got: usize,
    },
    /// A caller-provided scratch region is too small for the
    /// algorithm's workspace (see the per-algorithm `*_scratch_elems`
    /// sizing functions).
    ScratchTooSmall {
        /// Elements the algorithm needs.
        needed: usize,
        /// Elements provided.
        got: usize,
    },
    /// A flattened `[out_c, in_c*9]` filter matrix whose width is not a
    /// multiple of 9 (see [`crate::winograd::filters_from_matrix`]).
    FilterMatrixWidth {
        /// The offending width.
        width: usize,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::WeightRank { expected, got } => {
                write!(f, "weights must be rank-{expected}, got rank-{got}")
            }
            KernelError::KernelShape {
                algo,
                expected,
                got,
            } => write!(
                f,
                "{algo} requires {}x{} kernels, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            KernelError::ChannelMismatch { weights, input } => write!(
                f,
                "channel mismatch: weights expect {weights} input channels, input has {input}"
            ),
            KernelError::BiasLength { expected, got } => {
                write!(f, "bias length {got} does not match {expected} output channels")
            }
            KernelError::InputTooSmall {
                padded_h,
                padded_w,
                k_h,
                k_w,
            } => write!(
                f,
                "kernel {k_h}x{k_w} does not fit the padded {padded_h}x{padded_w} input: output collapses to zero extent"
            ),
            KernelError::BufferSize {
                what,
                expected,
                got,
            } => write!(f, "{what} buffer holds {got} elements, geometry requires {expected}"),
            KernelError::ScratchTooSmall { needed, got } => {
                write!(f, "scratch of {got} elements is too small: kernel needs {needed}")
            }
            KernelError::FilterMatrixWidth { width } => {
                write!(f, "filter matrix width {width} must be a multiple of 9 (in_c * 3 * 3)")
            }
        }
    }
}

impl std::error::Error for KernelError {}
