//! Winograd fast convolution, F(2×2, 3×3) and F(4×4, 3×3).
//!
//! The paper's "Data Formats and Algorithms" layer names the Winograd
//! transform as one of the candidate data transformations (§II-B, item
//! 3) but does not evaluate it; this module completes the set. For 3×3
//! kernels at stride 1 — the dominant shape in all three models —
//! F(2×2, 3×3) computes each 2×2 output tile with 16 multiplies instead
//! of the direct method's 36, a 2.25× multiply reduction; F(4×4, 3×3)
//! goes further, computing each 4×4 tile with 36 multiplies instead of
//! 144 (4× fewer than direct; 2.25 muls per output against F(2×2)'s
//! 4, a further 16/9 ≈ 1.78× reduction) at the cost of a
//! worse-conditioned transform: its interpolation points {0, ±1, ±2}
//! amplify rounding error by a constant factor, which is why the
//! conformance harness grants F(4×4) a looser error budget than F(2×2)
//! (see `tests/conv_conformance.rs`). The `ablate_conv_algo` bench
//! measures where each trade pays off.
//!
//! All entry points return [`KernelError`] on misuse instead of
//! panicking, matching the fallible-API convention of the `nn` crate.

use crate::error::KernelError;
use crate::shape::Shape;
use crate::tensor::Tensor;
use cnn_stack_obs::{self as obs, Metric};

/// Multiplies per output element for direct 3×3 convolution vs
/// F(2×2, 3×3) Winograd: `(36, 16)` per 2×2 tile per channel pair.
pub const WINOGRAD_TILE_MULS: (usize, usize) = (36, 16);

/// Multiplies per 4×4 output tile per channel pair for direct 3×3
/// convolution vs F(4×4, 3×3) Winograd: `(144, 36)`.
pub const WINOGRAD4_TILE_MULS: (usize, usize) = (144, 36);

/// Validated geometry shared by both Winograd variants.
struct WinogradGeometry {
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    out_h: usize,
    out_w: usize,
}

/// Validates the shared preconditions of both Winograd variants over
/// tensor arguments.
fn validate_winograd(
    algo: &'static str,
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    padding: usize,
) -> Result<WinogradGeometry, KernelError> {
    let (n, in_c, h, w) = input.shape().nchw();
    let wd = weights.shape().dims();
    if wd.len() != 4 {
        return Err(KernelError::WeightRank {
            expected: 4,
            got: wd.len(),
        });
    }
    if wd[2] != 3 || wd[3] != 3 {
        return Err(KernelError::KernelShape {
            algo,
            expected: (3, 3),
            got: (wd[2], wd[3]),
        });
    }
    if wd[1] != in_c {
        return Err(KernelError::ChannelMismatch {
            weights: wd[1],
            input: in_c,
        });
    }
    let out_c = wd[0];
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(KernelError::BiasLength {
                expected: out_c,
                got: b.len(),
            });
        }
    }
    if h + 2 * padding < 3 || w + 2 * padding < 3 {
        return Err(KernelError::InputTooSmall {
            padded_h: h + 2 * padding,
            padded_w: w + 2 * padding,
            k_h: 3,
            k_w: 3,
        });
    }
    Ok(WinogradGeometry {
        n,
        in_c,
        h,
        w,
        out_c,
        out_h: h + 2 * padding - 2,
        out_w: w + 2 * padding - 2,
    })
}

/// Transforms one 3×3 filter into its 4×4 Winograd domain image
/// `U = G g Gᵀ`.
fn transform_filter(g: &[f32]) -> [f32; 16] {
    debug_assert_eq!(g.len(), 9);
    // G (4x3) rows: [1,0,0], [1/2,1/2,1/2], [1/2,-1/2,1/2], [0,0,1].
    let mut tmp = [0.0f32; 12]; // G·g → 4x3
    for r in 0..4 {
        for c in 0..3 {
            tmp[r * 3 + c] = match r {
                0 => g[c],
                1 => 0.5 * (g[c] + g[3 + c] + g[6 + c]),
                2 => 0.5 * (g[c] - g[3 + c] + g[6 + c]),
                _ => g[6 + c],
            };
        }
    }
    let mut u = [0.0f32; 16]; // (G·g)·Gᵀ → 4x4
    for r in 0..4 {
        let row = &tmp[r * 3..r * 3 + 3];
        u[r * 4] = row[0];
        u[r * 4 + 1] = 0.5 * (row[0] + row[1] + row[2]);
        u[r * 4 + 2] = 0.5 * (row[0] - row[1] + row[2]);
        u[r * 4 + 3] = row[2];
    }
    u
}

/// Transforms one 4×4 input tile: `V = Bᵀ d B`.
fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ rows: [1,0,-1,0], [0,1,1,0], [0,-1,1,0], [0,1,0,-1].
    let mut tmp = [0.0f32; 16];
    for c in 0..4 {
        tmp[c] = d[c] - d[8 + c];
        tmp[4 + c] = d[4 + c] + d[8 + c];
        tmp[8 + c] = d[8 + c] - d[4 + c];
        tmp[12 + c] = d[4 + c] - d[12 + c];
    }
    let mut v = [0.0f32; 16];
    for r in 0..4 {
        let row = &tmp[r * 4..r * 4 + 4];
        v[r * 4] = row[0] - row[2];
        v[r * 4 + 1] = row[1] + row[2];
        v[r * 4 + 2] = row[2] - row[1];
        v[r * 4 + 3] = row[1] - row[3];
    }
    v
}

/// Inverse transform of one 4×4 accumulator to a 2×2 output tile:
/// `Y = Aᵀ m A`.
fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ rows: [1,1,1,0], [0,1,-1,-1].
    let mut tmp = [0.0f32; 8];
    for c in 0..4 {
        tmp[c] = m[c] + m[4 + c] + m[8 + c];
        tmp[4 + c] = m[4 + c] - m[8 + c] - m[12 + c];
    }
    [
        tmp[0] + tmp[1] + tmp[2],
        tmp[1] - tmp[2] - tmp[3],
        tmp[4] + tmp[5] + tmp[6],
        tmp[5] - tmp[6] - tmp[7],
    ]
}

/// F(2×2, 3×3) Winograd convolution for a `[n, c, h, w]` input and
/// `[out_c, c, 3, 3]` filters at stride 1.
///
/// Results match direct convolution to floating-point tolerance; odd
/// output extents are handled by edge tiles that read zero padding and
/// write only their valid quadrant.
///
/// # Errors
///
/// Returns [`KernelError`] if the filter tensor is not
/// `[out_c, in_c, 3, 3]`, channels disagree, `bias` (when given) has
/// the wrong length, or the padded input is smaller than the window.
pub fn winograd_conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    padding: usize,
) -> Result<Tensor, KernelError> {
    let WinogradGeometry {
        n,
        in_c,
        h,
        w,
        out_c,
        out_h,
        out_w,
    } = validate_winograd("Winograd F(2x2,3x3)", input, weights, bias, padding)?;

    // Pre-transform all filters: [out_c, in_c, 16].
    let mut u = vec![0.0f32; out_c * in_c * 16];
    for o in 0..out_c {
        for c in 0..in_c {
            let g = &weights.data()[(o * in_c + c) * 9..(o * in_c + c) * 9 + 9];
            u[(o * in_c + c) * 16..(o * in_c + c + 1) * 16].copy_from_slice(&transform_filter(g));
        }
    }

    let tiles_y = out_h.div_ceil(2);
    let tiles_x = out_w.div_ceil(2);
    let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
    let odata = out.data_mut();
    let idata = input.data();

    for img in 0..n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather and transform the input tile for every channel.
                let mut vs = vec![[0.0f32; 16]; in_c];
                for (c, v) in vs.iter_mut().enumerate() {
                    let mut d = [0.0f32; 16];
                    for dy in 0..4 {
                        let iy = (ty * 2 + dy) as isize - padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for dx in 0..4 {
                            let ix = (tx * 2 + dx) as isize - padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            d[dy * 4 + dx] =
                                idata[((img * in_c + c) * h + iy as usize) * w + ix as usize];
                        }
                    }
                    *v = transform_input(&d);
                }
                // Per output channel: elementwise accumulate + inverse.
                for o in 0..out_c {
                    let mut m = [0.0f32; 16];
                    for (c, v) in vs.iter().enumerate() {
                        let uf = &u[(o * in_c + c) * 16..(o * in_c + c + 1) * 16];
                        for k in 0..16 {
                            m[k] += uf[k] * v[k];
                        }
                    }
                    let y = transform_output(&m);
                    let b = bias.map_or(0.0, |b| b[o]);
                    for dy in 0..2 {
                        let oy = ty * 2 + dy;
                        if oy >= out_h {
                            continue;
                        }
                        for dx in 0..2 {
                            let ox = tx * 2 + dx;
                            if ox >= out_w {
                                continue;
                            }
                            odata[((img * out_c + o) * out_h + oy) * out_w + ox] =
                                y[dy * 2 + dx] + b;
                        }
                    }
                }
            }
        }
    }
    obs::with_current(|o| {
        o.metrics()
            .add(Metric::WinogradTiles, (n * tiles_y * tiles_x) as u64);
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// F(4×4, 3×3): 6×6 tiles, 36 multiplies per 16 outputs.
//
// Transform matrices from Lavin & Gray, "Fast Algorithms for
// Convolutional Neural Networks", with interpolation points
// {0, ±1, ±2}. The larger point set is what makes the transforms
// worse-conditioned than F(2×2)'s {0, ±1}: |Bᵀ| entries reach 5 and
// |Aᵀ| entries reach 8, so rounding error in the transform domain is
// amplified by a bounded constant (measured ≲ 30× of F(2×2)'s, see the
// tolerance proptests).
// ---------------------------------------------------------------------------

/// Filter transform `G` (6×3) for F(4×4, 3×3).
const G4: [[f32; 3]; 6] = [
    [0.25, 0.0, 0.0],
    [-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
    [-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
    [1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
    [1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
    [0.0, 0.0, 1.0],
];

/// Input transform `Bᵀ` (6×6) for F(4×4, 3×3).
const BT4: [[f32; 6]; 6] = [
    [4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
    [0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
    [0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
    [0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
    [0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
    [0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
];

/// Output transform `Aᵀ` (4×6) for F(4×4, 3×3).
const AT4: [[f32; 6]; 4] = [
    [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
    [0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
    [0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
    [0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
];

/// Transforms one 3×3 filter into its 6×6 F(4×4) domain image
/// `U = G g Gᵀ`.
fn transform_filter4(g: &[f32]) -> [f32; 36] {
    debug_assert_eq!(g.len(), 9);
    let mut tmp = [0.0f32; 18]; // G·g → 6x3
    for r in 0..6 {
        for c in 0..3 {
            tmp[r * 3 + c] = G4[r][0] * g[c] + G4[r][1] * g[3 + c] + G4[r][2] * g[6 + c];
        }
    }
    let mut u = [0.0f32; 36]; // (G·g)·Gᵀ → 6x6
    for r in 0..6 {
        for c in 0..6 {
            u[r * 6 + c] =
                tmp[r * 3] * G4[c][0] + tmp[r * 3 + 1] * G4[c][1] + tmp[r * 3 + 2] * G4[c][2];
        }
    }
    u
}

/// Transforms one 6×6 input tile: `V = Bᵀ d B`.
fn transform_input4(d: &[f32; 36]) -> [f32; 36] {
    let mut tmp = [0.0f32; 36]; // Bᵀ·d
    for r in 0..6 {
        for c in 0..6 {
            let mut acc = 0.0f32;
            for k in 0..6 {
                acc += BT4[r][k] * d[k * 6 + c];
            }
            tmp[r * 6 + c] = acc;
        }
    }
    let mut v = [0.0f32; 36]; // (Bᵀ·d)·B, B = (Bᵀ)ᵀ
    for r in 0..6 {
        for c in 0..6 {
            let mut acc = 0.0f32;
            for k in 0..6 {
                acc += tmp[r * 6 + k] * BT4[c][k];
            }
            v[r * 6 + c] = acc;
        }
    }
    v
}

/// Inverse transform of one 6×6 accumulator to a 4×4 output tile:
/// `Y = Aᵀ m A`.
fn transform_output4(m: &[f32; 36]) -> [f32; 16] {
    let mut tmp = [0.0f32; 24]; // Aᵀ·m → 4x6
    for r in 0..4 {
        for c in 0..6 {
            let mut acc = 0.0f32;
            for k in 0..6 {
                acc += AT4[r][k] * m[k * 6 + c];
            }
            tmp[r * 6 + c] = acc;
        }
    }
    let mut y = [0.0f32; 16]; // (Aᵀ·m)·A
    for r in 0..4 {
        for c in 0..4 {
            let mut acc = 0.0f32;
            for k in 0..6 {
                acc += tmp[r * 6 + k] * AT4[c][k];
            }
            y[r * 4 + c] = acc;
        }
    }
    y
}

/// Tiles processed per batch by [`winograd4_conv2d_into`]. The
/// multiply stage runs as 36 frequency-wise `out_c×in_c×T` products,
/// so the transformed filter bank is streamed once per batch instead
/// of once per tile — `T = 16` amortises that traffic 16× while the
/// per-frequency `V`/`M` panels stay L2-resident.
const WINOGRAD4_TILE_BLOCK: usize = 16;

/// Scratch floats [`winograd4_conv2d_into`] needs: the transformed
/// filter bank `[36, out_c, in_c]` (frequency-major) plus one
/// `[36, in_c, T]` batch of transformed input tiles and the matching
/// `[36, out_c, T]` product accumulator.
pub fn winograd4_scratch_elems(in_channels: usize, out_channels: usize) -> usize {
    36 * (out_channels * in_channels
        + in_channels * WINOGRAD4_TILE_BLOCK
        + out_channels * WINOGRAD4_TILE_BLOCK)
}

/// F(4×4, 3×3) Winograd convolution over raw NCHW slices, writing the
/// `[n, out_c, out_h, out_w]` result into `out` using caller-provided
/// scratch (at least [`winograd4_scratch_elems`] floats) — no hidden
/// allocation, so the memory planner can account the workspace.
///
/// Stride is fixed at 1; `out_h = h + 2·padding − 2`. Edge tiles read
/// zero padding and write only their valid region.
///
/// # Errors
///
/// Returns [`KernelError`] on mismatched buffer lengths, bias length,
/// an input smaller than the padded window, or undersized scratch.
#[allow(clippy::too_many_arguments)]
pub fn winograd4_conv2d_into(
    input: &[f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    out_c: usize,
    bias: Option<&[f32]>,
    padding: usize,
    out: &mut [f32],
    scratch: &mut [f32],
) -> Result<(), KernelError> {
    if input.len() != n * in_c * h * w {
        return Err(KernelError::BufferSize {
            what: "input",
            expected: n * in_c * h * w,
            got: input.len(),
        });
    }
    if weights.len() != out_c * in_c * 9 {
        return Err(KernelError::BufferSize {
            what: "weights",
            expected: out_c * in_c * 9,
            got: weights.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(KernelError::BiasLength {
                expected: out_c,
                got: b.len(),
            });
        }
    }
    if h + 2 * padding < 3 || w + 2 * padding < 3 {
        return Err(KernelError::InputTooSmall {
            padded_h: h + 2 * padding,
            padded_w: w + 2 * padding,
            k_h: 3,
            k_w: 3,
        });
    }
    let out_h = h + 2 * padding - 2;
    let out_w = w + 2 * padding - 2;
    if out.len() != n * out_c * out_h * out_w {
        return Err(KernelError::BufferSize {
            what: "output",
            expected: n * out_c * out_h * out_w,
            got: out.len(),
        });
    }
    let needed = winograd4_scratch_elems(in_c, out_c);
    if scratch.len() < needed {
        return Err(KernelError::ScratchTooSmall {
            needed,
            got: scratch.len(),
        });
    }

    const T: usize = WINOGRAD4_TILE_BLOCK;
    let oc_ic = out_c * in_c;
    let (u, rest) = scratch.split_at_mut(36 * oc_ic);
    let (vs, ms) = rest.split_at_mut(36 * in_c * T);
    let ms = &mut ms[..36 * out_c * T];
    // Frequency-major filter bank: `u[k·oc·ic + o·ic + c]`, so each of
    // the 36 per-frequency products below reads one contiguous
    // `out_c×in_c` panel.
    for o in 0..out_c {
        for c in 0..in_c {
            let g = &weights[(o * in_c + c) * 9..(o * in_c + c) * 9 + 9];
            let f = transform_filter4(g);
            for (k, fv) in f.iter().enumerate() {
                u[k * oc_ic + o * in_c + c] = *fv;
            }
        }
    }

    let tiles_y = out_h.div_ceil(4);
    let tiles_x = out_w.div_ceil(4);
    let tiles = tiles_y * tiles_x;
    for img in 0..n {
        let mut batch_start = 0;
        while batch_start < tiles {
            let bt = T.min(tiles - batch_start);
            // Gather and transform a batch of 6×6 input tiles per
            // channel, scattering frequency-major: `vs[k·ic·T + c·T + t]`.
            for t in 0..bt {
                let tile = batch_start + t;
                let (ty, tx) = (tile / tiles_x, tile % tiles_x);
                for c in 0..in_c {
                    let mut d = [0.0f32; 36];
                    for dy in 0..6 {
                        let iy = (ty * 4 + dy) as isize - padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for dx in 0..6 {
                            let ix = (tx * 4 + dx) as isize - padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            d[dy * 6 + dx] =
                                input[((img * in_c + c) * h + iy as usize) * w + ix as usize];
                        }
                    }
                    let v = transform_input4(&d);
                    for (k, vv) in v.iter().enumerate() {
                        vs[(k * in_c + c) * T + t] = *vv;
                    }
                }
            }
            // 36 frequency-wise products M_k = U_k · V_k
            // (out_c×in_c times in_c×T): broadcast-u over the tile
            // lane, which vectorises, and stream the filter bank once
            // per batch instead of once per tile.
            for k in 0..36 {
                let uk = &u[k * oc_ic..(k + 1) * oc_ic];
                let vk = &vs[k * in_c * T..(k + 1) * in_c * T];
                let mk = &mut ms[k * out_c * T..(k + 1) * out_c * T];
                if bt == T {
                    // Full batches keep the T-wide accumulator in a
                    // fixed-size local so the lane loop has a
                    // compile-time trip count and stays in registers
                    // across the channel reduction.
                    for o in 0..out_c {
                        let mut acc = [0.0f32; T];
                        for c in 0..in_c {
                            let uv = uk[o * in_c + c];
                            let vrow: &[f32; T] =
                                vk[c * T..(c + 1) * T].try_into().expect("full lane");
                            for (a, vv) in acc.iter_mut().zip(vrow) {
                                *a += uv * *vv;
                            }
                        }
                        mk[o * T..(o + 1) * T].copy_from_slice(&acc);
                    }
                } else {
                    for o in 0..out_c {
                        let mrow = &mut mk[o * T..o * T + bt];
                        mrow.fill(0.0);
                        for c in 0..in_c {
                            let uv = uk[o * in_c + c];
                            let vrow = &vk[c * T..c * T + bt];
                            for (mv, vv) in mrow.iter_mut().zip(vrow) {
                                *mv += uv * *vv;
                            }
                        }
                    }
                }
            }
            // Inverse-transform every (tile, output-channel) pair and
            // write the clipped 4×4 block.
            for t in 0..bt {
                let tile = batch_start + t;
                let (ty, tx) = (tile / tiles_x, tile % tiles_x);
                for o in 0..out_c {
                    let mut m = [0.0f32; 36];
                    for (k, mv) in m.iter_mut().enumerate() {
                        *mv = ms[(k * out_c + o) * T + t];
                    }
                    let y = transform_output4(&m);
                    let b = bias.map_or(0.0, |b| b[o]);
                    for dy in 0..4 {
                        let oy = ty * 4 + dy;
                        if oy >= out_h {
                            continue;
                        }
                        for dx in 0..4 {
                            let ox = tx * 4 + dx;
                            if ox >= out_w {
                                continue;
                            }
                            out[((img * out_c + o) * out_h + oy) * out_w + ox] = y[dy * 4 + dx] + b;
                        }
                    }
                }
            }
            batch_start += bt;
        }
    }
    obs::with_current(|o| {
        o.metrics()
            .add(Metric::WinogradTiles, (n * tiles_y * tiles_x) as u64);
    });
    Ok(())
}

/// Allocating wrapper over [`winograd4_conv2d_into`] for tensor
/// arguments: F(4×4, 3×3) convolution of a `[n, c, h, w]` input with
/// `[out_c, c, 3, 3]` filters at stride 1.
///
/// # Errors
///
/// Returns [`KernelError`] under the same conditions as
/// [`winograd_conv2d`].
pub fn winograd4_conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    padding: usize,
) -> Result<Tensor, KernelError> {
    let WinogradGeometry {
        n,
        in_c,
        h,
        w,
        out_c,
        out_h,
        out_w,
    } = validate_winograd("Winograd F(4x4,3x3)", input, weights, bias, padding)?;
    let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
    let mut scratch = vec![0.0f32; winograd4_scratch_elems(in_c, out_c)];
    winograd4_conv2d_into(
        input.data(),
        n,
        in_c,
        h,
        w,
        weights.data(),
        out_c,
        bias,
        padding,
        out.data_mut(),
        &mut scratch,
    )?;
    Ok(out)
}

/// Multiply counts for a 3×3/stride-1 convolution at the given extents:
/// `(direct, winograd)` — the algorithmic saving the paper's layer-3
/// choices trade against transform overhead.
pub fn multiply_counts(
    in_channels: usize,
    out_channels: usize,
    out_h: usize,
    out_w: usize,
) -> (u64, u64) {
    let tiles = (out_h.div_ceil(2) * out_w.div_ceil(2)) as u64;
    let pairs = (in_channels * out_channels) as u64;
    let direct = pairs * (out_h * out_w) as u64 * 9;
    let winograd = pairs * tiles * 16;
    (direct, winograd)
}

/// Multiply counts for F(4×4, 3×3) at the given extents:
/// `(direct, winograd4)`. When 4 divides both output extents the ratio
/// is exactly 4× (and 16/9 ≈ 1.78× better than F(2×2, 3×3) per
/// output).
pub fn multiply_counts4(
    in_channels: usize,
    out_channels: usize,
    out_h: usize,
    out_w: usize,
) -> (u64, u64) {
    let tiles = (out_h.div_ceil(4) * out_w.div_ceil(4)) as u64;
    let pairs = (in_channels * out_channels) as u64;
    let direct = pairs * (out_h * out_w) as u64 * 9;
    let winograd4 = pairs * tiles * 36;
    (direct, winograd4)
}

/// Reshapes a `[out_c, in_c*9]` matrix back to rank-4 filters (helper for
/// callers holding flattened weights).
///
/// # Errors
///
/// Returns [`KernelError::FilterMatrixWidth`] if the width is not a
/// multiple of 9.
pub fn filters_from_matrix(matrix: &Tensor) -> Result<Tensor, KernelError> {
    let (out_c, width) = matrix.shape().matrix();
    if width % 9 != 0 {
        return Err(KernelError::FilterMatrixWidth { width });
    }
    Ok(matrix.reshape(Shape::new([out_c, width / 9, 3, 3])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::im2col::{im2col, Conv2dGeometry};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn reference(input: &Tensor, weights: &Tensor, bias: Option<&[f32]>, padding: usize) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        let out_c = weights.shape().dims()[0];
        let geom = Conv2dGeometry::new(in_c, h, w, 3, 3, 1, padding);
        let wmat = weights.reshape([out_c, in_c * 9]);
        let mut out = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
        let plane = geom.out_positions();
        for img in 0..n {
            let cols = im2col(
                &input.data()[img * in_c * h * w..(img + 1) * in_c * h * w],
                &geom,
            );
            let prod = matmul(&wmat, &cols);
            let dst = &mut out.data_mut()[img * out_c * plane..(img + 1) * out_c * plane];
            dst.copy_from_slice(prod.data());
            if let Some(b) = bias {
                for o in 0..out_c {
                    for p in &mut dst[o * plane..(o + 1) * plane] {
                        *p += b[o];
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_direct_even_extents() {
        let input = random([2, 3, 8, 8], 1);
        let weights = random([4, 3, 3, 3], 2);
        let want = reference(&input, &weights, None, 1);
        let got = winograd_conv2d(&input, &weights, None, 1).unwrap();
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_odd_extents_and_no_padding() {
        let input = random([1, 2, 9, 7], 3);
        let weights = random([3, 2, 3, 3], 4);
        let want = reference(&input, &weights, None, 0);
        let got = winograd_conv2d(&input, &weights, None, 0).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_with_bias() {
        let input = random([1, 3, 6, 6], 5);
        let weights = random([2, 3, 3, 3], 6);
        let bias = vec![0.7f32, -0.3];
        let want = reference(&input, &weights, Some(&bias), 1);
        let got = winograd_conv2d(&input, &weights, Some(&bias), 1).unwrap();
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn cifar_layer_shape_agrees() {
        // A real VGG layer shape: 32x32, 16->16 channels (scaled).
        let input = random([1, 16, 32, 32], 7);
        let weights = random([16, 16, 3, 3], 8);
        let want = reference(&input, &weights, None, 1);
        let got = winograd_conv2d(&input, &weights, None, 1).unwrap();
        assert!(want.allclose(&got, 5e-3));
    }

    #[test]
    fn multiply_savings_are_2_25x_for_even_tiles() {
        let (direct, wino) = multiply_counts(64, 64, 32, 32);
        let ratio = direct as f64 / wino as f64;
        assert!((ratio - 2.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn multiply_savings_are_4x_for_f4_on_aligned_tiles() {
        let (direct, wino4) = multiply_counts4(64, 64, 32, 32);
        let ratio = direct as f64 / wino4 as f64;
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
        // 16/9 ≈ 1.78x fewer multiplies than F(2x2,3x3) on the same
        // extents: 36/16 = 2.25 muls per output vs F(2x2)'s 16/4 = 4.
        let (_, wino2) = multiply_counts(64, 64, 32, 32);
        let f4_over_f2 = wino2 as f64 / wino4 as f64;
        assert!((f4_over_f2 - 16.0 / 9.0).abs() < 1e-9, "ratio {f4_over_f2}");
    }

    #[test]
    fn identity_filter_reproduces_input() {
        // Filter = delta at centre: convolution is the identity.
        let input = random([1, 1, 6, 6], 9);
        let mut weights = Tensor::zeros([1, 1, 3, 3]);
        weights.data_mut()[4] = 1.0;
        let got = winograd_conv2d(&input, &weights, None, 1).unwrap();
        assert!(got.allclose(&input, 1e-4));
    }

    #[test]
    fn f4_identity_filter_reproduces_input() {
        let input = random([1, 1, 8, 8], 19);
        let mut weights = Tensor::zeros([1, 1, 3, 3]);
        weights.data_mut()[4] = 1.0;
        let got = winograd4_conv2d(&input, &weights, None, 1).unwrap();
        assert!(got.allclose(&input, 1e-4));
    }

    #[test]
    fn f4_matches_direct_even_extents() {
        let input = random([2, 3, 8, 8], 11);
        let weights = random([4, 3, 3, 3], 12);
        let bias = vec![0.4f32, -0.2, 0.1, 0.9];
        let want = reference(&input, &weights, Some(&bias), 1);
        let got = winograd4_conv2d(&input, &weights, Some(&bias), 1).unwrap();
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn f4_matches_direct_unaligned_extents() {
        // 9x7 output: edge tiles write partial 4x4 quadrants.
        let input = random([1, 2, 11, 9], 13);
        let weights = random([3, 2, 3, 3], 14);
        let want = reference(&input, &weights, None, 0);
        let got = winograd4_conv2d(&input, &weights, None, 0).unwrap();
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn non_3x3_rejected_with_typed_error() {
        let err = winograd_conv2d(
            &Tensor::zeros([1, 1, 8, 8]),
            &Tensor::zeros([1, 1, 5, 5]),
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            KernelError::KernelShape {
                algo: "Winograd F(2x2,3x3)",
                expected: (3, 3),
                got: (5, 5),
            }
        );
        let err4 = winograd4_conv2d(
            &Tensor::zeros([1, 1, 8, 8]),
            &Tensor::zeros([1, 1, 5, 5]),
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err4,
            KernelError::KernelShape {
                algo: "Winograd F(4x4,3x3)",
                expected: (3, 3),
                got: (5, 5),
            }
        );
    }

    #[test]
    fn channel_and_bias_mismatches_rejected() {
        let err = winograd_conv2d(
            &Tensor::zeros([1, 2, 8, 8]),
            &Tensor::zeros([4, 3, 3, 3]),
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            KernelError::ChannelMismatch {
                weights: 3,
                input: 2
            }
        );
        let bias = [0.0f32; 3];
        let err = winograd_conv2d(
            &Tensor::zeros([1, 2, 8, 8]),
            &Tensor::zeros([4, 2, 3, 3]),
            Some(&bias),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            KernelError::BiasLength {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn zero_extent_output_rejected() {
        let err = winograd_conv2d(
            &Tensor::zeros([1, 1, 2, 2]),
            &Tensor::zeros([1, 1, 3, 3]),
            None,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, KernelError::InputTooSmall { .. }), "{err}");
    }

    #[test]
    fn f4_into_rejects_undersized_scratch() {
        let input = vec![0.0f32; 2 * 6 * 6];
        let weights = vec![0.0f32; 3 * 2 * 9];
        let mut out = vec![0.0f32; 3 * 6 * 6];
        let mut scratch = vec![0.0f32; 7];
        let err = winograd4_conv2d_into(
            &input,
            1,
            2,
            6,
            6,
            &weights,
            3,
            None,
            1,
            &mut out,
            &mut scratch,
        )
        .unwrap_err();
        assert_eq!(
            err,
            KernelError::ScratchTooSmall {
                needed: winograd4_scratch_elems(2, 3),
                got: 7
            }
        );
    }

    #[test]
    fn filters_from_matrix_roundtrip() {
        let m = random([4, 18], 10);
        let f = filters_from_matrix(&m).unwrap();
        assert_eq!(f.shape().dims(), &[4, 2, 3, 3]);
        assert_eq!(f.data(), m.data());
    }

    #[test]
    fn filters_from_matrix_rejects_bad_width() {
        let m = random([4, 10], 10);
        assert_eq!(
            filters_from_matrix(&m).unwrap_err(),
            KernelError::FilterMatrixWidth { width: 10 }
        );
    }
}
