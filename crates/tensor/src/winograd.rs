//! Winograd fast convolution, F(2×2, 3×3).
//!
//! The paper's "Data Formats and Algorithms" layer names the Winograd
//! transform as one of the candidate data transformations (§II-B, item
//! 3) but does not evaluate it; this module completes the set. For 3×3
//! kernels at stride 1 — the dominant shape in all three models —
//! Winograd computes each 2×2 output tile with 16 multiplies instead of
//! the direct method's 36, a 2.25× multiply reduction, at the cost of
//! transform overhead and extra memory traffic. The `ablate_conv_algo`
//! bench measures where that trade pays off.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Multiplies per output element for direct 3×3 convolution vs
/// F(2×2, 3×3) Winograd: `(36, 16)` per 2×2 tile per channel pair.
pub const WINOGRAD_TILE_MULS: (usize, usize) = (36, 16);

/// Transforms one 3×3 filter into its 4×4 Winograd domain image
/// `U = G g Gᵀ`.
fn transform_filter(g: &[f32]) -> [f32; 16] {
    debug_assert_eq!(g.len(), 9);
    // G (4x3) rows: [1,0,0], [1/2,1/2,1/2], [1/2,-1/2,1/2], [0,0,1].
    let mut tmp = [0.0f32; 12]; // G·g → 4x3
    for r in 0..4 {
        for c in 0..3 {
            tmp[r * 3 + c] = match r {
                0 => g[c],
                1 => 0.5 * (g[c] + g[3 + c] + g[6 + c]),
                2 => 0.5 * (g[c] - g[3 + c] + g[6 + c]),
                _ => g[6 + c],
            };
        }
    }
    let mut u = [0.0f32; 16]; // (G·g)·Gᵀ → 4x4
    for r in 0..4 {
        let row = &tmp[r * 3..r * 3 + 3];
        u[r * 4] = row[0];
        u[r * 4 + 1] = 0.5 * (row[0] + row[1] + row[2]);
        u[r * 4 + 2] = 0.5 * (row[0] - row[1] + row[2]);
        u[r * 4 + 3] = row[2];
    }
    u
}

/// Transforms one 4×4 input tile: `V = Bᵀ d B`.
fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ rows: [1,0,-1,0], [0,1,1,0], [0,-1,1,0], [0,1,0,-1].
    let mut tmp = [0.0f32; 16];
    for c in 0..4 {
        tmp[c] = d[c] - d[8 + c];
        tmp[4 + c] = d[4 + c] + d[8 + c];
        tmp[8 + c] = d[8 + c] - d[4 + c];
        tmp[12 + c] = d[4 + c] - d[12 + c];
    }
    let mut v = [0.0f32; 16];
    for r in 0..4 {
        let row = &tmp[r * 4..r * 4 + 4];
        v[r * 4] = row[0] - row[2];
        v[r * 4 + 1] = row[1] + row[2];
        v[r * 4 + 2] = row[2] - row[1];
        v[r * 4 + 3] = row[1] - row[3];
    }
    v
}

/// Inverse transform of one 4×4 accumulator to a 2×2 output tile:
/// `Y = Aᵀ m A`.
fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ rows: [1,1,1,0], [0,1,-1,-1].
    let mut tmp = [0.0f32; 8];
    for c in 0..4 {
        tmp[c] = m[c] + m[4 + c] + m[8 + c];
        tmp[4 + c] = m[4 + c] - m[8 + c] - m[12 + c];
    }
    [
        tmp[0] + tmp[1] + tmp[2],
        tmp[1] - tmp[2] - tmp[3],
        tmp[4] + tmp[5] + tmp[6],
        tmp[5] - tmp[6] - tmp[7],
    ]
}

/// F(2×2, 3×3) Winograd convolution for a `[n, c, h, w]` input and
/// `[out_c, c, 3, 3]` filters at stride 1.
///
/// Results match direct convolution to floating-point tolerance; odd
/// output extents are handled by edge tiles that read zero padding and
/// write only their valid quadrant.
///
/// # Panics
///
/// Panics if the filter tensor is not `[out_c, in_c, 3, 3]`, channels
/// disagree, or `bias` (when given) has the wrong length.
pub fn winograd_conv2d(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    padding: usize,
) -> Tensor {
    let (n, in_c, h, w) = input.shape().nchw();
    let wd = weights.shape().dims();
    assert_eq!(wd.len(), 4, "weights must be rank-4");
    assert_eq!(wd[2], 3, "Winograd F(2x2,3x3) requires 3x3 kernels");
    assert_eq!(wd[3], 3, "Winograd F(2x2,3x3) requires 3x3 kernels");
    assert_eq!(wd[1], in_c, "channel mismatch");
    let out_c = wd[0];
    if let Some(b) = bias {
        assert_eq!(b.len(), out_c, "bias length mismatch");
    }
    let out_h = h + 2 * padding - 2;
    let out_w = w + 2 * padding - 2;
    assert!(out_h > 0 && out_w > 0, "output collapses to zero extent");

    // Pre-transform all filters: [out_c, in_c, 16].
    let mut u = vec![0.0f32; out_c * in_c * 16];
    for o in 0..out_c {
        for c in 0..in_c {
            let g = &weights.data()[(o * in_c + c) * 9..(o * in_c + c) * 9 + 9];
            u[(o * in_c + c) * 16..(o * in_c + c + 1) * 16].copy_from_slice(&transform_filter(g));
        }
    }

    let tiles_y = out_h.div_ceil(2);
    let tiles_x = out_w.div_ceil(2);
    let mut out = Tensor::zeros([n, out_c, out_h, out_w]);
    let odata = out.data_mut();
    let idata = input.data();

    for img in 0..n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather and transform the input tile for every channel.
                let mut vs = vec![[0.0f32; 16]; in_c];
                for (c, v) in vs.iter_mut().enumerate() {
                    let mut d = [0.0f32; 16];
                    for dy in 0..4 {
                        let iy = (ty * 2 + dy) as isize - padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for dx in 0..4 {
                            let ix = (tx * 2 + dx) as isize - padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            d[dy * 4 + dx] =
                                idata[((img * in_c + c) * h + iy as usize) * w + ix as usize];
                        }
                    }
                    *v = transform_input(&d);
                }
                // Per output channel: elementwise accumulate + inverse.
                for o in 0..out_c {
                    let mut m = [0.0f32; 16];
                    for (c, v) in vs.iter().enumerate() {
                        let uf = &u[(o * in_c + c) * 16..(o * in_c + c + 1) * 16];
                        for k in 0..16 {
                            m[k] += uf[k] * v[k];
                        }
                    }
                    let y = transform_output(&m);
                    let b = bias.map_or(0.0, |b| b[o]);
                    for dy in 0..2 {
                        let oy = ty * 2 + dy;
                        if oy >= out_h {
                            continue;
                        }
                        for dx in 0..2 {
                            let ox = tx * 2 + dx;
                            if ox >= out_w {
                                continue;
                            }
                            odata[((img * out_c + o) * out_h + oy) * out_w + ox] =
                                y[dy * 2 + dx] + b;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Multiply counts for a 3×3/stride-1 convolution at the given extents:
/// `(direct, winograd)` — the algorithmic saving the paper's layer-3
/// choices trade against transform overhead.
pub fn multiply_counts(
    in_channels: usize,
    out_channels: usize,
    out_h: usize,
    out_w: usize,
) -> (u64, u64) {
    let tiles = (out_h.div_ceil(2) * out_w.div_ceil(2)) as u64;
    let pairs = (in_channels * out_channels) as u64;
    let direct = pairs * (out_h * out_w) as u64 * 9;
    let winograd = pairs * tiles * 16;
    (direct, winograd)
}

/// Reshapes a `[out_c, in_c*9]` matrix back to rank-4 filters (helper for
/// callers holding flattened weights).
///
/// # Panics
///
/// Panics if the width is not a multiple of 9.
pub fn filters_from_matrix(matrix: &Tensor) -> Tensor {
    let (out_c, width) = matrix.shape().matrix();
    assert_eq!(width % 9, 0, "filter matrix width must be in_c * 9");
    matrix.reshape(Shape::new([out_c, width / 9, 3, 3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::im2col::{im2col, Conv2dGeometry};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_fn(shape.into(), |_| rng.gen_range(-1.0..1.0))
    }

    fn reference(input: &Tensor, weights: &Tensor, bias: Option<&[f32]>, padding: usize) -> Tensor {
        let (n, in_c, h, w) = input.shape().nchw();
        let out_c = weights.shape().dims()[0];
        let geom = Conv2dGeometry::new(in_c, h, w, 3, 3, 1, padding);
        let wmat = weights.reshape([out_c, in_c * 9]);
        let mut out = Tensor::zeros([n, out_c, geom.out_h, geom.out_w]);
        let plane = geom.out_positions();
        for img in 0..n {
            let cols = im2col(
                &input.data()[img * in_c * h * w..(img + 1) * in_c * h * w],
                &geom,
            );
            let prod = matmul(&wmat, &cols);
            let dst = &mut out.data_mut()[img * out_c * plane..(img + 1) * out_c * plane];
            dst.copy_from_slice(prod.data());
            if let Some(b) = bias {
                for o in 0..out_c {
                    for p in &mut dst[o * plane..(o + 1) * plane] {
                        *p += b[o];
                    }
                }
            }
        }
        out
    }

    #[test]
    fn matches_direct_even_extents() {
        let input = random([2, 3, 8, 8], 1);
        let weights = random([4, 3, 3, 3], 2);
        let want = reference(&input, &weights, None, 1);
        let got = winograd_conv2d(&input, &weights, None, 1);
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_odd_extents_and_no_padding() {
        let input = random([1, 2, 9, 7], 3);
        let weights = random([3, 2, 3, 3], 4);
        let want = reference(&input, &weights, None, 0);
        let got = winograd_conv2d(&input, &weights, None, 0);
        assert_eq!(got.shape().dims(), want.shape().dims());
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn matches_direct_with_bias() {
        let input = random([1, 3, 6, 6], 5);
        let weights = random([2, 3, 3, 3], 6);
        let bias = vec![0.7f32, -0.3];
        let want = reference(&input, &weights, Some(&bias), 1);
        let got = winograd_conv2d(&input, &weights, Some(&bias), 1);
        assert!(want.allclose(&got, 1e-3));
    }

    #[test]
    fn cifar_layer_shape_agrees() {
        // A real VGG layer shape: 32x32, 16->16 channels (scaled).
        let input = random([1, 16, 32, 32], 7);
        let weights = random([16, 16, 3, 3], 8);
        let want = reference(&input, &weights, None, 1);
        let got = winograd_conv2d(&input, &weights, None, 1);
        assert!(want.allclose(&got, 5e-3));
    }

    #[test]
    fn multiply_savings_are_2_25x_for_even_tiles() {
        let (direct, wino) = multiply_counts(64, 64, 32, 32);
        let ratio = direct as f64 / wino as f64;
        assert!((ratio - 2.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn identity_filter_reproduces_input() {
        // Filter = delta at centre: convolution is the identity.
        let input = random([1, 1, 6, 6], 9);
        let mut weights = Tensor::zeros([1, 1, 3, 3]);
        weights.data_mut()[4] = 1.0;
        let got = winograd_conv2d(&input, &weights, None, 1);
        assert!(got.allclose(&input, 1e-4));
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn non_3x3_rejected() {
        let _ = winograd_conv2d(
            &Tensor::zeros([1, 1, 8, 8]),
            &Tensor::zeros([1, 1, 5, 5]),
            None,
            1,
        );
    }

    #[test]
    fn filters_from_matrix_roundtrip() {
        let m = random([4, 18], 10);
        let f = filters_from_matrix(&m);
        assert_eq!(f.shape().dims(), &[4, 2, 3, 3]);
        assert_eq!(f.data(), m.data());
    }
}
