//! The dense `f32` tensor type used throughout the workspace.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// All activations, weights and gradients in the workspace are `Tensor`s.
/// The type is deliberately simple — contiguous storage only, no views with
/// exotic strides — because the paper's experiments are about *data format*
/// (dense vs CSR) and *algorithm* (direct vs im2col) choices, which this
/// crate keeps explicit rather than hiding behind a layout-polymorphic
/// abstraction.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::Tensor;
///
/// let mut t = Tensor::zeros([2, 2]);
/// t[[0, 1]] = 3.5;
/// assert_eq!(t[[0, 1]], 3.5);
/// assert_eq!(t.sum(), 3.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor by evaluating `f` at every linear offset.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements. Always `false` (zero-sized
    /// shapes are rejected at construction); provided for convention.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements to {shape:?}",
            self.data.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Element at a multi-index (bounds-checked in debug builds).
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Maximum element (NaN-propagating max of an f32 stream).
    ///
    /// # Panics
    ///
    /// Never panics: tensors are non-empty by construction.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Number of elements whose absolute value is at most `eps`.
    ///
    /// This is the quantity the paper calls *sparsity* when divided by
    /// [`len`](Self::len).
    pub fn count_zeros(&self, eps: f32) -> usize {
        self.data.iter().filter(|v| v.abs() <= eps).count()
    }

    /// Fraction of (near-)zero elements, in `[0, 1]`.
    pub fn sparsity(&self, eps: f32) -> f64 {
        self.count_zeros(eps) as f64 / self.data.len() as f64
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// In-place AXPY: `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling: `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// True if all pairwise element differences are within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        assert_eq!(self.shape, other.shape, "allclose shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Exact heap bytes used by the element buffer (the dense-format
    /// memory-footprint figure used by the paper's Tables IV and VI).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .., {:.4}] {} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

impl<const N: usize> std::ops::Index<[usize; N]> for Tensor {
    type Output = f32;

    fn index(&self, index: [usize; N]) -> &f32 {
        &self.data[self.shape.offset(&index)]
    }
}

impl<const N: usize> std::ops::IndexMut<[usize; N]> for Tensor {
    fn index_mut(&mut self, index: [usize; N]) -> &mut f32 {
        let off = self.shape.offset(&index);
        &mut self.data[off]
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn mul(self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full([4], 2.5).sum(), 10.0);
        let t = Tensor::from_fn([3], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch() {
        let _ = Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::zeros([2, 3]);
        t[[1, 2]] = 7.0;
        assert_eq!(t[[1, 2]], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        *t.at_mut(&[0, 0]) = -1.0;
        assert_eq!(t.data()[0], -1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 6], |i| i as f32);
        let r = t.reshape([3, 4]);
        assert_eq!(r.shape().dims(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_count() {
        let _ = Tensor::zeros([2, 2]).reshape([5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![-2.0, 0.0, 3.0, 1.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.norm_sq(), 4.0 + 9.0 + 1.0);
    }

    #[test]
    fn sparsity_counting() {
        let t = Tensor::from_vec([5], vec![0.0, 1e-9, -0.5, 0.5, 0.0]);
        assert_eq!(t.count_zeros(1e-6), 3);
        assert!((t.sparsity(1e-6) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec([2], vec![1.0, 2.0]);
        let g = Tensor::from_vec([2], vec![10.0, 10.0]);
        a.axpy(-0.1, &g);
        assert!(a.allclose(&Tensor::from_vec([2], vec![0.0, 1.0]), 1e-6));
        a.scale(2.0);
        assert!(a.allclose(&Tensor::from_vec([2], vec![0.0, 2.0]), 1e-6));
    }

    #[test]
    fn storage_bytes_is_exact() {
        assert_eq!(Tensor::zeros([3, 3, 3]).storage_bytes(), 27 * 4);
    }

    #[test]
    fn map_applies_everywhere() {
        let t = Tensor::from_vec([3], vec![1.0, -2.0, 3.0]).map(f32::abs);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros([2])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros([100])).is_empty());
    }
}
