//! Free-standing tensor operations shared by the higher layers.

use crate::tensor::Tensor;

/// Row-wise softmax of a `[batch, classes]` matrix, numerically stabilised
/// by subtracting the row maximum.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
///
/// # Example
///
/// ```
/// use cnn_stack_tensor::{ops, Tensor};
///
/// let p = ops::softmax_rows(&Tensor::from_vec([1, 2], vec![0.0, 0.0]));
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let (rows, cols) = logits.shape().matrix();
    let mut out = logits.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Row-wise argmax of a `[batch, classes]` matrix: the predicted class per
/// batch item.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let (rows, cols) = logits.shape().matrix();
    let data = logits.data();
    (0..rows)
        .map(|r| {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Mean cross-entropy of row-softmax probabilities against integer labels,
/// the loss the paper minimises with SGD (§IV-A).
///
/// Returns `(loss, dlogits)` where `dlogits` is the gradient with respect
/// to the *logits* (softmax and cross-entropy fused for stability).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or a label is out
/// of range.
pub fn cross_entropy_with_grad(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (rows, cols) = logits.shape().matrix();
    assert_eq!(labels.len(), rows, "one label per batch row required");
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0;
    let gdata = grad.data_mut();
    for (r, &label) in labels.iter().enumerate() {
        assert!(
            label < cols,
            "label {label} out of range for {cols} classes"
        );
        let p = probs.data()[r * cols + label].max(1e-12);
        loss -= p.ln();
        gdata[r * cols + label] -= 1.0;
    }
    // Average across the batch, as the paper does ("averaged across all
    // data items").
    let inv = 1.0 / rows as f32;
    for v in gdata.iter_mut() {
        *v *= inv;
    }
    (loss * inv, grad)
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if `m` is not rank-2.
pub fn transpose(m: &Tensor) -> Tensor {
    let (rows, cols) = m.shape().matrix();
    let src = m.data();
    Tensor::from_fn([cols, rows], |off| {
        let r = off / rows;
        let c = off % rows;
        src[c * cols + r]
    })
}

/// Top-1 accuracy of logits against labels, in `[0, 1]`.
pub fn top1_accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(
        preds.len(),
        labels.len(),
        "one label per prediction required"
    );
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_rows(&l);
        for r in 0..2 {
            let s: f32 = p.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(p[[0, 2]] > p[[0, 1]] && p[[0, 1]] > p[[0, 0]]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let l = Tensor::from_vec([1, 2], vec![1000.0, 1000.0]);
        let p = softmax_rows(&l);
        assert!((p.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let l = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&l), vec![1, 0]);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let l = Tensor::zeros([4, 10]);
        let (loss, _) = cross_entropy_with_grad(&l, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_p_minus_onehot() {
        let l = Tensor::from_vec([1, 2], vec![0.0, 0.0]);
        let (_, g) = cross_entropy_with_grad(&l, &[1]);
        assert!((g.data()[0] - 0.5).abs() < 1e-6);
        assert!((g.data()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        // Finite-difference check on a random-ish logit vector.
        let base = vec![0.3f32, -0.7, 1.2];
        let labels = [2usize];
        let l = Tensor::from_vec([1, 3], base.clone());
        let (_, g) = cross_entropy_with_grad(&l, &labels);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = cross_entropy_with_grad(&Tensor::from_vec([1, 3], plus), &labels);
            let (lm, _) = cross_entropy_with_grad(&Tensor::from_vec([1, 3], minus), &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g.data()[i]).abs() < 1e-3,
                "grad check failed at {i}: fd={fd} analytic={}",
                g.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn cross_entropy_label_out_of_range() {
        let _ = cross_entropy_with_grad(&Tensor::zeros([1, 3]), &[5]);
    }

    #[test]
    fn transpose_involution() {
        let m = Tensor::from_fn([3, 5], |i| i as f32);
        let tt = transpose(&transpose(&m));
        assert_eq!(tt, m);
        let t = transpose(&m);
        assert_eq!(t[[4, 2]], m[[2, 4]]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let l = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(top1_accuracy(&l, &[0, 1]), 1.0);
        assert_eq!(top1_accuracy(&l, &[1, 1]), 0.5);
    }
}
